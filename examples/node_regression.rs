//! Node-level ground-capacitance regression (the paper's Section IV-D
//! extension): 2-hop subgraphs around a single anchor, DSPD degenerating
//! to `D0 = D1`.
//!
//! ```bash
//! cargo run --release --example node_regression
//! ```

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::netlist_to_graph;
use cirgps::model::{
    evaluate_regression, finetune_regression, prepare_node_dataset, CircuitGps, FinetuneMode,
    ModelConfig, TrainConfig,
};
use cirgps::pe::PeKind;
use cirgps::sample::{CapNormalizer, NodeDataset, XcNormalizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (design, spf) = generate_with_parasitics(DesignKind::Ssram, SizePreset::Tiny, 7)?;
    let (graph, map) = netlist_to_graph(&design.netlist);

    // Ground capacitance per net/pin, 2-hop subgraphs, no negatives.
    let ds = NodeDataset::build("SSRAM", &graph, &design.netlist, &map, &spf, 400, 2, 7);
    println!("node dataset: {} net/pin targets", ds.len());

    let xcn = XcNormalizer::fit(&[&graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_node_dataset(&ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
    let (train, test) = samples.split_at(samples.len() * 4 / 5);

    let mut model = CircuitGps::new(ModelConfig::default());
    finetune_regression(
        &mut model,
        train,
        FinetuneMode::Scratch,
        &TrainConfig {
            epochs: 6,
            log_every: 2,
            ..Default::default()
        },
    )?;
    let m = evaluate_regression(&model, test);
    println!(
        "ground-capacitance regression: MAE {:.3}  RMSE {:.3}  R2 {:.3}",
        m.mae, m.rmse, m.r2
    );

    // Show a few decoded predictions.
    for s in test.iter().take(5) {
        let pred = cap.decode(model.predict_reg(s));
        let truth = cap.decode(s.target);
        println!("  predicted {:9.3e} F   truth {:9.3e} F", pred, truth);
    }
    Ok(())
}
