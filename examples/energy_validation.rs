//! Fig. 4-style validation: simulate switching energy with ground-truth
//! parasitics vs a perturbed prediction, using the switch-level
//! simulator.
//!
//! ```bash
//! cargo run --release --example energy_validation
//! ```

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::spice::{net_capacitances, net_capacitances_with, simulate_energy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (design, spf) = generate_with_parasitics(DesignKind::DigitalClkGen, SizePreset::Tiny, 7)?;
    println!(
        "{}: {} devices, {} ground caps, {} coupling caps",
        design.name,
        design.netlist.num_devices(),
        spf.ground_caps.len(),
        spf.coupling_caps.len()
    );

    // Ground-truth energy.
    let caps_gt = net_capacitances(&design.netlist, &spf);
    let e_gt = simulate_energy(&design.netlist, &caps_gt, 0.9, 48, 3);
    println!(
        "ground truth: {:.3e} J over {} vectors ({} toggles)",
        e_gt.energy, e_gt.vectors, e_gt.total_toggles
    );

    // A deliberately imperfect "prediction": every coupling off by a
    // deterministic ±25% — the energy error stays far smaller because
    // individual coupling errors average out, which is exactly why the
    // paper validates through simulated energy.
    let mut flip = false;
    let caps_pred = net_capacitances_with(&design.netlist, &spf, |c| {
        flip = !flip;
        if flip {
            c.value * 1.25
        } else {
            c.value * 0.75
        }
    });
    let e_pred = simulate_energy(&design.netlist, &caps_pred, 0.9, 48, 3);
    let norm = e_pred.energy / e_gt.energy;
    println!(
        "perturbed prediction: {:.3e} J (normalized {:.3})",
        e_pred.energy, norm
    );
    println!(
        "energy error: {:.1}% despite 25% per-coupling error",
        (norm - 1.0).abs() * 100.0
    );
    Ok(())
}
