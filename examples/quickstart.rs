//! Quickstart: the whole CirGPS pipeline on a small synthetic design in
//! under a minute.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::{netlist_to_graph, GraphStats};
use cirgps::model::{
    evaluate_link, prepare_link_dataset, pretrain_link, CircuitGps, ModelConfig, TrainConfig,
};
use cirgps::pe::PeKind;
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, XcNormalizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic AMS design and its parasitic ground truth
    //    (stands in for a real netlist + post-layout SPF).
    let (design, spf) = generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 7)?;
    println!(
        "design {}: {} devices, {} nets, {} couplings extracted",
        design.name,
        design.netlist.num_devices(),
        design.netlist.num_nets(),
        spf.coupling_caps.len()
    );

    // 2. Convert the netlist to a heterogeneous graph (nets/devices/pins).
    let (graph, map) = netlist_to_graph(&design.netlist);
    println!("{}", GraphStats::of(&design.name, &graph));

    // 3. Build the link-prediction dataset: join SPF couplings, balance,
    //    generate structural negatives, inject links, sample 1-hop
    //    enclosing subgraphs.
    let ds = LinkDataset::build(
        &design.name,
        &graph,
        &design.netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: 100,
            ..Default::default()
        },
    );
    println!(
        "dataset: {} samples, mean subgraph {:.0} nodes / {:.0} edges",
        ds.len(),
        ds.mean_subgraph_nodes,
        ds.mean_subgraph_edges
    );

    // 4. Prepare model inputs: DSPD positional encoding + normalized XC.
    let xcn = XcNormalizer::fit(&[&graph]);
    let cap_norm = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c));

    // 5. Pre-train CircuitGPS on link prediction.
    let mut model = CircuitGps::new(ModelConfig::default());
    println!("model: {} trainable parameters", model.num_params());
    let history = pretrain_link(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 4,
            log_every: 1,
            ..Default::default()
        },
    )
    .expect("training diverged");
    println!("trained in {:.1}s", history.seconds);

    // 6. Evaluate.
    let metrics = evaluate_link(&model, &samples);
    println!(
        "link prediction: accuracy {:.3}, F1 {:.3}, AUC {:.3}",
        metrics.accuracy, metrics.f1, metrics.auc
    );
    Ok(())
}
