//! Zero-shot coupling prediction: pre-train on one design archetype,
//! evaluate on a completely unseen one (the paper's Table V setting).
//!
//! ```bash
//! cargo run --release --example link_prediction
//! ```

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::netlist_to_graph;
use cirgps::model::{
    evaluate_link, prepare_link_dataset, pretrain_link, CircuitGps, ModelConfig, TrainConfig,
};
use cirgps::pe::PeKind;
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, XcNormalizer};

fn build(
    kind: DesignKind,
    seed: u64,
) -> Result<(cirgps::graph::CircuitGraph, LinkDataset), Box<dyn std::error::Error>> {
    let (design, spf) = generate_with_parasitics(kind, SizePreset::Tiny, seed)?;
    let (graph, map) = netlist_to_graph(&design.netlist);
    let ds = LinkDataset::build(
        kind.paper_name(),
        &graph,
        &design.netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: 120,
            ..Default::default()
        },
    );
    Ok((graph, ds))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on the SSRAM archetype; never show the model the clock
    // generator.
    let (train_graph, train_ds) = build(DesignKind::Ssram, 7)?;
    let (_, test_ds) = build(DesignKind::DigitalClkGen, 8)?;

    // Normalizers are fitted on training data only.
    let xcn = XcNormalizer::fit(&[&train_graph]);
    let cap = CapNormalizer::paper_range();
    let train = prepare_link_dataset(&train_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
    let test = prepare_link_dataset(&test_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));

    let mut model = CircuitGps::new(ModelConfig::default());
    println!("pre-training on {} SSRAM link samples...", train.len());
    pretrain_link(
        &mut model,
        &train,
        &TrainConfig {
            epochs: 5,
            log_every: 1,
            ..Default::default()
        },
    )
    .expect("training diverged");

    // Save the meta-learner checkpoint, as the paper does before
    // fine-tuning or zero-shot transfer.
    let mut checkpoint = Vec::new();
    model.save(&mut checkpoint)?;
    println!("checkpoint: {} bytes", checkpoint.len());

    let train_m = evaluate_link(&model, &train);
    let test_m = evaluate_link(&model, &test);
    println!(
        "train (SSRAM):             acc {:.3}  F1 {:.3}  AUC {:.3}",
        train_m.accuracy, train_m.f1, train_m.auc
    );
    println!(
        "zero-shot (DIGITAL_CLK_GEN): acc {:.3}  F1 {:.3}  AUC {:.3}",
        test_m.accuracy, test_m.f1, test_m.auc
    );
    Ok(())
}
