//! Coupling-capacitance regression with the paper's three adaptation
//! strategies: training from scratch, head-only fine-tuning, and
//! all-parameters fine-tuning from a link-prediction checkpoint
//! (Table VI).
//!
//! ```bash
//! cargo run --release --example capacitance_regression
//! ```

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::netlist_to_graph;
use cirgps::model::{
    evaluate_regression, finetune_regression, prepare_link_dataset, pretrain_link, CircuitGps,
    FinetuneMode, ModelConfig, TrainConfig,
};
use cirgps::pe::PeKind;
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, XcNormalizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (design, spf) = generate_with_parasitics(DesignKind::Ssram, SizePreset::Tiny, 7)?;
    let (graph, map) = netlist_to_graph(&design.netlist);
    let ds = LinkDataset::build(
        "SSRAM",
        &graph,
        &design.netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: 120,
            ..Default::default()
        },
    );
    let xcn = XcNormalizer::fit(&[&graph]);
    let cap = CapNormalizer::paper_range();
    // Targets: log-min-max normalized capacitance; negatives are zero.
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
    let (train, test) = samples.split_at(samples.len() * 4 / 5);
    let tcfg = TrainConfig {
        epochs: 5,
        ..Default::default()
    };

    // Strategy 1: from scratch.
    let mut scratch = CircuitGps::new(ModelConfig::default());
    finetune_regression(&mut scratch, train, FinetuneMode::Scratch, &tcfg)?;
    let m1 = evaluate_regression(&scratch, test);

    // Pre-train a meta-learner for the fine-tuning strategies.
    let mut pretrained = CircuitGps::new(ModelConfig::default());
    pretrain_link(&mut pretrained, train, &tcfg)?;
    let mut checkpoint = Vec::new();
    pretrained.save(&mut checkpoint)?;

    // Strategy 2: freeze encoders + GPS layers, train only the head.
    let mut head_ft = CircuitGps::new(ModelConfig::default());
    head_ft.load(&checkpoint[..])?;
    finetune_regression(&mut head_ft, train, FinetuneMode::HeadOnly, &tcfg)?;
    let m2 = evaluate_regression(&head_ft, test);

    // Strategy 3: fine-tune everything from the pre-trained init.
    let mut all_ft = CircuitGps::new(ModelConfig::default());
    all_ft.load(&checkpoint[..])?;
    finetune_regression(&mut all_ft, train, FinetuneMode::All, &tcfg)?;
    let m3 = evaluate_regression(&all_ft, test);

    println!("capacitance regression on held-out SSRAM links:");
    println!(
        "  scratch : MAE {:.3}  RMSE {:.3}  R2 {:.3}",
        m1.mae, m1.rmse, m1.r2
    );
    println!(
        "  head-ft : MAE {:.3}  RMSE {:.3}  R2 {:.3}",
        m2.mae, m2.rmse, m2.r2
    );
    println!(
        "  all-ft  : MAE {:.3}  RMSE {:.3}  R2 {:.3}",
        m3.mae, m3.rmse, m3.r2
    );

    // Decode one prediction back to farads.
    if let Some(s) = test.first() {
        let pred = all_ft.predict_reg(s);
        println!(
            "sample link: predicted {:.3e} F, ground truth {:.3e} F",
            cap.decode(pred),
            cap.decode(s.target)
        );
    }
    Ok(())
}
