//! # cirgps
//!
//! Facade crate for the CirGPS reproduction — a Rust implementation of
//! *"Few-shot Learning on AMS Circuits and Its Application to Parasitic
//! Capacitance Prediction"* (CircuitGPS, DAC 2025).
//!
//! Every subsystem is its own crate; this facade re-exports them under
//! stable module names so examples and downstream users need a single
//! dependency:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`netlist`] | `ams-netlist` | SPICE + SPF parsing/writing |
//! | [`graph`] | `circuit-graph` | heterogeneous circuit graph, `XC` stats |
//! | [`datagen`] | `ams-datagen` | synthetic designs + layout-proxy extraction |
//! | [`sample`] | `subgraph-sample` | enclosing-subgraph datasets |
//! | [`pe`] | `graph-pe` | DSPD/DRNL/RWSE/LapPE encodings |
//! | [`nn`] | `cirgps-nn` | tensors, autograd, layers, optimizers |
//! | [`model`] | `circuitgps` | the CircuitGPS model + training |
//! | [`serve`] | `cirgps-serve` | dynamic-batching inference daemon |
//! | [`baselines`] | `cirgps-baselines` | ParaGraph, DLPL-Cap |
//! | [`spice`] | `mini-spice` | switch-level energy simulation |
//!
//! ## Quickstart
//!
//! ```
//! use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
//! use cirgps::graph::netlist_to_graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (design, spf) =
//!     generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 7)?;
//! let (graph, _map) = netlist_to_graph(&design.netlist);
//! println!("{} nodes, {} couplings", graph.num_nodes(), spf.coupling_caps.len());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for full training pipelines and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

#![deny(missing_docs)]

pub use ams_datagen as datagen;
pub use ams_netlist as netlist;
pub use circuit_graph as graph;
pub use circuitgps as model;
pub use cirgps_baselines as baselines;
pub use cirgps_client as client;
pub use cirgps_nn as nn;
pub use cirgps_serve as serve;
pub use graph_pe as pe;
pub use mini_spice as spice;
pub use subgraph_sample as sample;
