//! `cirgps` — command-line front end for the CirGPS pipeline.
//!
//! ```text
//! cirgps gen      --kind ssram --preset tiny --seed 7 --out designs/
//! cirgps stats    --netlist designs/SSRAM.sp --top SSRAM
//! cirgps sample   --netlist designs/SSRAM.sp --top SSRAM --spf designs/SSRAM.spf
//! cirgps pretrain --netlist designs/SSRAM.sp --top SSRAM --spf designs/SSRAM.spf \
//!                 --epochs 30 --out pretrained.ckpt
//! cirgps finetune --model pretrained.ckpt --netlist t.sp --top T --spf t.spf \
//!                 --shots 8 --out finetuned.ckpt
//! cirgps eval     --model finetuned.ckpt --netlist t.sp --top T --spf t.spf
//! cirgps energy   --netlist designs/SSRAM.sp --top SSRAM --spf designs/SSRAM.spf --vectors 32
//! ```

use std::collections::HashMap;
use std::fs;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use cirgps::client::{Client, RetryPolicy};
use cirgps::datagen::emit::write_design_pair;
use cirgps::datagen::enumerate::{build_term, enumerate_terms, term_extract_seed};
use cirgps::datagen::{
    check_design, extract_parasitics, generate_with_parasitics, DesignKind, ExtractConfig, Family,
    SizePreset,
};
use cirgps::graph::{netlist_to_graph, CircuitGraph, GraphStats, XcSpec};
use cirgps::model::corpus::CorpusSpec;
use cirgps::model::{
    evaluate_link, evaluate_regression, finetune_regression_with_progress, interrupt,
    prepare_link_dataset, sweep_pairs, train_resumable, write_atomic, CandidatePairs,
    CheckpointFormat, CircuitGps, FinetuneMode, InferenceSession, LinkMetrics, ModelConfig,
    PreparedSample, RegMetrics, ResumableTrain, SweepConfig, SweepTask, Task, TrainConfig,
    TrainState, TRAIN_STATE_SECTION,
};
use cirgps::netlist::{Netlist, SpfFile, SpiceFile};
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, SamplerConfig, XcNormalizer};
use cirgps::serve::{ServeConfig, Server};
use cirgps::spice::{net_capacitances, simulate_energy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // Help never flag-parses: `cirgps help gen` must print usage, not
    // complain about the positional "gen".
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(&args[1..]).and_then(|flags| match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "datagen" => cmd_datagen(&flags),
        "stats" => cmd_stats(&flags),
        "sample" => cmd_sample(&flags),
        "pretrain" => cmd_pretrain(&flags),
        "finetune" => cmd_finetune(&flags),
        "eval" => cmd_eval(&flags),
        "predict" => cmd_predict(&flags),
        "sweep" => cmd_sweep(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "energy" => cmd_energy(&flags),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cirgps — few-shot parasitic prediction pipeline

USAGE:
  cirgps gen    --kind <ssram|ultra8t|sandwich|clkgen|timing|array>
                [--preset tiny|small|paper] [--seed N] [--out DIR]
      Generate a synthetic AMS design; writes <NAME>.sp and <NAME>.spf.

  cirgps datagen [--family all|chain|tree|bus|fabric|array|sandwich]
                [--seed N] [--max-size S] [--min-size S] [--count K]
                [--out DIR] [--threads N] [--list]
      Enumerate the composition grammar's design space: every structure
      whose size estimate falls in [--min-size, --max-size], in a
      canonical deterministic order, validity-filtered and written as
      the same <NAME>.sp + <NAME>.spf pairs `gen` produces
      (docs/datagen.md has the grammar reference).
        --family F        restrict to one grammar family (default all)
        --seed N          parasitic-extraction seed; the SPICE structure
                          is seed-independent (default 7)
        --max-size S      upper size-estimate bound (default 4000;
                          roughly heterogeneous-graph nodes)
        --min-size S      lower size-estimate bound (default 0)
        --count K         stop after the first K designs (default all)
        --out DIR         output directory (default .)
        --threads N       parallel builders; output bytes are identical
                          for every N (default 1)
        --list            print name/family/size-estimate per design
                          without building anything

  cirgps stats  --netlist FILE.sp --top NAME
      Parse + flatten a SPICE netlist and print heterogeneous-graph
      statistics (Table IV format) and the Table-I feature spec.

  cirgps sample --netlist FILE.sp --top NAME --spf FILE.spf
                [--per-type N]
      Join SPF couplings, build the balanced link dataset with 1-hop
      enclosing subgraphs, and print dataset statistics.

  cirgps pretrain --netlist A.sp[,B.sp...] --top A[,B...] --spf A.spf[,B.spf...]
                [--grammar FAMILY[:MAX_SIZE[:COUNT[:MIN_SIZE]]]]
                [--epochs N] [--batch-size N] [--lr F] [--seed N]
                [--per-type N] [--hidden-dim N] [--layers N] [--heads N]
                [--pe-dim N] [--dropout F] [--holdout PCT] [--eval-every N]
                [--checkpoint-every N] [--resume] [--quantize]
                [--metrics-out FILE.json] --out FILE.ckpt
      Pre-train CircuitGPS on coupling link prediction over one or more
      design pairs (comma-separated lists, aligned by position), then
      write a self-describing checkpoint (embedded model config; see
      docs/checkpoint-format.md). Progress streams to stderr per epoch.
      `--grammar` appends enumerated grammar designs to the corpus
      without touching disk (and makes the file flags optional);
      `chain:900:4` = first 4 chain designs under size 900.
        --epochs N        training epochs (default 30)
        --batch-size N    minibatch size (default 32)
        --lr F            peak learning rate (default 1e-3)
        --seed N          model init + shuffling seed (default 7)
        --per-type N      positive couplings sampled per type (default 200)
        --hidden-dim/--layers/--heads/--pe-dim/--dropout
                          model architecture overrides (defaults
                          32/3/4/8/0.1); recorded in the checkpoint, so
                          downstream commands need no matching flags
        --holdout PCT     percent of samples held out for eval (default
                          10; 0 trains on everything)
        --eval-every N    evaluate the held-out split every N epochs
        --checkpoint-every N
                          write a resumable snapshot to --out every N
                          epochs (the previous one rotates to .bak); all
                          writes are atomic + durable, so a crash at any
                          point leaves a loadable snapshot
        --resume          continue an interrupted run from the snapshot
                          at --out (or its .bak); requires the same
                          training/data flags, reproduces the
                          uninterrupted run's final metrics. SIGINT or
                          SIGTERM stops at the next epoch boundary and
                          writes a final snapshot (docs/robustness.md)
        --metrics-out F   write a JSON training log (per-epoch loss,
                          periodic + final eval metrics)
        --quantize        snapshot weights as int8 (per-tensor symmetric
                          scales) before saving; the checkpoint carries a
                          `quant` section and predict/sweep/serve default
                          to int8 inference (docs/simd-quant.md)

  cirgps finetune --model PRE.ckpt --netlist FILE.sp --top NAME
                --spf FILE.spf --shots N [--unfreeze-all]
                [--epochs N] [--batch-size N] [--lr F] [--seed N]
                [--per-type N] [--eval-every N] [--quantize]
                [--metrics-out FILE.json] --out FILE.ckpt
      Few-shot fine-tune a pre-trained checkpoint for capacitance
      regression on a target design: N labeled positive pairs train the
      regression head (backbone frozen by default, the paper's few-shot
      recipe); the remaining labeled pairs become the held-out eval set.
        --shots N         labeled pairs to fine-tune on (spread evenly
                          over the positives)
        --unfreeze-all    also fine-tune encoders + GPS layers
        --epochs N        fine-tuning epochs (default 50)

  cirgps eval   --model FILE.ckpt --netlist FILE.sp[,...] --top NAME[,...]
                --spf FILE.spf[,...] [--grammar SPEC]
                [--task link|cap|both] [--per-type N]
      Evaluate a checkpoint on the designs' sampled pair sets and print
      one JSON object to stdout: link metrics (accuracy/F1/AUC) over all
      pairs and/or regression metrics (MAE/RMSE/R2, normalized scale)
      over the labeled positives.

  cirgps predict --netlist FILE.sp --top NAME --spf FILE.spf
                [--task link|cap] [--batch-size N] [--per-type N]
                [--model FILE.ckpt] [--backend B] [--precision P]
                [--out FILE.json]
      Score the design's candidate coupling pairs with the batched
      tape-free inference engine (block-diagonal attention).
        --task link|cap   link probability (default) or normalized +
                          decoded coupling capacitance per pair
        --batch-size N    samples per packed batch (default 32)
        --per-type N      candidate pairs sampled per coupling type
                          (default 200)
        --model FILE      load a checkpoint (`cirgps pretrain`/`finetune`
                          output; the model is rebuilt from the embedded
                          config). Without it a freshly initialized
                          default model is used (structure-only smoke
                          predictions)
        --backend B       force the SIMD dispatch backend: scalar, avx2
                          or avx512 (default: best available; errors if
                          the CPU lacks it — docs/simd-quant.md)
        --precision P     f32 or int8. Default follows the checkpoint:
                          int8 when it carries a `quant` section, f32
                          otherwise. int8 quantizes in-process when the
                          checkpoint shipped no codes
        --out FILE.json   write JSON lines there instead of stdout
      Output: one JSON object per candidate pair.

  cirgps sweep  --netlist FILE.sp --top NAME [--model FILE.ckpt]
                [--task link|cap] [--pairs FILE] [--per-node-cap N]
                [--max-pairs N] [--chunk N] [--threads N]
                [--format jsonl|csv] [--out FILE] [--no-dedup]
                [--backend B] [--precision P]
      Plan and execute a full-chip sweep: score *every* candidate pair
      of the design (or an explicit pair list) as one batched job with
      shared subgraph extraction and neighborhood deduplication,
      streaming results with bounded memory (see docs/sweep.md).
      Bitwise parity contract: each pair's value equals what `cirgps
      predict` emits for that pair with the same model.
        --task link|cap   link probability (default) or normalized +
                          decoded coupling capacitance per pair
        --pairs FILE      score these pairs instead of enumerating: one
                          pair per line, `a,b` or `a b` node ids
                          (`#` comments allowed)
        --per-node-cap N  max partners enumerated per anchor node
                          (bounds hub-net blowup; default 0 = all)
        --max-pairs N     stop enumerating after N pairs (default 0 =
                          sweep everything)
        --chunk N         pairs per planned window — the bounded-memory
                          knob; results flush once per window
                          (default 4096)
        --threads N       forward-pass worker threads (default 1)
        --format jsonl|csv
                          output format (default jsonl, same fields as
                          `cirgps predict` minus the dataset label)
        --out FILE        write results there instead of stdout
        --no-dedup        disable neighborhood deduplication (for
                          measurement; results are identical)
        --backend/--precision
                          SIMD backend + int8/f32 knobs, exactly as in
                          `cirgps predict` (docs/simd-quant.md)
      Prints planner statistics (pairs, unique forwards, dedup rate,
      amortized µs/pair) to stderr.

  cirgps serve  --netlist FILE.sp --top NAME [--model FILE.ckpt]
                [--addr HOST:PORT] [--max-batch N] [--max-wait-us N]
                [--workers N] [--queue-cap N] [--cache-cap N]
                [--backend B] [--precision P]
                [--drain-timeout-ms N] [--request-timeout-ms N]
      Run the long-lived inference daemon: model, graph and sample
      caches stay warm, and concurrent HTTP queries are coalesced into
      packed batches by the dynamic micro-batcher (see docs/serving.md).
        --addr         listen address (default 127.0.0.1:8321)
        --max-batch    flush a batch at N queries (default 32)
        --max-wait-us  flush a partial batch after N microseconds
                       (default 2000)
        --workers      scheduler threads (default 2)
        --queue-cap    queue depth before 503 backpressure (default 1024)
        --cache-cap    per-worker prepared-sample cache (default 65536)
        --drain-timeout-ms
                       on SIGTERM/SIGINT: how long the graceful drain
                       waits for open connections before force-closing
                       them (default 5000; docs/robustness.md)
        --request-timeout-ms
                       per-request deadline; a request not answered in
                       time gets 504 instead of hanging (default 30000)
        --max-body-bytes
                       reject request bodies larger than this with 413
                       (default 8388608)
        --max-headers  reject requests with more header lines with 400
                       (default 64)
        --idle-timeout-ms
                       close a keep-alive connection idle this long
                       (default 60000)
        --ingress-timeout-ms
                       wall-clock budget for reading one request once
                       its first byte arrives; slow-loris senders get
                       408 (default 10000)
        --max-conns    concurrent-connection cap; excess connections are
                       shed with 503 + Retry-After (default 256)
        --backend/--precision
                       SIMD backend + int8/f32 knobs, exactly as in
                       `cirgps predict`; the selection is reported on
                       /metrics (docs/simd-quant.md)
      Endpoints: GET /healthz, GET /metrics, POST /v1/predict,
      POST /v1/sweep (chunked JSONL bulk sweep).

  cirgps client [--addr HOST:PORT] [--method GET|POST] [--path P]
                [--body JSON | --body-file FILE]
                [--retries N] [--deadline-ms N] [--seed N]
      Query a running daemon through the retrying client: exponential
      backoff with decorrelated jitter, Retry-After honoring, and a
      total deadline budget (docs/robustness.md has the recipe).
      `--path /v1/sweep` streams the chunked JSONL response to stdout
      as it arrives; other paths print the response body.
        --addr         daemon address (default 127.0.0.1:8321)
        --method       GET (default) or POST
        --path P       request path (default /healthz)
        --body JSON    inline request body
        --body-file F  read the request body from a file
        --retries N    attempts before giving up (default 6)
        --deadline-ms N
                       total budget across all attempts (default 30000)
        --seed N       backoff jitter seed (default 24301)

  cirgps energy --netlist FILE.sp --top NAME --spf FILE.spf
                [--vectors N] [--vdd V] [--seed N]
      Run the switch-level simulator and report switching energy.";

/// Parses `--flag value` pairs. Rejects positional arguments; a flag
/// followed by another flag (or nothing) gets an empty value, which the
/// per-command validators then report with the flag's name.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(key.to_string(), value);
        } else {
            return Err(format!(
                "unexpected positional argument {:?} (flags are --name value pairs)",
                args[i]
            ));
        }
    }
    Ok(flags)
}

/// Rejects flags a command does not understand, naming the failing flag
/// and listing what the command accepts.
fn check_flags(flags: &HashMap<String, String>, cmd: &str, allowed: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|k| !allowed.contains(k))
        .collect();
    unknown.sort_unstable();
    if let Some(first) = unknown.first() {
        return Err(format!(
            "unknown flag --{first} for `cirgps {cmd}` (expected {})",
            allowed
                .iter()
                .map(|f| format!("--{f}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(())
}

fn design_kind(name: &str) -> Result<DesignKind, String> {
    Ok(match name {
        "ssram" => DesignKind::Ssram,
        "ultra8t" => DesignKind::Ultra8t,
        "sandwich" => DesignKind::SandwichRam,
        "clkgen" => DesignKind::DigitalClkGen,
        "timing" => DesignKind::TimingControl,
        "array" => DesignKind::Array128x32,
        other => return Err(format!("unknown design kind {other:?}")),
    })
}

fn preset(flags: &HashMap<String, String>) -> Result<SizePreset, String> {
    Ok(
        match flags.get("preset").map(String::as_str).unwrap_or("tiny") {
            "tiny" => SizePreset::Tiny,
            "small" => SizePreset::Small,
            "paper" => SizePreset::Paper,
            other => return Err(format!("unknown preset {other:?}")),
        },
    )
}

fn seed(flags: &HashMap<String, String>) -> Result<u64, String> {
    flag_parse(flags, "seed", 7)
}

/// Parses an optional `--name value` flag, falling back to `default`
/// when absent. The value type is inferred from the default.
fn flag_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    flags
        .get(name)
        .map(|s| s.parse().map_err(|_| format!("bad --{name} {s:?}")))
        .unwrap_or(Ok(default))
}

fn load_netlist(flags: &HashMap<String, String>) -> Result<Netlist, String> {
    let path = flags.get("netlist").ok_or("--netlist is required")?;
    let top = flags.get("top").ok_or("--top is required")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = SpiceFile::parse(&text).map_err(|e| e.to_string())?;
    file.flatten(top).map_err(|e| e.to_string())
}

fn load_spf(flags: &HashMap<String, String>) -> Result<SpfFile, String> {
    let path = flags.get("spf").ok_or("--spf is required")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SpfFile::parse(&text).map_err(|e| e.to_string())
}

/// Presence-style boolean flag: `--name` (no value) or `--name true`.
fn flag_bool(flags: &HashMap<String, String>, name: &str) -> Result<bool, String> {
    match flags.get(name).map(String::as_str) {
        None | Some("false") => Ok(false),
        Some("") | Some("true") => Ok(true),
        Some(other) => Err(format!(
            "bad --{name} {other:?} (a presence flag; give it no value)"
        )),
    }
}

/// One parsed training/evaluation design: flattened netlist + SPF join.
struct DesignPair {
    netlist: Netlist,
    spf: SpfFile,
}

/// Loads the `--netlist`/`--top`/`--spf` comma-separated design lists
/// (aligned by position) used by the training subcommands, plus any
/// `--grammar` corpus (enumerated in memory, no files involved).
fn load_design_pairs(flags: &HashMap<String, String>) -> Result<Vec<DesignPair>, String> {
    let grammar = match flags.get("grammar") {
        Some(spec) => {
            let spec = CorpusSpec::parse(spec)?;
            let corpus = spec.load(seed(flags)?);
            if corpus.len() < spec.count {
                return Err(format!(
                    "--grammar window holds only {} design(s), asked for {} (widen the \
                     size bounds)",
                    corpus.len(),
                    spec.count
                ));
            }
            corpus
        }
        None => Vec::new(),
    };
    let split = |name: &str| -> Result<Vec<String>, String> {
        let listed = flags.get(name).map(String::as_str).unwrap_or("");
        if listed.is_empty() && !grammar.is_empty() {
            return Ok(Vec::new());
        }
        Ok(flags
            .get(name)
            .ok_or(format!("--{name} is required (or use --grammar)"))?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect())
    };
    let netlists = split("netlist")?;
    let tops = split("top")?;
    let spfs = split("spf")?;
    if netlists.is_empty() && grammar.is_empty() {
        return Err("--netlist lists no files".into());
    }
    if netlists.len() != tops.len() || netlists.len() != spfs.len() {
        return Err(format!(
            "--netlist/--top/--spf list lengths differ ({}/{}/{}); they align by position",
            netlists.len(),
            tops.len(),
            spfs.len()
        ));
    }
    let mut pairs = Vec::with_capacity(netlists.len() + grammar.len());
    for ((path, top), spf_path) in netlists.iter().zip(&tops).zip(&spfs) {
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let file = SpiceFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let netlist = file.flatten(top).map_err(|e| format!("{path}: {e}"))?;
        let text = fs::read_to_string(spf_path).map_err(|e| format!("reading {spf_path}: {e}"))?;
        let spf = SpfFile::parse(&text).map_err(|e| format!("{spf_path}: {e}"))?;
        pairs.push(DesignPair { netlist, spf });
    }
    for d in grammar {
        pairs.push(DesignPair {
            netlist: d.netlist,
            spf: d.spf,
        });
    }
    Ok(pairs)
}

/// Builds the pooled, prepared link dataset over every design pair: one
/// balanced `LinkDataset` per design, an `XcNormalizer` fitted across
/// *all* graphs (so circuit statistics share one scale), capacitance
/// targets encoded with the paper's log-range normalizer.
fn build_link_samples(
    pairs: &[DesignPair],
    per_type: usize,
    pe: cirgps::pe::PeKind,
) -> Result<(Vec<String>, Vec<PreparedSample>), String> {
    let mut names = Vec::with_capacity(pairs.len());
    let mut built: Vec<(CircuitGraph, LinkDataset)> = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let (graph, map) = netlist_to_graph(&pair.netlist);
        let ds = LinkDataset::build(
            &pair.netlist.name,
            &graph,
            &pair.netlist,
            &map,
            &pair.spf,
            &DatasetConfig {
                max_per_type: per_type,
                ..Default::default()
            },
        );
        if ds.is_empty() {
            return Err(format!(
                "design {} produced no link samples (is the SPF empty?)",
                pair.netlist.name
            ));
        }
        names.push(pair.netlist.name.clone());
        built.push((graph, ds));
    }
    let graphs: Vec<&CircuitGraph> = built.iter().map(|(g, _)| g).collect();
    let xcn = XcNormalizer::fit(&graphs);
    let cap = CapNormalizer::paper_range();
    let mut samples = Vec::new();
    for (_, ds) in &built {
        samples.extend(prepare_link_dataset(ds, pe, &xcn, |c| cap.encode(c)));
    }
    Ok((names, samples))
}

/// Applies `--backend scalar|avx2|avx512`: forces the SIMD dispatch
/// backend process-wide before any kernel runs. Fails loudly when the
/// requested backend is unsupported by this CPU or was already latched
/// to something else — silently falling back would invalidate any
/// parity or benchmark run that asked for a specific backend.
fn apply_backend_flag(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(name) = flags.get("backend") {
        let backend = cirgps::nn::Backend::parse(name)?;
        cirgps::nn::Backend::force(backend).map_err(|e| format!("--backend {name}: {e}"))?;
    }
    Ok(())
}

/// Applies `--precision f32|int8` to a loaded model. Without the flag
/// the checkpoint decides: one exported with `--quantize` carries a
/// `quant` section and serves int8, anything else serves f32. `f32`
/// drops any loaded int8 codes; `int8` quantizes in-process when the
/// checkpoint did not ship codes (same math as `--quantize` at export).
fn apply_precision_flag(
    flags: &HashMap<String, String>,
    model: &mut CircuitGps,
) -> Result<(), String> {
    match flags.get("precision").map(String::as_str) {
        None => Ok(()),
        Some("f32") => {
            model.store_mut().clear_quant();
            Ok(())
        }
        Some("int8") => {
            if !model.store().has_quant() {
                let n = model.store_mut().quantize_int8();
                eprintln!("quantized {n} weight tensors to int8 (in-process, per-tensor scales)");
            }
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown --precision {other:?} (expected f32 or int8)"
        )),
    }
}

/// Applies `--quantize` before a checkpoint export: snapshots every
/// quantizable weight as int8 so the saved file carries a `quant`
/// section and downstream `predict`/`sweep`/`serve` default to int8.
fn apply_quantize_flag(
    flags: &HashMap<String, String>,
    model: &mut CircuitGps,
) -> Result<(), String> {
    if flag_bool(flags, "quantize")? {
        let n = model.store_mut().quantize_int8();
        eprintln!("quantized {n} weight tensors to int8 for export (per-tensor scales)");
    }
    Ok(())
}

/// Loads a checkpoint file via the self-describing container, printing a
/// deprecation warning when the file is a legacy raw weight dump.
fn load_checkpoint_file(path: &str) -> Result<CircuitGps, String> {
    let f = fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (model, fmt) = CircuitGps::load_checkpoint(std::io::BufReader::new(f))
        .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
    if fmt == CheckpointFormat::Legacy {
        eprintln!(
            "warning: {path} is a legacy raw weight dump (deprecated); the model config is \
             assumed to be the default. Re-save it as a self-describing checkpoint, e.g. by \
             re-running `cirgps pretrain`/`finetune` (see docs/checkpoint-format.md)."
        );
    }
    Ok(model)
}

/// Serializes a checkpoint (optionally with a resumable-training-state
/// section) and writes it atomically + durably: no crash can leave a
/// half-written file at `path` (see `docs/robustness.md`).
fn save_checkpoint_bytes(
    model: &CircuitGps,
    state: Option<&TrainState>,
    path: &str,
) -> Result<(), String> {
    let mut bytes = Vec::new();
    let result = match state {
        Some(st) => model.save_checkpoint_with_sections(
            &mut bytes,
            &[(TRAIN_STATE_SECTION, &st.to_bytes()[..])],
        ),
        None => model.save_checkpoint(&mut bytes),
    };
    result.map_err(|e| format!("serializing checkpoint {path}: {e}"))?;
    write_atomic(std::path::Path::new(path), &bytes)
        .map_err(|e| format!("writing checkpoint {path}: {e}"))
}

fn save_checkpoint_file(model: &CircuitGps, path: &str) -> Result<(), String> {
    save_checkpoint_bytes(model, None, path)
}

/// Writes a rolling training snapshot: the previous snapshot at `path`
/// is first rotated to `path.bak`, so even an injected fault *inside*
/// the new write (torn temp file, kill before rename) leaves the last
/// good snapshot loadable — `--resume` falls back to `.bak`.
fn save_snapshot(model: &CircuitGps, state: &TrainState, path: &str) -> Result<(), String> {
    let bak = format!("{path}.bak");
    if fs::metadata(path).is_ok() {
        fs::rename(path, &bak).map_err(|e| format!("rotating {path} -> {bak}: {e}"))?;
    }
    save_checkpoint_bytes(model, Some(state), path)
}

/// Loads the checkpoint `--resume` points at, falling back to the
/// `.bak` rotation sibling when the primary is missing or corrupt (the
/// "crashed mid-snapshot" case the chaos suite exercises).
fn load_resume_checkpoint(path: &str) -> Result<cirgps::model::Checkpoint, String> {
    let try_load = |p: &str| -> Result<cirgps::model::Checkpoint, String> {
        let f = fs::File::open(p).map_err(|e| format!("reading {p}: {e}"))?;
        CircuitGps::load_checkpoint_full(std::io::BufReader::new(f))
            .map_err(|e| format!("loading checkpoint {p}: {e}"))
    };
    match try_load(path) {
        Ok(ck) => Ok(ck),
        Err(primary) => {
            let bak = format!("{path}.bak");
            eprintln!("warning: {primary}; trying rotation sibling {bak}");
            try_load(&bak).map_err(|fallback| format!("{primary}; {fallback}"))
        }
    }
}

/// Interleaved holdout split: `pct` percent of samples (the dataset is
/// already shuffled at construction), spread evenly over the sequence
/// by Bresenham selection — exact for any `pct`, not just divisors of
/// 100. Deterministic, so reruns agree.
fn split_holdout(
    samples: Vec<PreparedSample>,
    pct: usize,
) -> (Vec<PreparedSample>, Vec<PreparedSample>) {
    if pct == 0 || samples.len() < 2 {
        return (samples, Vec::new());
    }
    let pct = pct.clamp(1, 50);
    let mut train = Vec::with_capacity(samples.len());
    let mut holdout = Vec::with_capacity(samples.len() * pct / 100 + 1);
    for (i, s) in samples.into_iter().enumerate() {
        if (i * pct) % 100 < pct {
            holdout.push(s);
        } else {
            train.push(s);
        }
    }
    (train, holdout)
}

fn json_link(m: &LinkMetrics) -> String {
    format!(
        "{{\"accuracy\":{:.6},\"f1\":{:.6},\"auc\":{:.6}}}",
        m.accuracy, m.f1, m.auc
    )
}

fn json_reg(m: &RegMetrics) -> String {
    format!(
        "{{\"mae\":{:.6},\"rmse\":{:.6},\"r2\":{:.6}}}",
        m.mae, m.rmse, m.r2
    )
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("[{}]", quoted.join(","))
}

/// Assembles and optionally writes the `--metrics-out` JSON training
/// log: per-epoch loss records, periodic eval records, final metrics.
fn write_metrics_log(
    flags: &HashMap<String, String>,
    command: &str,
    designs: &[String],
    epoch_lines: &[String],
    eval_lines: &[String],
    final_json: &str,
    seconds: f64,
) -> Result<(), String> {
    let Some(path) = flags.get("metrics-out") else {
        return Ok(());
    };
    let log = format!(
        "{{\"command\":{command:?},\"designs\":{},\"epochs\":[{}],\"eval\":[{}],\
         \"final\":{final_json},\"seconds\":{seconds:.3}}}\n",
        json_str_list(designs),
        epoch_lines.join(","),
        eval_lines.join(","),
    );
    // Atomic + durable: a crash mid-write must not leave torn JSON for
    // downstream tooling to choke on.
    write_atomic(std::path::Path::new(path), log.as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_pretrain(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "pretrain",
        &[
            "netlist",
            "top",
            "spf",
            "grammar",
            "per-type",
            "epochs",
            "batch-size",
            "lr",
            "seed",
            "hidden-dim",
            "layers",
            "heads",
            "pe-dim",
            "dropout",
            "holdout",
            "eval-every",
            "checkpoint-every",
            "resume",
            "quantize",
            "metrics-out",
            "out",
        ],
    )?;
    let out = flags
        .get("out")
        .ok_or("--out is required (checkpoint path to write)")?;
    let checkpoint_every = flag_parse(flags, "checkpoint-every", 0usize)?;
    let resume = flag_bool(flags, "resume")?;
    let per_type = flag_parse(flags, "per-type", 200)?;
    let holdout_pct = flag_parse(flags, "holdout", 10)?;
    if holdout_pct > 50 {
        return Err(format!(
            "--holdout {holdout_pct} must be 0..=50 (percent of samples held out)"
        ));
    }
    let eval_every = flag_parse(flags, "eval-every", 0)?;
    let run_seed = seed(flags)?;

    let defaults = ModelConfig::default();
    let mc = ModelConfig {
        hidden_dim: flag_parse(flags, "hidden-dim", defaults.hidden_dim)?,
        num_layers: flag_parse(flags, "layers", defaults.num_layers)?,
        heads: flag_parse(flags, "heads", defaults.heads)?,
        pe_dim: flag_parse(flags, "pe-dim", defaults.pe_dim)?,
        dropout: flag_parse(flags, "dropout", defaults.dropout)?,
        seed: run_seed,
        ..defaults
    };
    mc.check()
        .map_err(|e| format!("invalid model config: {e}"))?;
    let tc = TrainConfig {
        epochs: flag_parse(flags, "epochs", 30)?,
        batch_size: flag_parse(flags, "batch-size", 32)?,
        lr: flag_parse(flags, "lr", 1e-3)?,
        seed: run_seed,
        ..Default::default()
    };
    if tc.epochs == 0 || tc.batch_size == 0 {
        return Err("--epochs and --batch-size must be positive".into());
    }

    // `--resume` restores the model AND the training state from the
    // snapshot at --out (falling back to its .bak rotation sibling); a
    // fresh run builds the model from the architecture flags. The data
    // flags must match the interrupted run too — the dataset build is
    // deterministic, so identical flags give an identical sample set.
    let (mut model, resume_state) = if resume {
        let ck = load_resume_checkpoint(out)?;
        let Some(bytes) = ck.section(TRAIN_STATE_SECTION) else {
            return Err(format!(
                "{out} carries no training state — it is a completed checkpoint, not an \
                 interrupted-run snapshot; nothing to resume"
            ));
        };
        let st = TrainState::from_bytes(bytes).map_err(|e| format!("{out}: {e}"))?;
        st.check_resume(Task::LinkPrediction, &tc)
            .map_err(|e| format!("cannot resume from {out}: {e}"))?;
        if st.epochs_done >= tc.epochs {
            return Err(format!(
                "{out} already has all {} epochs done; nothing to resume (raise --epochs only \
                 by restarting — the cosine schedule horizon is part of the run)",
                tc.epochs
            ));
        }
        eprintln!(
            "resuming {out} at epoch {}/{} (model config comes from the snapshot)",
            st.epochs_done, tc.epochs
        );
        (ck.model, Some(st))
    } else {
        (CircuitGps::new(mc), None)
    };

    let pairs = load_design_pairs(flags)?;
    let (designs, samples) = build_link_samples(&pairs, per_type, model.cfg.pe)?;
    let (train_set, holdout) = split_holdout(samples, holdout_pct);
    eprintln!(
        "pretrain: {} samples over {} design(s) ({} held out), model {}d x {}L x {}h ({} params)",
        train_set.len() + holdout.len(),
        designs.len(),
        holdout.len(),
        model.cfg.hidden_dim,
        model.cfg.num_layers,
        model.cfg.heads,
        model.num_params()
    );
    // Restored epochs re-enter the metrics log so the record always
    // spans epoch 1..last (loss only; wall-clock detail lived in the
    // interrupted process).
    let mut epoch_lines: Vec<String> = resume_state
        .as_ref()
        .map(|st| {
            st.epoch_losses
                .iter()
                .enumerate()
                .map(|(i, l)| format!("{{\"epoch\":{},\"loss\":{l:.6}}}", i + 1))
                .collect()
        })
        .unwrap_or_default();
    let mut eval_lines = Vec::new();
    interrupt::install();
    let outcome = train_resumable(
        &mut model,
        &train_set,
        &tc,
        ResumableTrain {
            task: Task::LinkPrediction,
            resume: resume_state,
            stop: Some(interrupt::flag()),
        },
        &mut |m, p| {
            eprintln!(
                "epoch {:>3}/{}: loss {:.4} (lr {:.2e}, {:.1}s)",
                p.epoch, p.epochs, p.loss, p.lr, p.seconds
            );
            epoch_lines.push(format!(
                "{{\"epoch\":{},\"loss\":{:.6},\"lr\":{:.6e},\"seconds\":{:.3}}}",
                p.epoch, p.loss, p.lr, p.seconds
            ));
            if eval_every > 0 && p.epoch % eval_every == 0 && !holdout.is_empty() {
                let lm = evaluate_link(m, &holdout);
                eprintln!(
                    "  holdout: accuracy {:.3}, F1 {:.3}, AUC {:.3}",
                    lm.accuracy, lm.f1, lm.auc
                );
                eval_lines.push(format!(
                    "{{\"epoch\":{},\"accuracy\":{:.6},\"f1\":{:.6},\"auc\":{:.6}}}",
                    p.epoch, lm.accuracy, lm.f1, lm.auc
                ));
            }
        },
        &mut |m, st| {
            if checkpoint_every > 0
                && st.epochs_done < tc.epochs
                && st.epochs_done % checkpoint_every == 0
            {
                match save_snapshot(m, st, out) {
                    Ok(()) => {
                        eprintln!("snapshot: {out} at epoch {}/{}", st.epochs_done, tc.epochs)
                    }
                    // A failed snapshot must not kill a healthy training
                    // run — the next interval (or the final write) retries.
                    Err(e) => {
                        eprintln!("warning: snapshot at epoch {} failed: {e}", st.epochs_done)
                    }
                }
            }
        },
    );
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            // The rolling snapshot written at the last epoch boundary is
            // untouched — after fixing the divergence (data, lr), resume
            // from it with `--resume`.
            return Err(format!(
                "training aborted: {e}; the most recent rolling snapshot is still \
                 valid — fix the run and continue with `cirgps pretrain --resume`"
            ));
        }
    };
    let hist = outcome.history;

    if outcome.interrupted {
        save_snapshot(&model, &outcome.state, out)?;
        println!(
            "interrupted: wrote resumable snapshot {out} at epoch {}/{} — continue with \
             `cirgps pretrain --resume` and the same flags",
            outcome.state.epochs_done, tc.epochs
        );
        return Ok(());
    }

    let (final_set, final_label) = if holdout.is_empty() {
        (&train_set, "train")
    } else {
        (&holdout, "holdout")
    };
    let lm = evaluate_link(&model, final_set);
    eprintln!(
        "final {final_label} metrics: accuracy {:.3}, F1 {:.3}, AUC {:.3}",
        lm.accuracy, lm.f1, lm.auc
    );
    write_metrics_log(
        flags,
        "pretrain",
        &designs,
        &epoch_lines,
        &eval_lines,
        &json_link(&lm),
        hist.seconds,
    )?;
    apply_quantize_flag(flags, &mut model)?;
    save_checkpoint_file(&model, out)?;
    println!(
        "wrote {out}: {} trainable params, {} epochs, final loss {:.4}, {final_label} AUC {:.3}",
        model.num_params(),
        hist.epoch_losses.len(),
        hist.epoch_losses.last().copied().unwrap_or(f32::NAN),
        lm.auc
    );
    Ok(())
}

fn cmd_finetune(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "finetune",
        &[
            "model",
            "netlist",
            "top",
            "spf",
            "shots",
            "unfreeze-all",
            "per-type",
            "epochs",
            "batch-size",
            "lr",
            "seed",
            "eval-every",
            "quantize",
            "metrics-out",
            "out",
        ],
    )?;
    let out = flags
        .get("out")
        .ok_or("--out is required (checkpoint path to write)")?;
    let model_path = flags
        .get("model")
        .ok_or("--model is required (a pretrained checkpoint)")?;
    let shots = flag_parse(flags, "shots", 0)?;
    if shots == 0 {
        return Err("--shots is required (labeled pairs to fine-tune on, >= 1)".into());
    }
    let unfreeze_all = flag_bool(flags, "unfreeze-all")?;
    let per_type = flag_parse(flags, "per-type", 200)?;
    let eval_every = flag_parse(flags, "eval-every", 0)?;
    let tc = TrainConfig {
        epochs: flag_parse(flags, "epochs", 50)?,
        batch_size: flag_parse(flags, "batch-size", 8)?,
        lr: flag_parse(flags, "lr", 1e-3)?,
        seed: seed(flags)?,
        ..Default::default()
    };
    if tc.epochs == 0 || tc.batch_size == 0 {
        return Err("--epochs and --batch-size must be positive".into());
    }

    let mut model = load_checkpoint_file(model_path)?;
    let pairs = load_design_pairs(flags)?;
    let (designs, samples) = build_link_samples(&pairs, per_type, model.cfg.pe)?;

    // Few-shot selection: only positives carry capacitance labels. The
    // shots are spread evenly over the (already shuffled) positive set;
    // the rest become the held-out evaluation set.
    let positives: Vec<PreparedSample> = samples.into_iter().filter(|s| s.label > 0.5).collect();
    if shots >= positives.len() {
        return Err(format!(
            "--shots {shots} must be < the {} labeled positive pairs (some must remain held \
             out for evaluation; raise --per-type for more)",
            positives.len()
        ));
    }
    let stride = positives.len() / shots;
    let mut shot_set = Vec::with_capacity(shots);
    let mut eval_set = Vec::with_capacity(positives.len() - shots);
    for (i, s) in positives.into_iter().enumerate() {
        if i % stride == 0 && shot_set.len() < shots {
            shot_set.push(s);
        } else {
            eval_set.push(s);
        }
    }
    let mode = if unfreeze_all {
        FinetuneMode::All
    } else {
        FinetuneMode::HeadOnly
    };
    eprintln!(
        "finetune: {} shots / {} held-out labeled pairs, backbone {}",
        shot_set.len(),
        eval_set.len(),
        if unfreeze_all { "unfrozen" } else { "frozen" }
    );

    let mut epoch_lines = Vec::new();
    let mut eval_lines = Vec::new();
    let hist = finetune_regression_with_progress(&mut model, &shot_set, mode, &tc, &mut |m, p| {
        eprintln!(
            "epoch {:>3}/{}: loss {:.4} (lr {:.2e}, {:.1}s)",
            p.epoch, p.epochs, p.loss, p.lr, p.seconds
        );
        epoch_lines.push(format!(
            "{{\"epoch\":{},\"loss\":{:.6},\"lr\":{:.6e},\"seconds\":{:.3}}}",
            p.epoch, p.loss, p.lr, p.seconds
        ));
        if eval_every > 0 && p.epoch % eval_every == 0 {
            let rm = evaluate_regression(m, &eval_set);
            eprintln!(
                "  holdout: MAE {:.4}, RMSE {:.4}, R2 {:.3}",
                rm.mae, rm.rmse, rm.r2
            );
            eval_lines.push(format!(
                "{{\"epoch\":{},\"mae\":{:.6},\"rmse\":{:.6},\"r2\":{:.6}}}",
                p.epoch, rm.mae, rm.rmse, rm.r2
            ));
        }
    })
    .map_err(|e| format!("training aborted: {e}"))?;

    let rm = evaluate_regression(&model, &eval_set);
    eprintln!(
        "final holdout metrics (normalized scale): MAE {:.4}, RMSE {:.4}, R2 {:.3}",
        rm.mae, rm.rmse, rm.r2
    );
    write_metrics_log(
        flags,
        "finetune",
        &designs,
        &epoch_lines,
        &eval_lines,
        &json_reg(&rm),
        hist.seconds,
    )?;
    apply_quantize_flag(flags, &mut model)?;
    save_checkpoint_file(&model, out)?;
    println!(
        "wrote {out}: fine-tuned on {} shots ({} mode), holdout MAE {:.4}",
        shot_set.len(),
        if unfreeze_all { "all" } else { "head-only" },
        rm.mae
    );
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "eval",
        &[
            "model", "netlist", "top", "spf", "grammar", "task", "per-type",
        ],
    )?;
    let model_path = flags.get("model").ok_or("--model is required")?;
    let per_type = flag_parse(flags, "per-type", 200)?;
    let task = flags.get("task").map(String::as_str).unwrap_or("both");
    if !matches!(task, "link" | "cap" | "both") {
        return Err(format!(
            "unknown --task {task:?} (expected link, cap or both)"
        ));
    }
    let model = load_checkpoint_file(model_path)?;
    let pairs = load_design_pairs(flags)?;
    let (designs, samples) = build_link_samples(&pairs, per_type, model.cfg.pe)?;
    let positives: Vec<PreparedSample> =
        samples.iter().filter(|s| s.label > 0.5).cloned().collect();

    let mut fields = vec![
        format!("\"designs\":{}", json_str_list(&designs)),
        format!("\"samples\":{}", samples.len()),
        format!("\"positives\":{}", positives.len()),
    ];
    if matches!(task, "link" | "both") {
        let lm = evaluate_link(&model, &samples);
        fields.push(format!("\"link\":{}", json_link(&lm)));
    }
    if matches!(task, "cap" | "both") {
        if positives.is_empty() {
            return Err("no labeled positive pairs to evaluate regression on".into());
        }
        let rm = evaluate_regression(&model, &positives);
        fields.push(format!("\"reg\":{}", json_reg(&rm)));
    }
    println!("{{{}}}", fields.join(","));
    Ok(())
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "gen", &["kind", "preset", "seed", "out"])?;
    let kind = design_kind(flags.get("kind").ok_or("--kind is required")?)?;
    let out_dir = std::path::PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| ".".into()));
    let (design, spf) =
        generate_with_parasitics(kind, preset(flags)?, seed(flags)?).map_err(|e| e.to_string())?;
    let (sp_path, spf_path) =
        write_design_pair(&out_dir, &design, &spf).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} devices flattened) and {} ({} ground + {} coupling caps)",
        sp_path.display(),
        design.netlist.num_devices(),
        spf_path.display(),
        spf.ground_caps.len(),
        spf.coupling_caps.len()
    );
    Ok(())
}

fn cmd_datagen(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "datagen",
        &[
            "family", "seed", "max-size", "min-size", "count", "out", "threads", "list",
        ],
    )?;
    let family = match flags.get("family").map(String::as_str).unwrap_or("all") {
        "all" => None,
        name => Some(Family::parse(name).ok_or_else(|| {
            format!("unknown --family {name:?} (expected all, chain, tree, bus, fabric, array or sandwich)")
        })?),
    };
    let run_seed = seed(flags)?;
    let max_size: u64 = flag_parse(flags, "max-size", 4_000)?;
    let min_size: u64 = flag_parse(flags, "min-size", 0)?;
    let count: usize = flag_parse(flags, "count", 0)?;
    let threads: usize = flag_parse(flags, "threads", 1)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }

    let mut terms = enumerate_terms(family, min_size, max_size);
    if count > 0 {
        terms.truncate(count);
    }
    if terms.is_empty() {
        return Err(format!(
            "no designs in the size window [{min_size}, {max_size}]"
        ));
    }
    if flag_bool(flags, "list")? {
        for t in &terms {
            println!("{}\t{}\t{}", t.name(), t.family().name(), t.size_estimate());
        }
        eprintln!("{} designs in the window", terms.len());
        return Ok(());
    }

    let out_dir = std::path::PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| ".".into()));
    let start = std::time::Instant::now();

    // Work-stealing over the canonically sorted term list. Every design's
    // bytes are a pure function of (term, seed), so thread count only
    // decides who builds what — never what gets built. Per-design report
    // lines are collected and re-sorted by term index so stdout is also
    // byte-identical across --threads.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let lines = std::sync::Mutex::new(Vec::<(usize, String)>::new());
    let skipped = std::sync::atomic::AtomicUsize::new(0);
    let failure = std::sync::Mutex::new(None::<String>);
    std::thread::scope(|s| {
        for _ in 0..threads.min(terms.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(term) = terms.get(i) else { return };
                if failure.lock().unwrap().is_some() {
                    return;
                }
                let design = match build_term(term, run_seed) {
                    Ok(d) => d,
                    Err(e) => {
                        *failure.lock().unwrap() = Some(format!("building {}: {e}", term.name()));
                        return;
                    }
                };
                if let Err(violations) = check_design(&design) {
                    skipped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let mut lock = lines.lock().unwrap();
                    lock.push((i, format!("{}: SKIPPED ({})", term.name(), violations[0])));
                    continue;
                }
                let spf = extract_parasitics(
                    &design,
                    &ExtractConfig {
                        seed: term_extract_seed(run_seed, term),
                        ..Default::default()
                    },
                );
                if let Err(e) = write_design_pair(&out_dir, &design, &spf) {
                    *failure.lock().unwrap() = Some(format!("writing {}: {e}", term.name()));
                    return;
                }
                let line = format!(
                    "{}\t{}\test {}\t{} devices\t{} + {} caps",
                    term.name(),
                    term.family().name(),
                    term.size_estimate(),
                    design.netlist.num_devices(),
                    spf.ground_caps.len(),
                    spf.coupling_caps.len()
                );
                lines.lock().unwrap().push((i, line));
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    let mut lines = lines.into_inner().unwrap();
    lines.sort_unstable_by_key(|(i, _)| *i);
    for (_, line) in &lines {
        println!("{line}");
    }
    let skipped = skipped.into_inner();
    let written = lines.len() - skipped;
    let secs = start.elapsed().as_secs_f64();
    eprintln!(
        "wrote {written} design pairs to {} in {secs:.2}s ({:.1} designs/s), {skipped} skipped invalid",
        out_dir.display(),
        written as f64 / secs.max(1e-9),
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "stats", &["netlist", "top"])?;
    let netlist = load_netlist(flags)?;
    let (graph, _) = netlist_to_graph(&netlist);
    println!("{}", GraphStats::of(&netlist.name, &graph));
    println!("transistors: {}", netlist.transistor_count());
    let e = graph.edge_type_counts();
    println!("edges: {} device-pin, {} net-pin", e[0], e[1]);
    println!("\nTable-I circuit statistics (XC) dimensions:");
    for ty in [
        cirgps::graph::NodeType::Net,
        cirgps::graph::NodeType::Device,
        cirgps::graph::NodeType::Pin,
    ] {
        println!("  {ty} nodes:");
        for (i, d) in XcSpec::dims(ty).iter().enumerate() {
            println!("    [{i:2}] {d}");
        }
    }
    Ok(())
}

fn cmd_sample(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "sample", &["netlist", "top", "spf", "per-type"])?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let per_type: usize = flag_parse(flags, "per-type", 200)?;
    let (graph, map) = netlist_to_graph(&netlist);
    let ds = LinkDataset::build(
        &netlist.name,
        &graph,
        &netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: per_type,
            ..Default::default()
        },
    );
    println!("design {}: {} samples", ds.design, ds.len());
    println!(
        "raw positive couplings: {} p2n, {} p2p, {} n2n",
        ds.raw_counts[0], ds.raw_counts[1], ds.raw_counts[2]
    );
    println!(
        "mean enclosing subgraph: {:.1} nodes, {:.1} edges",
        ds.mean_subgraph_nodes, ds.mean_subgraph_edges
    );
    let pos = ds.samples.iter().filter(|s| s.link.label > 0.5).count();
    println!("balance: {} positive / {} negative", pos, ds.len() - pos);
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "predict",
        &[
            "netlist",
            "top",
            "spf",
            "task",
            "batch-size",
            "per-type",
            "model",
            "backend",
            "precision",
            "out",
        ],
    )?;
    apply_backend_flag(flags)?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let per_type: usize = flag_parse(flags, "per-type", 200)?;
    let batch_size: usize = flag_parse(flags, "batch-size", 32)?;
    if batch_size == 0 {
        return Err("--batch-size must be positive".into());
    }
    let task = flags.get("task").map(String::as_str).unwrap_or("link");
    if !matches!(task, "link" | "cap") {
        return Err(format!("unknown --task {task:?} (expected link or cap)"));
    }

    let (graph, map) = netlist_to_graph(&netlist);
    let ds = LinkDataset::build(
        &netlist.name,
        &graph,
        &netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: per_type,
            ..Default::default()
        },
    );

    let mut model = match flags.get("model") {
        Some(path) => load_checkpoint_file(path)?,
        None => CircuitGps::new(ModelConfig::default()),
    };
    apply_precision_flag(flags, &mut model)?;
    let xcn = XcNormalizer::fit(&[&graph]);
    let mut session = InferenceSession::new(
        model,
        xcn,
        &graph,
        SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        },
    )
    .with_batch_size(batch_size);

    // The session re-extracts each pair's subgraph from the *plain*
    // graph rather than reusing the dataset's: `LinkDataset::build`
    // samples from an augmented graph with every candidate coupling
    // injected as an edge (the training-time convention), which would
    // leak the candidate structure into a pure inference query.
    let pairs: Vec<(u32, u32)> = ds.samples.iter().map(|s| (s.link.a, s.link.b)).collect();
    let preds = match task {
        "link" => session.predict_links(&pairs),
        _ => session.predict_couplings(&pairs),
    };

    let cap_norm = CapNormalizer::paper_range();
    let mut lines = String::new();
    for (s, &p) in ds.samples.iter().zip(&preds) {
        let extra = if task == "cap" {
            format!(",\"cap_pred_f\":{:.4e}", cap_norm.decode(p))
        } else {
            String::new()
        };
        lines.push_str(&format!(
            "{{\"a\":{},\"b\":{},\"label\":{},\"{}\":{:.6}{}}}\n",
            s.link.a,
            s.link.b,
            s.link.label,
            if task == "link" { "prob" } else { "cap_norm" },
            p,
            extra
        ));
    }
    match flags.get("out") {
        Some(path) => fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{lines}"),
    }
    let (hits, misses) = session.cache_stats();
    eprintln!(
        "predicted {} pairs (task {task}, batch {batch_size}; sample cache {hits} hits / {misses} misses)",
        preds.len()
    );
    Ok(())
}

/// Parses a `--pairs` file: one pair per line, `a,b` or `a b`, with
/// blank lines and `#` comments skipped. Validates ids against `graph`.
fn parse_pairs_file(path: &str, graph: &CircuitGraph) -> Result<Vec<(u32, u32)>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let n = graph.num_nodes() as u32;
    let mut pairs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty());
        let parse = |tok: Option<&str>| -> Result<u32, String> {
            tok.ok_or_else(|| format!("{path}:{}: expected two node ids", ln + 1))?
                .parse()
                .map_err(|_| format!("{path}:{}: bad node id in {line:?}", ln + 1))
        };
        let a = parse(it.next())?;
        let b = parse(it.next())?;
        if it.next().is_some() {
            return Err(format!("{path}:{}: expected exactly two node ids", ln + 1));
        }
        if a == b {
            return Err(format!("{path}:{}: pair anchors must differ", ln + 1));
        }
        if a >= n || b >= n {
            return Err(format!(
                "{path}:{}: node id out of range (graph has {n} nodes)",
                ln + 1
            ));
        }
        pairs.push((a, b));
    }
    if pairs.is_empty() {
        return Err(format!("{path} lists no pairs"));
    }
    Ok(pairs)
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "sweep",
        &[
            "netlist",
            "top",
            "model",
            "task",
            "pairs",
            "per-node-cap",
            "max-pairs",
            "chunk",
            "threads",
            "format",
            "out",
            "no-dedup",
            "backend",
            "precision",
        ],
    )?;
    apply_backend_flag(flags)?;
    let netlist = load_netlist(flags)?;
    let task = match flags.get("task").map(String::as_str).unwrap_or("link") {
        "link" => SweepTask::Link,
        "cap" => SweepTask::Coupling,
        other => return Err(format!("unknown --task {other:?} (expected link or cap)")),
    };
    let format = flags.get("format").map(String::as_str).unwrap_or("jsonl");
    if !matches!(format, "jsonl" | "csv") {
        return Err(format!(
            "unknown --format {format:?} (expected jsonl or csv)"
        ));
    }
    let chunk: usize = flag_parse(flags, "chunk", 4096)?;
    if chunk == 0 {
        return Err("--chunk must be positive".into());
    }
    let threads: usize = flag_parse(flags, "threads", 1)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let per_node_cap: usize = flag_parse(flags, "per-node-cap", 0)?;
    let max_pairs: usize = flag_parse(flags, "max-pairs", 0)?;

    let (graph, _map) = netlist_to_graph(&netlist);
    let mut model = match flags.get("model") {
        Some(path) => load_checkpoint_file(path)?,
        None => CircuitGps::new(ModelConfig::default()),
    };
    apply_precision_flag(flags, &mut model)?;
    // Same normalization and extraction parameters as `cirgps predict`
    // over the *plain* graph — the bitwise parity contract depends on
    // matching its inputs exactly.
    let xcn = XcNormalizer::fit(&[&graph]);
    let cfg = SweepConfig {
        task,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        },
        chunk,
        threads,
        dedup: !flag_bool(flags, "no-dedup")?,
    };

    let explicit = match flags.get("pairs") {
        Some(path) => Some(parse_pairs_file(path, &graph)?),
        None => None,
    };

    use std::io::Write as _;
    let mut writer: Box<dyn std::io::Write> = match flags.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(
            fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let cap_norm = CapNormalizer::paper_range();
    if format == "csv" {
        let header = match task {
            SweepTask::Link => "a,b,prob\n",
            SweepTask::Coupling => "a,b,cap_norm,cap_pred_f\n",
        };
        writer
            .write_all(header.as_bytes())
            .map_err(|e| format!("writing output: {e}"))?;
    }

    // Streaming writer: one formatted block per planned window, flushed
    // before the next window starts, so output memory stays bounded by
    // the window too.
    let mut io_err: Option<String> = None;
    let start = std::time::Instant::now();
    let mut emit = |pairs: &[(u32, u32)], values: &[f32]| -> bool {
        let mut block = String::with_capacity(pairs.len() * 40);
        for (&(a, b), &p) in pairs.iter().zip(values) {
            match (task, format) {
                (SweepTask::Link, "jsonl") => {
                    block.push_str(&format!("{{\"a\":{a},\"b\":{b},\"prob\":{p:.6}}}\n"));
                }
                (SweepTask::Coupling, "jsonl") => {
                    block.push_str(&format!(
                        "{{\"a\":{a},\"b\":{b},\"cap_norm\":{p:.6},\"cap_pred_f\":{:.4e}}}\n",
                        cap_norm.decode(p)
                    ));
                }
                (SweepTask::Link, _) => block.push_str(&format!("{a},{b},{p:.6}\n")),
                (SweepTask::Coupling, _) => {
                    block.push_str(&format!("{a},{b},{p:.6},{:.4e}\n", cap_norm.decode(p)));
                }
            }
        }
        let result = writer
            .write_all(block.as_bytes())
            .and_then(|()| writer.flush());
        match result {
            Ok(()) => true,
            Err(e) => {
                io_err = Some(format!("writing output: {e}"));
                false
            }
        }
    };

    let stats = match explicit {
        Some(pairs) => sweep_pairs(&model, &xcn, &graph, pairs, &cfg, &mut emit),
        None => sweep_pairs(
            &model,
            &xcn,
            &graph,
            CandidatePairs::new(&graph, per_node_cap, max_pairs),
            &cfg,
            &mut emit,
        ),
    };
    if let Some(e) = io_err {
        return Err(e);
    }
    if stats.pairs == 0 {
        return Err("no candidate pairs to sweep (empty enumeration?)".into());
    }

    let elapsed = start.elapsed();
    let us_per_pair = elapsed.as_micros() as f64 / stats.pairs as f64;
    eprintln!(
        "swept {} pairs in {} windows of {} ({} unique forwards, {} dedup hits = {:.1}%); \
         peak resident {} pairs; {:.2}s total, {:.1}µs/pair amortized",
        stats.pairs,
        stats.chunks,
        chunk,
        stats.unique_forwards,
        stats.dedup_hits,
        100.0 * stats.dedup_hits as f64 / stats.pairs as f64,
        stats.peak_resident,
        elapsed.as_secs_f64(),
        us_per_pair
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "serve",
        &[
            "netlist",
            "top",
            "model",
            "addr",
            "max-batch",
            "max-wait-us",
            "workers",
            "queue-cap",
            "cache-cap",
            "drain-timeout-ms",
            "request-timeout-ms",
            "max-body-bytes",
            "max-headers",
            "idle-timeout-ms",
            "ingress-timeout-ms",
            "max-conns",
            "backend",
            "precision",
        ],
    )?;
    apply_backend_flag(flags)?;
    let defaults = ServeConfig::default();
    let max_batch = flag_parse(flags, "max-batch", defaults.max_batch)?;
    let max_wait_us = flag_parse(flags, "max-wait-us", defaults.max_wait.as_micros() as usize)?;
    let workers = flag_parse(flags, "workers", defaults.workers)?;
    let queue_cap = flag_parse(flags, "queue-cap", defaults.queue_capacity)?;
    let cache_cap = flag_parse(flags, "cache-cap", defaults.cache_capacity)?;
    let drain_timeout_ms = flag_parse(
        flags,
        "drain-timeout-ms",
        defaults.drain_timeout.as_millis() as u64,
    )?;
    let request_timeout_ms = flag_parse(
        flags,
        "request-timeout-ms",
        defaults.request_timeout.as_millis() as u64,
    )?;
    let max_body_bytes = flag_parse(flags, "max-body-bytes", defaults.max_body_bytes)?;
    let max_headers = flag_parse(flags, "max-headers", defaults.max_headers)?;
    let idle_timeout_ms = flag_parse(
        flags,
        "idle-timeout-ms",
        defaults.idle_timeout.as_millis() as u64,
    )?;
    let ingress_timeout_ms = flag_parse(
        flags,
        "ingress-timeout-ms",
        defaults.ingress_timeout.as_millis() as u64,
    )?;
    let max_conns = flag_parse(flags, "max-conns", defaults.max_connections)?;
    if request_timeout_ms == 0 {
        return Err("--request-timeout-ms must be positive".into());
    }
    if max_body_bytes == 0 || max_headers == 0 {
        return Err("--max-body-bytes and --max-headers must be positive".into());
    }
    if idle_timeout_ms == 0 || ingress_timeout_ms == 0 {
        return Err("--idle-timeout-ms and --ingress-timeout-ms must be positive".into());
    }
    if max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    if max_batch == 0 || workers == 0 {
        return Err("--max-batch and --workers must be positive".into());
    }
    if queue_cap < max_batch {
        return Err(format!(
            "--queue-cap {queue_cap} must hold at least one batch (--max-batch {max_batch})"
        ));
    }
    if cache_cap < max_batch {
        return Err(format!(
            "--cache-cap {cache_cap} must hold at least one batch (--max-batch {max_batch})"
        ));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8321".into());

    let netlist = load_netlist(flags)?;
    let (graph, _map) = netlist_to_graph(&netlist);
    let mut model = match flags.get("model") {
        Some(path) => load_checkpoint_file(path)?,
        None => {
            eprintln!(
                "warning: no --model checkpoint; serving a freshly initialized \
                 default model (structure-only smoke predictions). Train one with \
                 `cirgps pretrain`/`finetune` (docs/training.md)."
            );
            CircuitGps::new(ModelConfig::default())
        }
    };
    apply_precision_flag(flags, &mut model)?;
    eprintln!(
        "inference backend: {}, precision: {}",
        cirgps::nn::Backend::active().name(),
        if model.store().has_quant() {
            "int8"
        } else {
            "f32"
        }
    );

    let cfg = ServeConfig {
        max_batch,
        max_wait: Duration::from_micros(max_wait_us as u64),
        workers,
        queue_capacity: queue_cap,
        cache_capacity: cache_cap,
        drain_timeout: Duration::from_millis(drain_timeout_ms),
        request_timeout: Duration::from_millis(request_timeout_ms),
        max_body_bytes,
        max_headers,
        idle_timeout: Duration::from_millis(idle_timeout_ms),
        ingress_timeout: Duration::from_millis(ingress_timeout_ms),
        max_connections: max_conns,
        ..defaults
    };
    let listener = TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "cirgps-serve: design {} ({} nodes, {} edges) on http://{local} \
         ({workers} workers, batch ≤ {max_batch}, wait ≤ {max_wait_us} µs)",
        netlist.name,
        graph.num_nodes(),
        graph.num_edges()
    );
    eprintln!(
        "endpoints: GET /healthz, GET /metrics, POST /v1/predict, POST /v1/sweep (docs/serving.md)"
    );
    let server = Server::new(model, graph, netlist.name.clone(), cfg);
    // SIGINT/SIGTERM → graceful drain: a monitor thread polls the
    // interrupt latch (signal handlers can only flip an atomic) and
    // kicks off the drain; `serve` returns once connections finish or
    // the drain deadline passes.
    interrupt::install();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            use std::sync::atomic::Ordering;
            while !done.load(Ordering::SeqCst) {
                if interrupt::requested() {
                    eprintln!(
                        "cirgps-serve: signal received — draining (answering in-flight work, \
                         refusing new connections, deadline {drain_timeout_ms} ms)"
                    );
                    server.begin_drain(local);
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        server.serve(listener);
        done.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    eprintln!("cirgps-serve: drained; all accepted work answered");
    Ok(())
}

fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::Write as _;
    check_flags(
        flags,
        "client",
        &[
            "addr",
            "method",
            "path",
            "body",
            "body-file",
            "retries",
            "deadline-ms",
            "seed",
        ],
    )?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8321".into());
    let method = flags
        .get("method")
        .cloned()
        .unwrap_or_else(|| "GET".into())
        .to_ascii_uppercase();
    if method != "GET" && method != "POST" {
        return Err(format!("--method must be GET or POST, got {method:?}"));
    }
    let path = flags
        .get("path")
        .cloned()
        .unwrap_or_else(|| "/healthz".into());
    let body = match (flags.get("body"), flags.get("body-file")) {
        (Some(_), Some(_)) => return Err("--body and --body-file are exclusive".into()),
        (Some(b), None) => b.clone().into_bytes(),
        (None, Some(f)) => fs::read(f).map_err(|e| format!("reading {f}: {e}"))?,
        (None, None) => Vec::new(),
    };
    let retries: usize = flag_parse(flags, "retries", 6)?;
    let deadline_ms: u64 = flag_parse(flags, "deadline-ms", 30_000)?;
    if retries == 0 || deadline_ms == 0 {
        return Err("--retries and --deadline-ms must be positive".into());
    }
    let seed: u64 = flag_parse(flags, "seed", 0x5eed)?;
    let policy = RetryPolicy {
        max_attempts: retries,
        deadline: Duration::from_millis(deadline_ms),
        ..RetryPolicy::default()
    };
    let mut client = Client::new(addr).with_policy(policy).with_seed(seed);

    // /v1/sweep streams a chunked JSONL body: forward each chunk to
    // stdout as it arrives instead of buffering the whole sweep.
    if path.starts_with("/v1/sweep") {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let mut write_ok = true;
        let status = client
            .post_stream(&path, &body, &mut |chunk| {
                write_ok = out.write_all(chunk).is_ok() && out.flush().is_ok();
                write_ok
            })
            .map_err(|e| e.to_string())?;
        if !write_ok {
            return Err("stdout closed mid-stream".into());
        }
        if status >= 400 {
            return Err(format!("server answered {status}"));
        }
        return Ok(());
    }

    let resp = match method.as_str() {
        "GET" => client.get(&path),
        _ => client.post(&path, &body),
    }
    .map_err(|e| e.to_string())?;
    let mut stdout = std::io::stdout().lock();
    stdout
        .write_all(&resp.body)
        .and_then(|()| {
            if resp.body.last() != Some(&b'\n') {
                stdout.write_all(b"\n")
            } else {
                Ok(())
            }
        })
        .map_err(|e| e.to_string())?;
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

fn cmd_energy(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "energy",
        &["netlist", "top", "spf", "vectors", "vdd", "seed"],
    )?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let vectors: usize = flag_parse(flags, "vectors", 32)?;
    let vdd: f64 = flag_parse(flags, "vdd", 0.9)?;
    let caps = net_capacitances(&netlist, &spf);
    let total_cap: f64 = caps.iter().sum();
    let result = simulate_energy(&netlist, &caps, vdd, vectors, seed(flags)?);
    println!(
        "total lumped capacitance: {:.3e} F over {} nets",
        total_cap,
        netlist.num_nets()
    );
    println!(
        "switching energy: {:.3e} J across {} vectors ({} toggles)",
        result.energy, result.vectors, result.total_toggles
    );
    Ok(())
}
