//! `cirgps` — command-line front end for the CirGPS pipeline.
//!
//! ```text
//! cirgps gen     --kind ssram --preset tiny --seed 7 --out designs/
//! cirgps stats   --netlist designs/SSRAM.sp --top SSRAM
//! cirgps sample  --netlist designs/SSRAM.sp --top SSRAM --spf designs/SSRAM.spf
//! cirgps energy  --netlist designs/SSRAM.sp --top SSRAM --spf designs/SSRAM.spf --vectors 32
//! ```

use std::collections::HashMap;
use std::fs;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::{netlist_to_graph, GraphStats, XcSpec};
use cirgps::model::{CircuitGps, InferenceSession, ModelConfig};
use cirgps::netlist::{Netlist, SpfFile, SpiceFile};
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, SamplerConfig, XcNormalizer};
use cirgps::serve::{ServeConfig, Server};
use cirgps::spice::{net_capacitances, simulate_energy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // Help never flag-parses: `cirgps help gen` must print usage, not
    // complain about the positional "gen".
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(&args[1..]).and_then(|flags| match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "sample" => cmd_sample(&flags),
        "predict" => cmd_predict(&flags),
        "serve" => cmd_serve(&flags),
        "energy" => cmd_energy(&flags),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cirgps — few-shot parasitic prediction pipeline

USAGE:
  cirgps gen    --kind <ssram|ultra8t|sandwich|clkgen|timing|array>
                [--preset tiny|small|paper] [--seed N] [--out DIR]
      Generate a synthetic AMS design; writes <NAME>.sp and <NAME>.spf.

  cirgps stats  --netlist FILE.sp --top NAME
      Parse + flatten a SPICE netlist and print heterogeneous-graph
      statistics (Table IV format) and the Table-I feature spec.

  cirgps sample --netlist FILE.sp --top NAME --spf FILE.spf
                [--per-type N]
      Join SPF couplings, build the balanced link dataset with 1-hop
      enclosing subgraphs, and print dataset statistics.

  cirgps predict --netlist FILE.sp --top NAME --spf FILE.spf
                [--task link|cap] [--batch-size N] [--per-type N]
                [--model FILE.ckpt] [--out FILE.json]
      Score the design's candidate coupling pairs with the batched
      tape-free inference engine (block-diagonal attention).
        --task link|cap   link probability (default) or normalized +
                          decoded coupling capacitance per pair
        --batch-size N    samples per packed batch (default 32)
        --per-type N      candidate pairs sampled per coupling type
                          (default 200)
        --model FILE      load checkpoint weights; without it a freshly
                          initialized default model is used
                          (structure-only smoke predictions)
        --out FILE.json   write JSON lines there instead of stdout
      Output: one JSON object per candidate pair.

  cirgps serve  --netlist FILE.sp --top NAME [--model FILE.ckpt]
                [--addr HOST:PORT] [--max-batch N] [--max-wait-us N]
                [--workers N] [--queue-cap N] [--cache-cap N]
      Run the long-lived inference daemon: model, graph and sample
      caches stay warm, and concurrent HTTP queries are coalesced into
      packed batches by the dynamic micro-batcher (see docs/serving.md).
        --addr         listen address (default 127.0.0.1:8321)
        --max-batch    flush a batch at N queries (default 32)
        --max-wait-us  flush a partial batch after N microseconds
                       (default 2000)
        --workers      scheduler threads (default 2)
        --queue-cap    queue depth before 503 backpressure (default 1024)
        --cache-cap    per-worker prepared-sample cache (default 65536)
      Endpoints: GET /healthz, GET /metrics, POST /v1/predict.

  cirgps energy --netlist FILE.sp --top NAME --spf FILE.spf
                [--vectors N] [--vdd V] [--seed N]
      Run the switch-level simulator and report switching energy.";

/// Parses `--flag value` pairs. Rejects positional arguments; a flag
/// followed by another flag (or nothing) gets an empty value, which the
/// per-command validators then report with the flag's name.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(key.to_string(), value);
        } else {
            return Err(format!(
                "unexpected positional argument {:?} (flags are --name value pairs)",
                args[i]
            ));
        }
    }
    Ok(flags)
}

/// Rejects flags a command does not understand, naming the failing flag
/// and listing what the command accepts.
fn check_flags(flags: &HashMap<String, String>, cmd: &str, allowed: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|k| !allowed.contains(k))
        .collect();
    unknown.sort_unstable();
    if let Some(first) = unknown.first() {
        return Err(format!(
            "unknown flag --{first} for `cirgps {cmd}` (expected {})",
            allowed
                .iter()
                .map(|f| format!("--{f}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(())
}

fn design_kind(name: &str) -> Result<DesignKind, String> {
    Ok(match name {
        "ssram" => DesignKind::Ssram,
        "ultra8t" => DesignKind::Ultra8t,
        "sandwich" => DesignKind::SandwichRam,
        "clkgen" => DesignKind::DigitalClkGen,
        "timing" => DesignKind::TimingControl,
        "array" => DesignKind::Array128x32,
        other => return Err(format!("unknown design kind {other:?}")),
    })
}

fn preset(flags: &HashMap<String, String>) -> Result<SizePreset, String> {
    Ok(
        match flags.get("preset").map(String::as_str).unwrap_or("tiny") {
            "tiny" => SizePreset::Tiny,
            "small" => SizePreset::Small,
            "paper" => SizePreset::Paper,
            other => return Err(format!("unknown preset {other:?}")),
        },
    )
}

fn seed(flags: &HashMap<String, String>) -> Result<u64, String> {
    flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .unwrap_or(Ok(7))
}

fn load_netlist(flags: &HashMap<String, String>) -> Result<Netlist, String> {
    let path = flags.get("netlist").ok_or("--netlist is required")?;
    let top = flags.get("top").ok_or("--top is required")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = SpiceFile::parse(&text).map_err(|e| e.to_string())?;
    file.flatten(top).map_err(|e| e.to_string())
}

fn load_spf(flags: &HashMap<String, String>) -> Result<SpfFile, String> {
    let path = flags.get("spf").ok_or("--spf is required")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SpfFile::parse(&text).map_err(|e| e.to_string())
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "gen", &["kind", "preset", "seed", "out"])?;
    let kind = design_kind(flags.get("kind").ok_or("--kind is required")?)?;
    let out_dir = flags.get("out").cloned().unwrap_or_else(|| ".".into());
    let (design, spf) =
        generate_with_parasitics(kind, preset(flags)?, seed(flags)?).map_err(|e| e.to_string())?;
    fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let sp_path = format!("{out_dir}/{}.sp", design.name);
    let spf_path = format!("{out_dir}/{}.spf", design.name);
    // The hierarchical source is more useful than the flattened netlist.
    fs::write(&sp_path, &design.spice).map_err(|e| e.to_string())?;
    fs::write(&spf_path, spf.to_text()).map_err(|e| e.to_string())?;
    println!(
        "wrote {sp_path} ({} devices flattened) and {spf_path} ({} ground + {} coupling caps)",
        design.netlist.num_devices(),
        spf.ground_caps.len(),
        spf.coupling_caps.len()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "stats", &["netlist", "top"])?;
    let netlist = load_netlist(flags)?;
    let (graph, _) = netlist_to_graph(&netlist);
    println!("{}", GraphStats::of(&netlist.name, &graph));
    println!("transistors: {}", netlist.transistor_count());
    let e = graph.edge_type_counts();
    println!("edges: {} device-pin, {} net-pin", e[0], e[1]);
    println!("\nTable-I circuit statistics (XC) dimensions:");
    for ty in [
        cirgps::graph::NodeType::Net,
        cirgps::graph::NodeType::Device,
        cirgps::graph::NodeType::Pin,
    ] {
        println!("  {ty} nodes:");
        for (i, d) in XcSpec::dims(ty).iter().enumerate() {
            println!("    [{i:2}] {d}");
        }
    }
    Ok(())
}

fn cmd_sample(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(flags, "sample", &["netlist", "top", "spf", "per-type"])?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let per_type: usize = flags
        .get("per-type")
        .map(|s| s.parse().map_err(|_| format!("bad --per-type {s:?}")))
        .unwrap_or(Ok(200))?;
    let (graph, map) = netlist_to_graph(&netlist);
    let ds = LinkDataset::build(
        &netlist.name,
        &graph,
        &netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: per_type,
            ..Default::default()
        },
    );
    println!("design {}: {} samples", ds.design, ds.len());
    println!(
        "raw positive couplings: {} p2n, {} p2p, {} n2n",
        ds.raw_counts[0], ds.raw_counts[1], ds.raw_counts[2]
    );
    println!(
        "mean enclosing subgraph: {:.1} nodes, {:.1} edges",
        ds.mean_subgraph_nodes, ds.mean_subgraph_edges
    );
    let pos = ds.samples.iter().filter(|s| s.link.label > 0.5).count();
    println!("balance: {} positive / {} negative", pos, ds.len() - pos);
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "predict",
        &[
            "netlist",
            "top",
            "spf",
            "task",
            "batch-size",
            "per-type",
            "model",
            "out",
        ],
    )?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let per_type: usize = flags
        .get("per-type")
        .map(|s| s.parse().map_err(|_| format!("bad --per-type {s:?}")))
        .unwrap_or(Ok(200))?;
    let batch_size: usize = flags
        .get("batch-size")
        .map(|s| s.parse().map_err(|_| format!("bad --batch-size {s:?}")))
        .unwrap_or(Ok(32))?;
    if batch_size == 0 {
        return Err("--batch-size must be positive".into());
    }
    let task = flags.get("task").map(String::as_str).unwrap_or("link");
    if !matches!(task, "link" | "cap") {
        return Err(format!("unknown --task {task:?} (expected link or cap)"));
    }

    let (graph, map) = netlist_to_graph(&netlist);
    let ds = LinkDataset::build(
        &netlist.name,
        &graph,
        &netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: per_type,
            ..Default::default()
        },
    );

    let mut model = CircuitGps::new(ModelConfig::default());
    if let Some(path) = flags.get("model") {
        let f = fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
        model
            .load(std::io::BufReader::new(f))
            .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
    }
    let xcn = XcNormalizer::fit(&[&graph]);
    let mut session = InferenceSession::new(
        model,
        xcn,
        &graph,
        SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        },
    )
    .with_batch_size(batch_size);

    // The session re-extracts each pair's subgraph from the *plain*
    // graph rather than reusing the dataset's: `LinkDataset::build`
    // samples from an augmented graph with every candidate coupling
    // injected as an edge (the training-time convention), which would
    // leak the candidate structure into a pure inference query.
    let pairs: Vec<(u32, u32)> = ds.samples.iter().map(|s| (s.link.a, s.link.b)).collect();
    let preds = match task {
        "link" => session.predict_links(&pairs),
        _ => session.predict_couplings(&pairs),
    };

    let cap_norm = CapNormalizer::paper_range();
    let mut lines = String::new();
    for (s, &p) in ds.samples.iter().zip(&preds) {
        let extra = if task == "cap" {
            format!(",\"cap_pred_f\":{:.4e}", cap_norm.decode(p))
        } else {
            String::new()
        };
        lines.push_str(&format!(
            "{{\"a\":{},\"b\":{},\"label\":{},\"{}\":{:.6}{}}}\n",
            s.link.a,
            s.link.b,
            s.link.label,
            if task == "link" { "prob" } else { "cap_norm" },
            p,
            extra
        ));
    }
    match flags.get("out") {
        Some(path) => fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{lines}"),
    }
    let (hits, misses) = session.cache_stats();
    eprintln!(
        "predicted {} pairs (task {task}, batch {batch_size}; sample cache {hits} hits / {misses} misses)",
        preds.len()
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "serve",
        &[
            "netlist",
            "top",
            "model",
            "addr",
            "max-batch",
            "max-wait-us",
            "workers",
            "queue-cap",
            "cache-cap",
        ],
    )?;
    let parse_num = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|_| format!("bad --{name} {s:?}")))
            .unwrap_or(Ok(default))
    };
    let defaults = ServeConfig::default();
    let max_batch = parse_num("max-batch", defaults.max_batch)?;
    let max_wait_us = parse_num("max-wait-us", defaults.max_wait.as_micros() as usize)?;
    let workers = parse_num("workers", defaults.workers)?;
    let queue_cap = parse_num("queue-cap", defaults.queue_capacity)?;
    let cache_cap = parse_num("cache-cap", defaults.cache_capacity)?;
    if max_batch == 0 || workers == 0 {
        return Err("--max-batch and --workers must be positive".into());
    }
    if queue_cap < max_batch {
        return Err(format!(
            "--queue-cap {queue_cap} must hold at least one batch (--max-batch {max_batch})"
        ));
    }
    if cache_cap < max_batch {
        return Err(format!(
            "--cache-cap {cache_cap} must hold at least one batch (--max-batch {max_batch})"
        ));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8321".into());

    let netlist = load_netlist(flags)?;
    let (graph, _map) = netlist_to_graph(&netlist);
    let mut model = CircuitGps::new(ModelConfig::default());
    match flags.get("model") {
        Some(path) => {
            let f = fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
            model
                .load(std::io::BufReader::new(f))
                .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
        }
        None => eprintln!(
            "warning: no --model checkpoint; serving a freshly initialized \
             default model (structure-only smoke predictions)"
        ),
    }

    let cfg = ServeConfig {
        max_batch,
        max_wait: Duration::from_micros(max_wait_us as u64),
        workers,
        queue_capacity: queue_cap,
        cache_capacity: cache_cap,
        ..defaults
    };
    let listener = TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "cirgps-serve: design {} ({} nodes, {} edges) on http://{local} \
         ({workers} workers, batch ≤ {max_batch}, wait ≤ {max_wait_us} µs)",
        netlist.name,
        graph.num_nodes(),
        graph.num_edges()
    );
    eprintln!("endpoints: GET /healthz, GET /metrics, POST /v1/predict (docs/serving.md)");
    let server = Server::new(model, graph, netlist.name.clone(), cfg);
    server.serve(listener); // runs until the process is killed
    Ok(())
}

fn cmd_energy(flags: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        flags,
        "energy",
        &["netlist", "top", "spf", "vectors", "vdd", "seed"],
    )?;
    let netlist = load_netlist(flags)?;
    let spf = load_spf(flags)?;
    let vectors: usize = flags
        .get("vectors")
        .map(|s| s.parse().map_err(|_| format!("bad --vectors {s:?}")))
        .unwrap_or(Ok(32))?;
    let vdd: f64 = flags
        .get("vdd")
        .map(|s| s.parse().map_err(|_| format!("bad --vdd {s:?}")))
        .unwrap_or(Ok(0.9))?;
    let caps = net_capacitances(&netlist, &spf);
    let total_cap: f64 = caps.iter().sum();
    let result = simulate_energy(&netlist, &caps, vdd, vectors, seed(flags)?);
    println!(
        "total lumped capacitance: {:.3e} F over {} nets",
        total_cap,
        netlist.num_nets()
    );
    println!(
        "switching energy: {:.3e} J across {} vectors ({} toggles)",
        result.energy, result.vectors, result.total_toggles
    );
    Ok(())
}
