//! Cross-crate integration test: the complete pipeline from synthetic
//! design generation to a trained, evaluated CircuitGPS model.

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::{netlist_to_graph, NodeType};
use cirgps::model::{
    evaluate_link, evaluate_regression, finetune_regression, prepare_link_dataset, pretrain_link,
    CircuitGps, FinetuneMode, ModelConfig, TrainConfig,
};
use cirgps::pe::PeKind;
use cirgps::sample::{CapNormalizer, DatasetConfig, LinkDataset, XcNormalizer};

fn tiny_pipeline_data() -> (cirgps::graph::CircuitGraph, LinkDataset) {
    let (design, spf) =
        generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 3).unwrap();
    let (graph, map) = netlist_to_graph(&design.netlist);
    let ds = LinkDataset::build(
        "TIMING_CONTROL",
        &graph,
        &design.netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: 80,
            ..Default::default()
        },
    );
    (graph, ds)
}

#[test]
fn end_to_end_link_prediction_learns() {
    let (graph, ds) = tiny_pipeline_data();
    assert!(ds.len() > 100, "dataset too small: {}", ds.len());

    let xcn = XcNormalizer::fit(&[&graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |c| cap.encode(c));

    let mut model = CircuitGps::new(ModelConfig {
        hidden_dim: 32,
        num_layers: 2,
        ..ModelConfig::default()
    });
    let cfg = TrainConfig {
        epochs: 3,
        ..Default::default()
    };
    let hist = pretrain_link(&mut model, &samples, &cfg).expect("training diverged");
    assert!(
        hist.epoch_losses.last().unwrap() < &hist.epoch_losses[0],
        "loss should decrease: {:?}",
        hist.epoch_losses
    );
    let m = evaluate_link(&model, &samples);
    assert!(m.auc > 0.85, "training-set AUC too low: {:.3}", m.auc);
    assert!(
        m.accuracy > 0.75,
        "training-set accuracy too low: {:.3}",
        m.accuracy
    );
}

#[test]
fn end_to_end_regression_beats_constant_predictor() {
    let (graph, ds) = tiny_pipeline_data();
    let xcn = XcNormalizer::fit(&[&graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |c| cap.encode(c));

    let mut model = CircuitGps::new(ModelConfig {
        hidden_dim: 32,
        num_layers: 2,
        ..ModelConfig::default()
    });
    let cfg = TrainConfig {
        epochs: 4,
        ..Default::default()
    };
    finetune_regression(&mut model, &samples, FinetuneMode::Scratch, &cfg)
        .expect("training diverged");
    let m = evaluate_regression(&model, &samples);

    // A constant predictor at the target mean has MAE equal to the mean
    // absolute deviation; the model must do better.
    let mean: f32 = samples.iter().map(|s| s.target).sum::<f32>() / samples.len() as f32;
    let mad: f64 = samples
        .iter()
        .map(|s| (s.target - mean).abs() as f64)
        .sum::<f64>()
        / samples.len() as f64;
    assert!(
        m.mae < mad,
        "model MAE {:.3} not better than constant {:.3}",
        m.mae,
        mad
    );
    assert!(m.r2 > 0.3, "R2 too low: {:.3}", m.r2);
}

#[test]
fn zero_shot_transfer_between_archetypes() {
    // Pre-train on TIMING_CONTROL, test on ARRAY_128_32 — completely
    // different circuit structure, same universal subgraph vocabulary.
    let (train_graph, train_ds) = tiny_pipeline_data();
    let (design, spf) =
        generate_with_parasitics(DesignKind::Array128x32, SizePreset::Tiny, 4).unwrap();
    let (test_graph, map) = netlist_to_graph(&design.netlist);
    let test_ds = LinkDataset::build(
        "ARRAY_128_32",
        &test_graph,
        &design.netlist,
        &map,
        &spf,
        &DatasetConfig {
            max_per_type: 80,
            ..Default::default()
        },
    );

    let xcn = XcNormalizer::fit(&[&train_graph]);
    let cap = CapNormalizer::paper_range();
    let train = prepare_link_dataset(&train_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
    let test = prepare_link_dataset(&test_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));

    let mut model = CircuitGps::new(ModelConfig::default());
    pretrain_link(
        &mut model,
        &train,
        &TrainConfig {
            epochs: 4,
            ..Default::default()
        },
    )
    .expect("training diverged");
    let m = evaluate_link(&model, &test);
    assert!(
        m.auc > 0.7,
        "zero-shot AUC {:.3} should beat chance by a wide margin",
        m.auc
    );
}

#[test]
fn graph_invariants_hold_on_generated_designs() {
    for kind in [DesignKind::Ssram, DesignKind::Ultra8t] {
        let (design, _) = generate_with_parasitics(kind, SizePreset::Tiny, 5).unwrap();
        let (graph, _) = netlist_to_graph(&design.netlist);
        // Pins connect exactly one device and one net.
        for v in 0..graph.num_nodes() as u32 {
            if graph.node_type(v) == NodeType::Pin {
                let mut dev = 0;
                let mut net = 0;
                for (_, t) in graph.neighbors(v) {
                    match t {
                        cirgps::graph::EdgeType::DevicePin => dev += 1,
                        cirgps::graph::EdgeType::NetPin => net += 1,
                        _ => {}
                    }
                }
                assert_eq!(dev, 1, "pin {v} has {dev} device edges");
                assert_eq!(net, 1, "pin {v} has {net} net edges");
            }
        }
    }
}
