//! CLI-level chaos suite: kill the `cirgps` binary at injected failure
//! points during checkpointed training and prove that no kill point
//! ever loses progress — the latest good snapshot (or its `.bak`
//! rotation sibling) always loads, `--resume` always completes, and the
//! resumed run reproduces the uninterrupted run's final metrics
//! exactly.
//!
//! Failpoints are armed through the `CIRGPS_FAILPOINTS` environment
//! variable (see `docs/robustness.md` for the catalog), so each
//! scenario runs in a fresh subprocess via `CARGO_BIN_EXE_cirgps`.
#![cfg(feature = "failpoints")]

use std::process::{Command, Output};

fn cirgps() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_cirgps"));
    // Never inherit failpoints from the harness environment.
    c.env_remove("CIRGPS_FAILPOINTS");
    c
}

/// The shared pretrain flag set: tiny model, fixed seed, 4 epochs.
/// Everything except the output paths must be identical between the
/// clean run and every chaos/resume run (resume enforces flag parity).
fn pretrain_args(sp: &str, spf: &str, out: &str, metrics: &str) -> Vec<String> {
    [
        "pretrain",
        "--netlist",
        sp,
        "--top",
        "TIMING_CONTROL",
        "--spf",
        spf,
        "--per-type",
        "30",
        "--epochs",
        "4",
        "--hidden-dim",
        "16",
        "--layers",
        "1",
        "--heads",
        "2",
        "--pe-dim",
        "4",
        "--seed",
        "7",
        "--metrics-out",
        metrics,
        "--out",
        out,
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Extracts the `"final":{...}` object from a `--metrics-out` log — the
/// part that must be byte-identical between a clean run and an
/// interrupted-then-resumed run.
fn final_metrics(metrics_path: &str) -> String {
    let log = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| panic!("read {metrics_path}: {e}"));
    let start = log
        .find("\"final\":")
        .unwrap_or_else(|| panic!("no final metrics in {log}"));
    let end = start + log[start..].find('}').expect("final object end") + 1;
    log[start..end].to_string()
}

#[test]
fn no_injected_kill_point_loses_progress_and_resume_matches_clean_metrics() {
    let dir = std::env::temp_dir().join(format!("cirgps_chaos_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen failed: {}", stderr_of(&out));
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");

    // Reference: one uninterrupted run.
    let clean_ckpt = format!("{dir_s}/clean.ckpt");
    let clean_json = format!("{dir_s}/clean.json");
    let out = cirgps()
        .args(pretrain_args(&sp, &spf, &clean_ckpt, &clean_json))
        .output()
        .expect("clean pretrain");
    assert!(
        out.status.success(),
        "clean run failed: {}",
        stderr_of(&out)
    );
    let want_final = final_metrics(&clean_json);
    assert!(want_final.contains("\"auc\":"), "{want_final}");

    // Chaos scenarios: each kills epoch 3's snapshot write (or the
    // process right after it) a different way. `@3` = third write/epoch.
    //
    //   torn    — snapshot truncated to 64 bytes but "successfully"
    //             written, then the process aborts: the primary file is
    //             garbage and MUST be rejected at load; the `.bak`
    //             rotation sibling (epoch 2) carries the run.
    //   pre_sync / pre_rename — `kill -9` mid-recipe: the temp file may
    //             exist but the primary was already rotated to `.bak`.
    //   post_rename — `kill -9` just after the rename: the primary is
    //             the complete epoch-3 snapshot.
    let scenarios: [(&str, String); 4] = [
        (
            "torn",
            "durable.torn_write=truncate:64@3;train.epoch_end=abort@3".into(),
        ),
        ("pre_sync", "durable.abort_pre_sync=abort@3".into()),
        ("pre_rename", "durable.abort_pre_rename=abort@3".into()),
        ("post_rename", "durable.abort_post_rename=abort@3".into()),
    ];
    for (name, spec) in &scenarios {
        let ckpt = format!("{dir_s}/{name}.ckpt");
        let json = format!("{dir_s}/{name}.json");

        let out = cirgps()
            .args(pretrain_args(&sp, &spf, &ckpt, &json))
            .args(["--checkpoint-every", "1"])
            .env("CIRGPS_FAILPOINTS", spec)
            .output()
            .unwrap_or_else(|e| panic!("{name}: spawn chaos run: {e}"));
        assert!(
            !out.status.success(),
            "{name}: chaos run was supposed to die ({spec})"
        );

        if *name == "torn" {
            // The torn primary must be rejected, not silently loaded.
            let out = cirgps()
                .args([
                    "eval",
                    "--model",
                    &ckpt,
                    "--netlist",
                    &sp,
                    "--top",
                    "TIMING_CONTROL",
                    "--spf",
                    &spf,
                    "--per-type",
                    "5",
                ])
                .output()
                .expect("eval torn");
            assert!(
                !out.status.success(),
                "{name}: a torn checkpoint must not load"
            );
            assert!(
                std::path::Path::new(&format!("{ckpt}.bak")).exists(),
                "{name}: rotation sibling missing"
            );
        }

        // Resume (same flags, no failpoints) must complete...
        let out = cirgps()
            .args(pretrain_args(&sp, &spf, &ckpt, &json))
            .args(["--checkpoint-every", "1", "--resume"])
            .output()
            .unwrap_or_else(|e| panic!("{name}: spawn resume run: {e}"));
        let err = stderr_of(&out);
        assert!(out.status.success(), "{name}: resume failed: {err}");
        assert!(err.contains("resuming"), "{name}: {err}");
        if matches!(*name, "torn" | "pre_sync" | "pre_rename") {
            // ...off the .bak sibling when the primary is torn/missing.
            assert!(err.contains("rotation sibling"), "{name}: {err}");
        }

        // ...and reproduce the uninterrupted run's final metrics.
        let got_final = final_metrics(&json);
        assert_eq!(
            got_final, want_final,
            "{name}: resumed final metrics diverged from the clean run"
        );
    }

    // A single flipped bit anywhere in a good v2 checkpoint must be
    // rejected by the CRC32 footer with a checksum error.
    let mut bytes = std::fs::read(&clean_ckpt).expect("read clean ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let flipped = format!("{dir_s}/flipped.ckpt");
    std::fs::write(&flipped, &bytes).expect("write flipped ckpt");
    let out = cirgps()
        .args([
            "eval",
            "--model",
            &flipped,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
        ])
        .output()
        .expect("eval flipped");
    assert!(
        !out.status.success(),
        "bit-flipped checkpoint must not load"
    );
    let err = stderr_of(&out);
    assert!(err.contains("checksum mismatch"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}
