//! Integration test for the `cirgps` command-line tool: generate a design
//! to disk, then run every subcommand against the written files.

use std::process::Command;

fn cirgps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirgps"))
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_test_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();

    // gen
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    assert!(std::path::Path::new(&sp).exists());
    assert!(std::path::Path::new(&spf).exists());

    // stats
    let out = cirgps()
        .args(["stats", "--netlist", &sp, "--top", "TIMING_CONTROL"])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TIMING_CONTROL"), "{text}");
    assert!(text.contains("transistors"), "{text}");

    // sample
    let out = cirgps()
        .args([
            "sample",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "30",
        ])
        .output()
        .expect("run sample");
    assert!(
        out.status.success(),
        "sample failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean enclosing subgraph"), "{text}");

    // predict: batched tape-free inference over the design's candidate
    // pairs, JSON lines out.
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "10",
            "--batch-size",
            "4",
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first = text.lines().next().expect("at least one prediction");
    assert!(
        first.starts_with('{') && first.contains("\"prob\":"),
        "{first}"
    );
    for line in text.lines() {
        let prob: f32 = line
            .split("\"prob\":")
            .nth(1)
            .and_then(|s| s.trim_end_matches('}').parse().ok())
            .expect("parse prob");
        assert!((0.0..=1.0).contains(&prob), "{line}");
    }

    // predict --task cap writes decoded farads to a file.
    let out_path = format!("{dir_s}/preds.json");
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
            "--task",
            "cap",
            "--out",
            &out_path,
        ])
        .output()
        .expect("run predict cap");
    assert!(
        out.status.success(),
        "predict cap failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("read preds");
    assert!(written.contains("\"cap_pred_f\":"), "{written}");

    // energy
    let out = cirgps()
        .args([
            "energy",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--vectors",
            "8",
        ])
        .output()
        .expect("run energy");
    assert!(
        out.status.success(),
        "energy failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switching energy"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_errors_cleanly() {
    let out = cirgps().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cirgps()
        .args(["gen", "--kind", "nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design kind"));

    let out = cirgps()
        .args(["stats", "--netlist", "/nonexistent/file.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn cli_unknown_flags_name_the_failing_flag() {
    let out = cirgps()
        .args(["gen", "--kind", "timing", "--frobnicate", "5"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--frobnicate"), "{err}");
    assert!(err.contains("`cirgps gen`"), "{err}");
    assert!(err.contains("--preset"), "expected-flag listing: {err}");

    // A typo'd flag on predict is caught before any file I/O.
    let out = cirgps()
        .args(["predict", "--netlists", "x.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--netlists"), "{err}");

    // Positional junk is rejected too.
    let out = cirgps()
        .args(["stats", "whoops", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("whoops"), "{err}");

    // serve validates its batching knobs.
    let out = cirgps()
        .args([
            "serve",
            "--netlist",
            "x.sp",
            "--top",
            "X",
            "--max-batch",
            "64",
            "--queue-cap",
            "8",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--queue-cap"), "{err}");
}

#[test]
fn cli_usage_documents_every_subcommand() {
    // `help <topic>` must print usage, not trip over the positional.
    let out = cirgps().args(["help", "gen"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = cirgps().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "gen", "stats", "sample", "pretrain", "finetune", "eval", "predict", "serve", "energy",
    ] {
        assert!(text.contains(&format!("cirgps {cmd}")), "usage lacks {cmd}");
    }
    for flag in [
        "--max-wait-us",
        "--batch-size",
        "--out FILE.json",
        "--shots",
        "--unfreeze-all",
        "--metrics-out",
        "--eval-every",
    ] {
        assert!(text.contains(flag), "usage lacks {flag}");
    }
}

/// The complete few-shot workflow through the CLI alone: pretrain on a
/// toy design, few-shot finetune, eval (finite JSON metrics), and
/// predict/serve-path loading of the finetuned checkpoint.
#[test]
fn cli_training_pipeline_end_to_end() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_train_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    let pre = format!("{dir_s}/pre.ckpt");
    let fine = format!("{dir_s}/fine.ckpt");
    let metrics = format!("{dir_s}/pretrain.json");

    // pretrain: 2 epochs, a deliberately NON-default architecture so the
    // rest of the pipeline proves the checkpoint embeds its config.
    let out = cirgps()
        .args([
            "pretrain",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "40",
            "--epochs",
            "2",
            "--hidden-dim",
            "16",
            "--layers",
            "1",
            "--heads",
            "2",
            "--pe-dim",
            "4",
            "--eval-every",
            "1",
            "--metrics-out",
            &metrics,
            "--out",
            &pre,
        ])
        .output()
        .expect("run pretrain");
    assert!(
        out.status.success(),
        "pretrain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(&metrics).expect("metrics log");
    assert!(log.contains("\"command\":\"pretrain\""), "{log}");
    assert!(log.contains("\"epoch\":2"), "{log}");
    assert!(log.contains("\"auc\":"), "{log}");

    // finetune: 4 shots, backbone frozen by default. No architecture
    // flags — the checkpoint knows its own config.
    let out = cirgps()
        .args([
            "finetune",
            "--model",
            &pre,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "40",
            "--shots",
            "4",
            "--epochs",
            "3",
            "--out",
            &fine,
        ])
        .output()
        .expect("run finetune");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "finetune failed: {err}");
    assert!(err.contains("4 shots"), "{err}");
    assert!(err.contains("backbone frozen"), "{err}");
    assert!(
        !err.contains("legacy"),
        "v1 checkpoint tripped the legacy warning: {err}"
    );

    // eval: one JSON object to stdout with finite metrics.
    let out = cirgps()
        .args([
            "eval",
            "--model",
            &fine,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "40",
        ])
        .output()
        .expect("run eval");
    assert!(
        out.status.success(),
        "eval failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let json = text.lines().next().expect("eval json");
    for key in ["\"link\":", "\"reg\":", "\"auc\":", "\"mae\":"] {
        assert!(json.contains(key), "{json}");
    }
    let num_after = |key: &str| -> f64 {
        json.split(key)
            .nth(1)
            .and_then(|s| {
                s.trim_start_matches(['{'])
                    .split([',', '}'])
                    .next()?
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no numeric {key} in {json}"))
    };
    assert!(num_after("\"auc\":").is_finite());
    assert!(num_after("\"mae\":").is_finite());

    // predict accepts the finetuned (non-default-config) checkpoint
    // without any architecture flags.
    let out = cirgps()
        .args([
            "predict",
            "--model",
            &fine,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
            "--task",
            "cap",
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().next().unwrap().contains("\"cap_norm\":"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A shape-mismatched checkpoint must produce the named error (param
/// name + expected vs found shape), not a bare I/O error; a valid legacy
/// dump must load with a deprecation warning.
#[test]
fn cli_checkpoint_mismatch_and_legacy_warnings() {
    use cirgps::model::{CircuitGps, ModelConfig};

    let dir = std::env::temp_dir().join(format!("cirgps_cli_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");

    // Legacy dump of a NON-default architecture: loading assumes the
    // default config, so the loader must name the mismatched parameter
    // and both shapes.
    let bad = format!("{dir_s}/bad.ckpt");
    let model = CircuitGps::new(ModelConfig {
        hidden_dim: 16,
        pe_dim: 4,
        heads: 2,
        ..ModelConfig::default()
    });
    model
        .save(std::fs::File::create(&bad).unwrap())
        .expect("write legacy dump");
    let out = cirgps()
        .args([
            "predict",
            "--model",
            &bad,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
        ])
        .output()
        .expect("run predict");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("shape mismatch for param"), "{err}");
    assert!(err.contains("model expects"), "{err}");
    assert!(err.contains("checkpoint has"), "{err}");
    assert!(err.contains("enc."), "should name the parameter: {err}");

    // A default-config legacy dump still loads — with the deprecation
    // warning steering users to the self-describing container.
    let legacy = format!("{dir_s}/legacy.ckpt");
    let model = CircuitGps::new(ModelConfig::default());
    model
        .save(std::fs::File::create(&legacy).unwrap())
        .expect("write legacy dump");
    let out = cirgps()
        .args([
            "predict",
            "--model",
            &legacy,
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
        ])
        .output()
        .expect("run predict");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "legacy load failed: {err}");
    assert!(err.contains("legacy raw weight dump"), "{err}");
    assert!(err.contains("deprecated"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGINT during a checkpointed pretrain must finish the in-flight
/// epoch, write a resumable snapshot, and exit cleanly; `--resume` with
/// the same flags must then carry the run to completion.
#[cfg(unix)]
#[test]
fn cli_sigint_writes_resumable_snapshot_and_resume_completes() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::Stdio;

    let dir = std::env::temp_dir().join(format!("cirgps_cli_sigint_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    let ckpt = format!("{dir_s}/pre.ckpt");
    // Many more epochs than can finish between "first epoch line seen"
    // and "SIGINT delivered" — the interrupt always lands mid-run.
    let train_args = |extra: &[&str]| -> Vec<String> {
        let mut a: Vec<String> = [
            "pretrain",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "30",
            "--epochs",
            "40",
            "--hidden-dim",
            "16",
            "--layers",
            "1",
            "--heads",
            "2",
            "--pe-dim",
            "4",
            "--seed",
            "7",
            "--checkpoint-every",
            "5",
            "--out",
            &ckpt,
        ]
        .into_iter()
        .map(String::from)
        .collect();
        a.extend(extra.iter().map(|s| s.to_string()));
        a
    };

    let mut child = cirgps()
        .args(train_args(&[]))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pretrain");
    let mut err_reader = BufReader::new(child.stderr.take().unwrap());
    let mut seen = String::new();
    loop {
        let mut line = String::new();
        if err_reader.read_line(&mut line).expect("read stderr") == 0 {
            panic!("pretrain exited before its first epoch:\n{seen}");
        }
        seen.push_str(&line);
        if line.starts_with("epoch ") {
            break;
        }
    }
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let mut rest = String::new();
    err_reader.read_to_string(&mut rest).expect("drain stderr");
    let out = child.wait_with_output().expect("wait pretrain");
    assert!(
        out.status.success(),
        "interrupted pretrain must exit cleanly:\n{seen}{rest}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("interrupted: wrote resumable snapshot"),
        "stdout: {text}\nstderr: {seen}{rest}"
    );

    let out = cirgps()
        .args(train_args(&["--resume"]))
        .output()
        .expect("run resume");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume failed: {err}");
    assert!(err.contains("resuming"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(&format!("wrote {ckpt}")), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Boots the daemon on port 0 against a generated design, queries it
/// over HTTP, and shuts it down — the CLI-level smoke test of `serve`.
#[test]
fn cli_serve_boots_and_answers_queries() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join(format!("cirgps_cli_serve_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");

    // Pick a free port (bind then drop; races are unlikely and would
    // only fail this test, not the daemon).
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut daemon = cirgps()
        .args([
            "serve",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--addr",
            &addr,
            "--workers",
            "1",
            "--max-wait-us",
            "100",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Wait for the listener, then query /healthz and /v1/predict.
    let result = (|| -> Result<(), String> {
        let mut stream = None;
        for _ in 0..100 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
        let stream = stream.ok_or("daemon never started listening")?;
        let request = |mut s: std::net::TcpStream, req: String| -> Result<String, String> {
            s.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
            let mut r = BufReader::new(s);
            let mut status = String::new();
            r.read_line(&mut status).map_err(|e| e.to_string())?;
            if !status.contains("200") {
                return Err(format!("bad status {status:?}"));
            }
            let mut len = 0usize;
            loop {
                let mut line = String::new();
                r.read_line(&mut line).map_err(|e| e.to_string())?;
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().map_err(|_| "bad length")?;
                }
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).map_err(|e| e.to_string())?;
            String::from_utf8(body).map_err(|e| e.to_string())
        };
        let health = request(
            stream,
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".into(),
        )?;
        if !health.contains("\"status\":\"ok\"") || !health.contains("TIMING_CONTROL") {
            return Err(format!("bad healthz body {health}"));
        }
        let body = "{\"task\":\"link\",\"pairs\":[[0,1]]}";
        let resp = request(
            std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?,
            format!(
                "POST /v1/predict HTTP/1.1\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )?;
        if !resp.contains("\"probs\":[") || !resp.contains("\"count\":1") {
            return Err(format!("bad predict body {resp}"));
        }
        Ok(())
    })();

    let _ = daemon.kill();
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
    result.unwrap();
}

/// SIMD backends this host can run, as `--backend` values. Scalar is
/// always first; the cross-backend assertions are vacuous (self vs
/// self) on hosts with nothing wider, and CI pins an AVX2 runner.
fn host_backends() -> Vec<&'static str> {
    let mut v = vec!["scalar"];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            v.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            v.push("avx512");
        }
    }
    v
}

/// Boots `serve` with the given extra flags, POSTs one predict request,
/// and returns the raw response body. Wire format across backends is
/// compared on these bytes.
fn serve_once(sp: &str, extra: &[&str]) -> String {
    use std::io::{BufRead, BufReader, Read, Write};
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut args = vec![
        "serve",
        "--netlist",
        sp,
        "--top",
        "TIMING_CONTROL",
        "--addr",
        &addr,
        "--workers",
        "1",
        "--max-wait-us",
        "100",
    ];
    args.extend_from_slice(extra);
    let mut daemon = cirgps()
        .args(&args)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let result = (|| -> Result<String, String> {
        let mut connected = false;
        for _ in 0..100 {
            if std::net::TcpStream::connect(&addr).is_ok() {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        if !connected {
            return Err("daemon never started listening".into());
        }
        let body = "{\"task\":\"link\",\"pairs\":[[0,1],[1,2],[0,3]]}";
        let mut s = std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?;
        s.write_all(
            format!(
                "POST /v1/predict HTTP/1.1\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        let mut r = BufReader::new(s);
        let mut status = String::new();
        r.read_line(&mut status).map_err(|e| e.to_string())?;
        if !status.contains("200") {
            return Err(format!("bad status {status:?}"));
        }
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            r.read_line(&mut line).map_err(|e| e.to_string())?;
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().map_err(|_| "bad length")?;
            }
        }
        let mut resp = vec![0u8; len];
        r.read_exact(&mut resp).map_err(|e| e.to_string())?;
        String::from_utf8(resp).map_err(|e| e.to_string())
    })();
    let _ = daemon.kill();
    let _ = daemon.wait();
    result.unwrap()
}

/// The wire-format half of the parity contract: `predict` output files
/// and `serve` response bodies must be byte-identical no matter which
/// SIMD backend the process was forced onto, for both f32 and int8.
#[test]
fn cli_cross_backend_wire_format_is_stable() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_xbackend_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");

    for precision in ["f32", "int8"] {
        let mut reference: Option<(String, Vec<u8>)> = None;
        for backend in host_backends() {
            let out_path = format!("{dir_s}/pred_{backend}_{precision}.jsonl");
            let out = cirgps()
                .args([
                    "predict",
                    "--netlist",
                    &sp,
                    "--top",
                    "TIMING_CONTROL",
                    "--spf",
                    &spf,
                    "--per-type",
                    "20",
                    "--backend",
                    backend,
                    "--precision",
                    precision,
                    "--out",
                    &out_path,
                ])
                .output()
                .expect("run predict");
            assert!(
                out.status.success(),
                "predict --backend {backend} --precision {precision} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let bytes = std::fs::read(&out_path).expect("predict output");
            assert!(!bytes.is_empty());
            match &reference {
                None => reference = Some((backend.to_string(), bytes)),
                Some((ref_backend, ref_bytes)) => assert_eq!(
                    ref_bytes, &bytes,
                    "predict ({precision}) differs between {ref_backend} and {backend}"
                ),
            }
        }
    }

    // An unsupported forced backend must fail loudly, not fall back.
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--backend",
            "neon",
        ])
        .output()
        .expect("run predict");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("backend"),
        "error must name the backend flag"
    );

    // Serve wire format: identical response bytes under every backend.
    let mut reference: Option<(String, String)> = None;
    for backend in host_backends() {
        let body = serve_once(&sp, &["--backend", backend]);
        assert!(body.contains("\"probs\":["), "bad predict body {body}");
        match &reference {
            None => reference = Some((backend.to_string(), body)),
            Some((ref_backend, ref_body)) => assert_eq!(
                ref_body, &body,
                "serve response differs between {ref_backend} and {backend}"
            ),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
