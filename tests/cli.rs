//! Integration test for the `cirgps` command-line tool: generate a design
//! to disk, then run every subcommand against the written files.

use std::process::Command;

fn cirgps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirgps"))
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_test_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();

    // gen
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    assert!(std::path::Path::new(&sp).exists());
    assert!(std::path::Path::new(&spf).exists());

    // stats
    let out = cirgps()
        .args(["stats", "--netlist", &sp, "--top", "TIMING_CONTROL"])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TIMING_CONTROL"), "{text}");
    assert!(text.contains("transistors"), "{text}");

    // sample
    let out = cirgps()
        .args([
            "sample",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "30",
        ])
        .output()
        .expect("run sample");
    assert!(
        out.status.success(),
        "sample failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean enclosing subgraph"), "{text}");

    // predict: batched tape-free inference over the design's candidate
    // pairs, JSON lines out.
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "10",
            "--batch-size",
            "4",
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first = text.lines().next().expect("at least one prediction");
    assert!(
        first.starts_with('{') && first.contains("\"prob\":"),
        "{first}"
    );
    for line in text.lines() {
        let prob: f32 = line
            .split("\"prob\":")
            .nth(1)
            .and_then(|s| s.trim_end_matches('}').parse().ok())
            .expect("parse prob");
        assert!((0.0..=1.0).contains(&prob), "{line}");
    }

    // predict --task cap writes decoded farads to a file.
    let out_path = format!("{dir_s}/preds.json");
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
            "--task",
            "cap",
            "--out",
            &out_path,
        ])
        .output()
        .expect("run predict cap");
    assert!(
        out.status.success(),
        "predict cap failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("read preds");
    assert!(written.contains("\"cap_pred_f\":"), "{written}");

    // energy
    let out = cirgps()
        .args([
            "energy",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--vectors",
            "8",
        ])
        .output()
        .expect("run energy");
    assert!(
        out.status.success(),
        "energy failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switching energy"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_errors_cleanly() {
    let out = cirgps().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cirgps()
        .args(["gen", "--kind", "nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design kind"));

    let out = cirgps()
        .args(["stats", "--netlist", "/nonexistent/file.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn cli_unknown_flags_name_the_failing_flag() {
    let out = cirgps()
        .args(["gen", "--kind", "timing", "--frobnicate", "5"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--frobnicate"), "{err}");
    assert!(err.contains("`cirgps gen`"), "{err}");
    assert!(err.contains("--preset"), "expected-flag listing: {err}");

    // A typo'd flag on predict is caught before any file I/O.
    let out = cirgps()
        .args(["predict", "--netlists", "x.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--netlists"), "{err}");

    // Positional junk is rejected too.
    let out = cirgps()
        .args(["stats", "whoops", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("whoops"), "{err}");

    // serve validates its batching knobs.
    let out = cirgps()
        .args([
            "serve",
            "--netlist",
            "x.sp",
            "--top",
            "X",
            "--max-batch",
            "64",
            "--queue-cap",
            "8",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--queue-cap"), "{err}");
}

#[test]
fn cli_usage_documents_every_subcommand() {
    // `help <topic>` must print usage, not trip over the positional.
    let out = cirgps().args(["help", "gen"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = cirgps().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["gen", "stats", "sample", "predict", "serve", "energy"] {
        assert!(text.contains(&format!("cirgps {cmd}")), "usage lacks {cmd}");
    }
    for flag in ["--max-wait-us", "--batch-size", "--out FILE.json"] {
        assert!(text.contains(flag), "usage lacks {flag}");
    }
}

/// Boots the daemon on port 0 against a generated design, queries it
/// over HTTP, and shuts it down — the CLI-level smoke test of `serve`.
#[test]
fn cli_serve_boots_and_answers_queries() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join(format!("cirgps_cli_serve_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success());
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");

    // Pick a free port (bind then drop; races are unlikely and would
    // only fail this test, not the daemon).
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut daemon = cirgps()
        .args([
            "serve",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--addr",
            &addr,
            "--workers",
            "1",
            "--max-wait-us",
            "100",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Wait for the listener, then query /healthz and /v1/predict.
    let result = (|| -> Result<(), String> {
        let mut stream = None;
        for _ in 0..100 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
        let stream = stream.ok_or("daemon never started listening")?;
        let request = |mut s: std::net::TcpStream, req: String| -> Result<String, String> {
            s.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
            let mut r = BufReader::new(s);
            let mut status = String::new();
            r.read_line(&mut status).map_err(|e| e.to_string())?;
            if !status.contains("200") {
                return Err(format!("bad status {status:?}"));
            }
            let mut len = 0usize;
            loop {
                let mut line = String::new();
                r.read_line(&mut line).map_err(|e| e.to_string())?;
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().map_err(|_| "bad length")?;
                }
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).map_err(|e| e.to_string())?;
            String::from_utf8(body).map_err(|e| e.to_string())
        };
        let health = request(
            stream,
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".into(),
        )?;
        if !health.contains("\"status\":\"ok\"") || !health.contains("TIMING_CONTROL") {
            return Err(format!("bad healthz body {health}"));
        }
        let body = "{\"task\":\"link\",\"pairs\":[[0,1]]}";
        let resp = request(
            std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?,
            format!(
                "POST /v1/predict HTTP/1.1\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )?;
        if !resp.contains("\"probs\":[") || !resp.contains("\"count\":1") {
            return Err(format!("bad predict body {resp}"));
        }
        Ok(())
    })();

    let _ = daemon.kill();
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
    result.unwrap();
}
