//! Integration test for the `cirgps` command-line tool: generate a design
//! to disk, then run every subcommand against the written files.

use std::process::Command;

fn cirgps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirgps"))
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_test_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();

    // gen
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    assert!(std::path::Path::new(&sp).exists());
    assert!(std::path::Path::new(&spf).exists());

    // stats
    let out = cirgps()
        .args(["stats", "--netlist", &sp, "--top", "TIMING_CONTROL"])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TIMING_CONTROL"), "{text}");
    assert!(text.contains("transistors"), "{text}");

    // sample
    let out = cirgps()
        .args([
            "sample",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "30",
        ])
        .output()
        .expect("run sample");
    assert!(
        out.status.success(),
        "sample failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean enclosing subgraph"), "{text}");

    // energy
    let out = cirgps()
        .args([
            "energy",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--vectors",
            "8",
        ])
        .output()
        .expect("run energy");
    assert!(
        out.status.success(),
        "energy failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switching energy"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_errors_cleanly() {
    let out = cirgps().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cirgps()
        .args(["gen", "--kind", "nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design kind"));

    let out = cirgps()
        .args(["stats", "--netlist", "/nonexistent/file.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
