//! Integration test for the `cirgps` command-line tool: generate a design
//! to disk, then run every subcommand against the written files.

use std::process::Command;

fn cirgps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirgps"))
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join(format!("cirgps_cli_test_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();

    // gen
    let out = cirgps()
        .args([
            "gen", "--kind", "timing", "--preset", "tiny", "--seed", "3", "--out", &dir_s,
        ])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sp = format!("{dir_s}/TIMING_CONTROL.sp");
    let spf = format!("{dir_s}/TIMING_CONTROL.spf");
    assert!(std::path::Path::new(&sp).exists());
    assert!(std::path::Path::new(&spf).exists());

    // stats
    let out = cirgps()
        .args(["stats", "--netlist", &sp, "--top", "TIMING_CONTROL"])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TIMING_CONTROL"), "{text}");
    assert!(text.contains("transistors"), "{text}");

    // sample
    let out = cirgps()
        .args([
            "sample",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "30",
        ])
        .output()
        .expect("run sample");
    assert!(
        out.status.success(),
        "sample failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean enclosing subgraph"), "{text}");

    // predict: batched tape-free inference over the design's candidate
    // pairs, JSON lines out.
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "10",
            "--batch-size",
            "4",
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first = text.lines().next().expect("at least one prediction");
    assert!(
        first.starts_with('{') && first.contains("\"prob\":"),
        "{first}"
    );
    for line in text.lines() {
        let prob: f32 = line
            .split("\"prob\":")
            .nth(1)
            .and_then(|s| s.trim_end_matches('}').parse().ok())
            .expect("parse prob");
        assert!((0.0..=1.0).contains(&prob), "{line}");
    }

    // predict --task cap writes decoded farads to a file.
    let out_path = format!("{dir_s}/preds.json");
    let out = cirgps()
        .args([
            "predict",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--per-type",
            "5",
            "--task",
            "cap",
            "--out",
            &out_path,
        ])
        .output()
        .expect("run predict cap");
    assert!(
        out.status.success(),
        "predict cap failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("read preds");
    assert!(written.contains("\"cap_pred_f\":"), "{written}");

    // energy
    let out = cirgps()
        .args([
            "energy",
            "--netlist",
            &sp,
            "--top",
            "TIMING_CONTROL",
            "--spf",
            &spf,
            "--vectors",
            "8",
        ])
        .output()
        .expect("run energy");
    assert!(
        out.status.success(),
        "energy failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switching energy"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_errors_cleanly() {
    let out = cirgps().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cirgps()
        .args(["gen", "--kind", "nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design kind"));

    let out = cirgps()
        .args(["stats", "--netlist", "/nonexistent/file.sp", "--top", "X"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
