//! Property-based tests over the public API: parser/writer round trips
//! and subgraph-sampling invariants on randomized graphs.

use cirgps::graph::{EdgeType, GraphBuilder, NodeType};
use cirgps::netlist::{format_spice_value, parse_spice_value};
use cirgps::pe::{compute_pe, PeFeatures, PeKind};
use cirgps::sample::{SamplerConfig, SubgraphSampler, SweepSampler, UNREACHABLE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn spice_values_round_trip(mantissa in 1.0e-2f64..9.99e2, exp in -19i32..9) {
        let v = mantissa * 10f64.powi(exp);
        let s = format_spice_value(v);
        let back = parse_spice_value(&s).expect("formatted value must parse");
        prop_assert!(((back - v) / v).abs() < 1e-3, "{v} -> {s} -> {back}");
    }

    #[test]
    fn random_graph_subgraphs_uphold_invariants(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
        hops in 1u32..4,
    ) {
        // Build a random (multi-)graph over 40 nodes with alternating
        // types; skip self loops and duplicate edges.
        let mut b = GraphBuilder::new();
        for i in 0..40u32 {
            let ty = match i % 3 {
                0 => NodeType::Net,
                1 => NodeType::Device,
                _ => NodeType::Pin,
            };
            b.add_node(ty, &format!("v{i}"));
        }
        let mut seen = std::collections::HashSet::new();
        let mut added = Vec::new();
        for &(a, c) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            b.add_edge(a, c, EdgeType::NetPin);
            added.push((a, c));
        }
        prop_assume!(!added.is_empty());
        let g = b.build();

        let (m, n) = added[0];
        let mut sampler = SubgraphSampler::new(&g, SamplerConfig { hops, max_nodes: 4096 });
        let sub = sampler.enclosing_subgraph(m, n);

        // Anchors first.
        prop_assert_eq!(sub.nodes[0], m);
        prop_assert_eq!(sub.nodes[1], n);
        prop_assert_eq!(sub.dist_a[0], 0);
        prop_assert_eq!(sub.dist_b[1], 0);

        // Every node is within `hops` of an anchor (union definition).
        for i in 0..sub.num_nodes() {
            let da = sub.dist_a[i];
            let db = sub.dist_b[i];
            prop_assert!(
                da.min(db) <= hops || da.min(db) == UNREACHABLE,
                "node {i}: ({da},{db}) vs hops {hops}"
            );
        }

        // Directed arcs come in reverse pairs and reference valid nodes.
        let arcs: std::collections::HashSet<(usize, usize)> =
            sub.src.iter().zip(&sub.dst).map(|(&s, &d)| (s, d)).collect();
        for &(s, d) in &arcs {
            prop_assert!(s < sub.num_nodes() && d < sub.num_nodes());
            prop_assert!(arcs.contains(&(d, s)), "missing reverse arc of ({s},{d})");
        }

        // DSPD codes stay within the embedding-table range.
        if let PeFeatures::CategoricalPair { a, b, num_classes } = compute_pe(&sub, PeKind::Dspd) {
            for (&x, &y) in a.iter().zip(&b) {
                prop_assert!(x < num_classes && y < num_classes);
            }
        } else {
            prop_assert!(false, "DSPD must produce a categorical pair");
        }

        // DRNL is consistent: same distance pair => same code.
        if let PeFeatures::Categorical { codes, .. } = compute_pe(&sub, PeKind::Drnl) {
            let mut by_pair = std::collections::HashMap::new();
            for (i, &code) in codes.iter().enumerate().skip(sub.num_anchors) {
                let key = (sub.dist_a[i], sub.dist_b[i]);
                if let Some(prev) = by_pair.insert(key, code) {
                    prop_assert_eq!(prev, code);
                }
            }
        }
    }

    #[test]
    fn shared_sweep_extraction_is_bitwise_identical_to_per_pair_sampling(
        edges in proptest::collection::vec((0u32..30, 0u32..30, 0u32..3), 1..100),
        hops in 1u32..3,
        max_nodes in 4usize..64,
    ) {
        // The sweep planner's core invariant: extracting many pairs
        // through ONE SweepSampler (scratch buffers shared and reused
        // across pairs) produces Subgraphs bitwise-identical to a fresh
        // per-pair SubgraphSampler — subgraph sharing is semantics-free.
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            let ty = match i % 3 {
                0 => NodeType::Net,
                1 => NodeType::Device,
                _ => NodeType::Pin,
            };
            let id = b.add_node(ty, &format!("v{i}"));
            if ty == NodeType::Pin {
                b.set_xc(id, 0, (i % 5) as f32);
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut added = Vec::new();
        for &(a, c, t) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            let et = match t {
                0 => EdgeType::NetPin,
                1 => EdgeType::DevicePin,
                _ => EdgeType::CouplingPinPin,
            };
            b.add_edge(a, c, et);
            added.push((a, c));
        }
        prop_assume!(!added.is_empty());
        let g = b.build();
        let cfg = SamplerConfig { hops, max_nodes };

        let mut shared = SweepSampler::new(&g, cfg);
        let mut buf = shared.enclosing_subgraph(added[0].0, added[0].1);
        for &(m, n) in added.iter().take(10) {
            shared.extract_into(m, n, &mut buf);
            let want = SubgraphSampler::new(&g, cfg).enclosing_subgraph(m, n);
            prop_assert_eq!(&buf.nodes, &want.nodes);
            prop_assert_eq!(&buf.node_types, &want.node_types);
            prop_assert_eq!(&buf.src, &want.src);
            prop_assert_eq!(&buf.dst, &want.dst);
            prop_assert_eq!(&buf.edge_types, &want.edge_types);
            prop_assert_eq!(&buf.dist_a, &want.dist_a);
            prop_assert_eq!(&buf.dist_b, &want.dist_b);
            prop_assert_eq!(buf.num_anchors, want.num_anchors);
            let got_bits: Vec<u32> = buf.xc.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.xc.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
    }

    #[test]
    fn rwse_values_are_probabilities(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
    ) {
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            b.add_node(NodeType::Net, &format!("v{i}"));
        }
        let mut seen = std::collections::HashSet::new();
        let mut any = None;
        for &(a, c) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            b.add_edge(a, c, EdgeType::NetPin);
            any = Some(a);
        }
        prop_assume!(any.is_some());
        let g = b.build();
        let mut sampler = SubgraphSampler::new(&g, SamplerConfig { hops: 3, max_nodes: 64 });
        let sub = sampler.node_subgraph(any.unwrap());
        if let PeFeatures::Dense { data, .. } = compute_pe(&sub, PeKind::Rwse { k: 6 }) {
            for &v in &data {
                prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "rwse value {v}");
            }
        }
    }
}
