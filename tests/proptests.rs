//! Property-based tests over the public API: parser/writer round trips,
//! subgraph-sampling invariants on randomized graphs, and end-to-end
//! pipeline invariants on grammar-enumerated designs.

use std::sync::OnceLock;

use cirgps::datagen::enumerate::{build_term, enumerate_terms, term_extract_seed};
use cirgps::datagen::{check_design, extract_parasitics, Design, ExtractConfig};
use cirgps::graph::{
    netlist_to_graph, CircuitGraph, Edge, EdgeType, GraphBuilder, NodeMap, NodeType,
};
use cirgps::model::CandidatePairs;
use cirgps::netlist::{format_spice_value, parse_spice_value, SpfFile, SpiceFile};
use cirgps::pe::{compute_pe, PeFeatures, PeKind};
use cirgps::sample::{LinkSet, SamplerConfig, SubgraphSampler, SweepSampler, UNREACHABLE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn spice_values_round_trip(mantissa in 1.0e-2f64..9.99e2, exp in -19i32..9) {
        let v = mantissa * 10f64.powi(exp);
        let s = format_spice_value(v);
        let back = parse_spice_value(&s).expect("formatted value must parse");
        prop_assert!(((back - v) / v).abs() < 1e-3, "{v} -> {s} -> {back}");
    }

    #[test]
    fn random_graph_subgraphs_uphold_invariants(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
        hops in 1u32..4,
    ) {
        // Build a random (multi-)graph over 40 nodes with alternating
        // types; skip self loops and duplicate edges.
        let mut b = GraphBuilder::new();
        for i in 0..40u32 {
            let ty = match i % 3 {
                0 => NodeType::Net,
                1 => NodeType::Device,
                _ => NodeType::Pin,
            };
            b.add_node(ty, &format!("v{i}"));
        }
        let mut seen = std::collections::HashSet::new();
        let mut added = Vec::new();
        for &(a, c) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            b.add_edge(a, c, EdgeType::NetPin);
            added.push((a, c));
        }
        prop_assume!(!added.is_empty());
        let g = b.build();

        let (m, n) = added[0];
        let mut sampler = SubgraphSampler::new(&g, SamplerConfig { hops, max_nodes: 4096 });
        let sub = sampler.enclosing_subgraph(m, n);

        // Anchors first.
        prop_assert_eq!(sub.nodes[0], m);
        prop_assert_eq!(sub.nodes[1], n);
        prop_assert_eq!(sub.dist_a[0], 0);
        prop_assert_eq!(sub.dist_b[1], 0);

        // Every node is within `hops` of an anchor (union definition).
        for i in 0..sub.num_nodes() {
            let da = sub.dist_a[i];
            let db = sub.dist_b[i];
            prop_assert!(
                da.min(db) <= hops || da.min(db) == UNREACHABLE,
                "node {i}: ({da},{db}) vs hops {hops}"
            );
        }

        // Directed arcs come in reverse pairs and reference valid nodes.
        let arcs: std::collections::HashSet<(usize, usize)> =
            sub.src.iter().zip(&sub.dst).map(|(&s, &d)| (s, d)).collect();
        for &(s, d) in &arcs {
            prop_assert!(s < sub.num_nodes() && d < sub.num_nodes());
            prop_assert!(arcs.contains(&(d, s)), "missing reverse arc of ({s},{d})");
        }

        // DSPD codes stay within the embedding-table range.
        if let PeFeatures::CategoricalPair { a, b, num_classes } = compute_pe(&sub, PeKind::Dspd) {
            for (&x, &y) in a.iter().zip(&b) {
                prop_assert!(x < num_classes && y < num_classes);
            }
        } else {
            prop_assert!(false, "DSPD must produce a categorical pair");
        }

        // DRNL is consistent: same distance pair => same code.
        if let PeFeatures::Categorical { codes, .. } = compute_pe(&sub, PeKind::Drnl) {
            let mut by_pair = std::collections::HashMap::new();
            for (i, &code) in codes.iter().enumerate().skip(sub.num_anchors) {
                let key = (sub.dist_a[i], sub.dist_b[i]);
                if let Some(prev) = by_pair.insert(key, code) {
                    prop_assert_eq!(prev, code);
                }
            }
        }
    }

    #[test]
    fn shared_sweep_extraction_is_bitwise_identical_to_per_pair_sampling(
        edges in proptest::collection::vec((0u32..30, 0u32..30, 0u32..3), 1..100),
        hops in 1u32..3,
        max_nodes in 4usize..64,
    ) {
        // The sweep planner's core invariant: extracting many pairs
        // through ONE SweepSampler (scratch buffers shared and reused
        // across pairs) produces Subgraphs bitwise-identical to a fresh
        // per-pair SubgraphSampler — subgraph sharing is semantics-free.
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            let ty = match i % 3 {
                0 => NodeType::Net,
                1 => NodeType::Device,
                _ => NodeType::Pin,
            };
            let id = b.add_node(ty, &format!("v{i}"));
            if ty == NodeType::Pin {
                b.set_xc(id, 0, (i % 5) as f32);
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut added = Vec::new();
        for &(a, c, t) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            let et = match t {
                0 => EdgeType::NetPin,
                1 => EdgeType::DevicePin,
                _ => EdgeType::CouplingPinPin,
            };
            b.add_edge(a, c, et);
            added.push((a, c));
        }
        prop_assume!(!added.is_empty());
        let g = b.build();
        let cfg = SamplerConfig { hops, max_nodes };

        let mut shared = SweepSampler::new(&g, cfg);
        let mut buf = shared.enclosing_subgraph(added[0].0, added[0].1);
        for &(m, n) in added.iter().take(10) {
            shared.extract_into(m, n, &mut buf);
            let want = SubgraphSampler::new(&g, cfg).enclosing_subgraph(m, n);
            prop_assert_eq!(&buf.nodes, &want.nodes);
            prop_assert_eq!(&buf.node_types, &want.node_types);
            prop_assert_eq!(&buf.src, &want.src);
            prop_assert_eq!(&buf.dst, &want.dst);
            prop_assert_eq!(&buf.edge_types, &want.edge_types);
            prop_assert_eq!(&buf.dist_a, &want.dist_a);
            prop_assert_eq!(&buf.dist_b, &want.dist_b);
            prop_assert_eq!(buf.num_anchors, want.num_anchors);
            let got_bits: Vec<u32> = buf.xc.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.xc.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
    }

    #[test]
    fn rwse_values_are_probabilities(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
    ) {
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            b.add_node(NodeType::Net, &format!("v{i}"));
        }
        let mut seen = std::collections::HashSet::new();
        let mut any = None;
        for &(a, c) in &edges {
            if a == c || !seen.insert((a.min(c), a.max(c))) {
                continue;
            }
            b.add_edge(a, c, EdgeType::NetPin);
            any = Some(a);
        }
        prop_assume!(any.is_some());
        let g = b.build();
        let mut sampler = SubgraphSampler::new(&g, SamplerConfig { hops: 3, max_nodes: 64 });
        let sub = sampler.node_subgraph(any.unwrap());
        if let PeFeatures::Dense { data, .. } = compute_pe(&sub, PeKind::Rwse { k: 6 }) {
            for &v in &data {
                prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "rwse value {v}");
            }
        }
    }
}

/// A grammar-enumerated design carried through the full pipeline once:
/// build -> validity filter -> extraction -> graph conversion.
struct GrammarCase {
    design: Design,
    spf: SpfFile,
    graph: CircuitGraph,
    map: NodeMap,
}

/// A small corpus of designs sampled evenly across the enumeration order
/// (all families, sizes 100..2600), built once and shared by every case.
fn grammar_corpus() -> &'static [GrammarCase] {
    static CORPUS: OnceLock<Vec<GrammarCase>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let terms = enumerate_terms(None, 100, 2600);
        assert!(terms.len() >= 12, "size window too narrow: {}", terms.len());
        let stride = (terms.len() / 12).max(1);
        terms
            .iter()
            .step_by(stride)
            .take(12)
            .map(|t| {
                let design = build_term(t, 7).expect("grammar term must build");
                if let Err(v) = check_design(&design) {
                    panic!(
                        "{}: enumerated design fails validity: {}",
                        design.name, v[0]
                    );
                }
                let cfg = ExtractConfig {
                    seed: term_extract_seed(7, t),
                    ..ExtractConfig::default()
                };
                let spf = extract_parasitics(&design, &cfg);
                let (graph, map) = netlist_to_graph(&design.netlist);
                GrammarCase {
                    design,
                    spf,
                    graph,
                    map,
                }
            })
            .collect()
    })
}

proptest! {
    // The corpus designs are fixed and cached; the random input only picks
    // which design (and sampler settings) each case exercises.
    #[test]
    fn grammar_designs_survive_the_full_pipeline(idx in 0usize..12) {
        let corpus = grammar_corpus();
        let case = &corpus[idx % corpus.len()];
        let netlist = &case.design.netlist;

        // The emitted hierarchical SPICE re-parses and flattens back to a
        // netlist with the same primitive shape.
        let file = SpiceFile::parse(&case.design.spice).expect("emitted spice must parse");
        let flat = file.flatten(&case.design.name).expect("emitted spice must flatten");
        prop_assert_eq!(flat.num_devices(), netlist.num_devices());
        prop_assert_eq!(flat.num_nets(), netlist.num_nets());

        // Terminal arity matches the cell library and no terminal dangles.
        for (_, dev) in netlist.devices() {
            prop_assert_eq!(dev.terminals.len(), dev.kind.terminal_names().len());
            for &net in &dev.terminals {
                prop_assert!((net.0 as usize) < netlist.num_nets(), "dangling net in {}", dev.name);
            }
        }

        // The graph holds every net and device as a node.
        prop_assert!(case.graph.num_nodes() >= netlist.num_nets() + netlist.num_devices());

        // Every SPF node resolves to a graph node, and every value sits
        // inside the extraction clamp range.
        let (lo, hi) = ExtractConfig::default().cap_range;
        for g in &case.spf.ground_caps {
            prop_assert!(case.map.resolve(netlist, &g.node).is_some(), "unresolvable {}", g.node);
            prop_assert!(g.value > 0.0);
        }
        for c in &case.spf.coupling_caps {
            prop_assert!(case.map.resolve(netlist, &c.a).is_some(), "unresolvable {}", c.a);
            prop_assert!(case.map.resolve(netlist, &c.b).is_some(), "unresolvable {}", c.b);
            prop_assert!(c.value >= lo && c.value <= hi, "cap {} out of range", c.value);
        }
    }

    #[test]
    fn labeled_pairs_are_enumerable_after_link_injection(idx in 0usize..12) {
        // Training/eval consume SPF labels through the SEAL setup: observed
        // couplings are injected into the graph, where each labeled pair is
        // distance 1. Every labeled pair must then fall inside the candidate
        // enumeration that the sweep planner uses.
        let corpus = grammar_corpus();
        let case = &corpus[idx % corpus.len()];
        let links = LinkSet::from_spf(
            &case.spf,
            &case.design.netlist,
            &case.graph,
            &case.map,
            ExtractConfig::default().cap_range,
        );
        let injected: Vec<Edge> = links
            .p2n
            .iter()
            .chain(&links.p2p)
            .chain(&links.n2n)
            .map(|l| Edge { a: l.a, b: l.b, ty: l.ty })
            .collect();
        prop_assume!(!injected.is_empty());
        let aug = case.graph.with_injected_links(&injected);
        let candidates: std::collections::HashSet<(u32, u32)> = CandidatePairs::new(&aug, 0, 0)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        for l in &injected {
            prop_assert!(
                candidates.contains(&(l.a.min(l.b), l.a.max(l.b))),
                "labeled pair ({},{}) not enumerable in {}", l.a, l.b, case.design.name
            );
        }
    }

    #[test]
    fn sweep_sampler_matches_per_pair_sampler_on_grammar_graphs(
        idx in 0usize..12,
        hops in 1u32..3,
    ) {
        // Same bitwise-parity invariant as on random graphs, but over real
        // enumerated circuit graphs and the planner's own candidate pairs.
        let corpus = grammar_corpus();
        let case = &corpus[idx % corpus.len()];
        let pairs: Vec<(u32, u32)> = CandidatePairs::new(&case.graph, 2, 24).collect();
        prop_assume!(!pairs.is_empty());
        let cfg = SamplerConfig { hops, max_nodes: 256 };
        let mut shared = SweepSampler::new(&case.graph, cfg);
        let mut buf = shared.enclosing_subgraph(pairs[0].0, pairs[0].1);
        for &(m, n) in &pairs {
            shared.extract_into(m, n, &mut buf);
            let want = SubgraphSampler::new(&case.graph, cfg).enclosing_subgraph(m, n);
            prop_assert_eq!(&buf.nodes, &want.nodes);
            prop_assert_eq!(&buf.node_types, &want.node_types);
            prop_assert_eq!(&buf.src, &want.src);
            prop_assert_eq!(&buf.dst, &want.dst);
            prop_assert_eq!(&buf.edge_types, &want.edge_types);
            prop_assert_eq!(&buf.dist_a, &want.dist_a);
            prop_assert_eq!(&buf.dist_b, &want.dist_b);
            prop_assert_eq!(buf.num_anchors, want.num_anchors);
            let got_bits: Vec<u32> = buf.xc.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.xc.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
    }
}
