//! Determinism contract for the grammar enumerator: the same
//! `(grammar, seed, size)` triple must produce byte-identical SPICE and
//! SPF, across repeat runs in one process, across processes, and across
//! `--threads` settings of the CLI.

use std::process::Command;

use cirgps::datagen::enumerate::{build_term, enumerate_terms, term_extract_seed};
use cirgps::datagen::{extract_parasitics, ExtractConfig};

fn cirgps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirgps"))
}

/// FNV-1a over bytes; the goldens below are hex digests of this.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn enumeration_order_is_deterministic_and_rich() {
    let a = enumerate_terms(None, 0, 4000);
    let b = enumerate_terms(None, 0, 4000);
    let names_a: Vec<String> = a.iter().map(|t| t.name()).collect();
    let names_b: Vec<String> = b.iter().map(|t| t.name()).collect();
    assert_eq!(names_a, names_b, "enumeration order must be stable");
    assert!(
        names_a.len() >= 1000,
        "expected >= 1000 designs in the default window, got {}",
        names_a.len()
    );
    let distinct: std::collections::HashSet<&String> = names_a.iter().collect();
    assert_eq!(distinct.len(), names_a.len(), "design names must be unique");

    // Sizes are sorted ascending (ties broken by name), so corpus slicing
    // by index is itself deterministic.
    for w in a.windows(2) {
        let (s0, s1) = (w[0].size_estimate(), w[1].size_estimate());
        assert!(
            s0 < s1 || (s0 == s1 && w[0].name() < w[1].name()),
            "terms out of order: {} then {}",
            w[0].name(),
            w[1].name()
        );
    }
}

#[test]
fn design_bytes_are_identical_across_repeat_builds() {
    let terms = enumerate_terms(None, 200, 2000);
    assert!(!terms.is_empty());
    let stride = (terms.len() / 4).max(1);
    for t in terms.iter().step_by(stride).take(4) {
        let cfg = ExtractConfig {
            seed: term_extract_seed(11, t),
            ..ExtractConfig::default()
        };
        let d1 = build_term(t, 11).unwrap();
        let d2 = build_term(t, 11).unwrap();
        assert_eq!(
            d1.spice, d2.spice,
            "{}: spice differs across builds",
            d1.name
        );
        let s1 = extract_parasitics(&d1, &cfg).to_text();
        let s2 = extract_parasitics(&d2, &cfg).to_text();
        assert_eq!(s1, s2, "{}: spf differs across builds", d1.name);
    }
}

#[test]
fn design_bytes_match_committed_goldens() {
    // Cross-process / cross-version determinism: these digests were
    // recorded once and must never drift for a fixed (term, seed). If an
    // intentional generator or extraction change invalidates them, update
    // the constants in the same commit and say so in the message.
    const GOLDENS: &[(&str, u64, u64)] = &[
        ("G_BUS_BUF_L2_S2", 0xb7124f99ce3766fe, 0xa54af58a753b47d2),
        ("G_CHAIN_BUF_N26", 0x59c525923b99107d, 0xe006558d19b8f2fe),
        ("G_CHAIN_NAND2_N55", 0x7856da11b96c60ff, 0x6774ed287f31c697),
    ];
    let terms = enumerate_terms(None, 100, 2600);
    let stride = (terms.len() / 3).max(1);
    for (t, &(name, spice_h, spf_h)) in terms.iter().step_by(stride).zip(GOLDENS) {
        let d = build_term(t, 7).unwrap();
        let cfg = ExtractConfig {
            seed: term_extract_seed(7, t),
            ..ExtractConfig::default()
        };
        let spf = extract_parasitics(&d, &cfg).to_text();
        assert_eq!(
            (
                d.name.as_str(),
                fnv1a(d.spice.as_bytes()),
                fnv1a(spf.as_bytes())
            ),
            (name, spice_h, spf_h),
            "golden mismatch for {} (got spice {:#018x}, spf {:#018x})",
            d.name,
            fnv1a(d.spice.as_bytes()),
            fnv1a(spf.as_bytes()),
        );
    }
}

#[test]
fn cli_datagen_is_thread_count_invariant() {
    let base = std::env::temp_dir().join(format!("cirgps_datagen_det_{}", std::process::id()));
    let dir1 = base.join("t1");
    let dir4 = base.join("t4");
    let mut outs = Vec::new();
    for (dir, threads) in [(&dir1, "1"), (&dir4, "4")] {
        let out = cirgps()
            .args([
                "datagen",
                "--family",
                "bus",
                "--seed",
                "5",
                "--max-size",
                "900",
                "--count",
                "6",
                "--threads",
                threads,
                "--out",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("run datagen");
        assert!(
            out.status.success(),
            "datagen --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outs.push(out.stdout);
    }
    assert_eq!(
        outs[0], outs[1],
        "stdout must be byte-identical across --threads"
    );

    let mut names: Vec<String> = std::fs::read_dir(&dir1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(
        names.iter().any(|n| n.ends_with(".sp")) && names.iter().any(|n| n.ends_with(".spf")),
        "expected .sp/.spf pairs, got {names:?}"
    );
    for n in &names {
        let a = std::fs::read(dir1.join(n)).unwrap();
        let b = std::fs::read(dir4.join(n))
            .unwrap_or_else(|_| panic!("{n} missing from --threads 4 run"));
        assert_eq!(a, b, "{n}: bytes differ across --threads");
    }
    let count4 = std::fs::read_dir(&dir4).unwrap().count();
    assert_eq!(names.len(), count4, "file sets differ across --threads");

    let _ = std::fs::remove_dir_all(&base);
}
