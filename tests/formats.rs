//! Integration tests for the interchange formats: SPICE and SPF files
//! written by one subsystem must parse and join correctly in another.

use cirgps::datagen::{generate_with_parasitics, DesignKind, SizePreset};
use cirgps::graph::netlist_to_graph;
use cirgps::netlist::{netlist_to_spice, SpfFile, SpiceFile};

#[test]
fn generated_design_round_trips_through_spice_text() {
    let (design, _) = generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 1)
        .expect("generation");
    // Flattened netlist → SPICE text → parse → flatten again.
    let text = netlist_to_spice(&design.netlist);
    let reparsed = SpiceFile::parse(&text)
        .expect("writer output must parse")
        .flatten(&design.name)
        .expect("writer output must flatten");
    assert_eq!(reparsed.num_devices(), design.netlist.num_devices());
    assert_eq!(reparsed.num_nets(), design.netlist.num_nets());

    // The graphs built from both netlists are isomorphic in size.
    let (g1, _) = netlist_to_graph(&design.netlist);
    let (g2, _) = netlist_to_graph(&reparsed);
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    assert_eq!(g1.num_edges(), g2.num_edges());
    assert_eq!(g1.node_type_counts(), g2.node_type_counts());
}

#[test]
fn spf_round_trips_and_rejoins_onto_graph() {
    let (design, spf) =
        generate_with_parasitics(DesignKind::Array128x32, SizePreset::Tiny, 2).expect("generation");
    let text = spf.to_text();
    let reparsed = SpfFile::parse(&text).expect("spf must re-parse");
    assert_eq!(reparsed.coupling_caps.len(), spf.coupling_caps.len());
    assert_eq!(reparsed.ground_caps.len(), spf.ground_caps.len());

    // Every coupling endpoint written by the extractor must resolve onto
    // the graph built from the same netlist.
    let (graph, map) = netlist_to_graph(&design.netlist);
    let mut resolved = 0usize;
    for c in &reparsed.coupling_caps {
        let a = map.resolve(&design.netlist, &c.a);
        let b = map.resolve(&design.netlist, &c.b);
        assert!(a.is_some(), "unresolvable SPF node {:?}", c.a);
        assert!(b.is_some(), "unresolvable SPF node {:?}", c.b);
        resolved += 1;
        let _ = graph.node_type(a.unwrap());
    }
    assert_eq!(resolved, reparsed.coupling_caps.len());
}

#[test]
fn values_survive_spf_text_with_tight_tolerance() {
    let (_, spf) = generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 3)
        .expect("generation");
    let reparsed = SpfFile::parse(&spf.to_text()).expect("parse");
    for (orig, back) in spf.coupling_caps.iter().zip(&reparsed.coupling_caps) {
        let rel = (orig.value - back.value).abs() / orig.value;
        assert!(rel < 1e-3, "value drift {rel} for {:?}", orig);
    }
}
