//! End-to-end divergence bound for int8 weight-only quantization.
//!
//! Kernel-level parity lives in `crates/nn/tests/simd_parity.rs`; this
//! suite checks the *model-level* contract over real enumerated grammar
//! designs (the PR-9 corpus): serving a quantized model must stay close
//! to full precision on every candidate pair — close enough that link
//! classifications agree and regression outputs shift by less than the
//! label noise floor — while remaining bitwise-deterministic itself.

use std::sync::OnceLock;

use cirgps::datagen::enumerate::{build_term, enumerate_terms, term_extract_seed};
use cirgps::datagen::{extract_parasitics, ExtractConfig};
use cirgps::graph::{netlist_to_graph, CircuitGraph};
use cirgps::model::{CandidatePairs, CircuitGps, InferenceSession, ModelConfig};
use cirgps::sample::{SamplerConfig, XcNormalizer};

/// One corpus design: name, graph, and the candidate pairs a sweep
/// would score on it.
type Design = (String, CircuitGraph, Vec<(u32, u32)>);

/// A few grammar designs spread across the enumeration order. Built
/// once, shared by all tests.
fn corpus() -> &'static [Design] {
    static CORPUS: OnceLock<Vec<Design>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let terms = enumerate_terms(None, 100, 1800);
        assert!(terms.len() >= 4, "size window too narrow: {}", terms.len());
        let stride = (terms.len() / 4).max(1);
        terms
            .iter()
            .step_by(stride)
            .take(4)
            .map(|t| {
                let design = build_term(t, 7).expect("grammar term must build");
                // Parasitic extraction exercises the same path `gen` uses;
                // the graph alone drives inference here.
                let _ = extract_parasitics(
                    &design,
                    &ExtractConfig {
                        seed: term_extract_seed(7, t),
                        ..ExtractConfig::default()
                    },
                );
                let (graph, _map) = netlist_to_graph(&design.netlist);
                let pairs: Vec<(u32, u32)> = CandidatePairs::new(&graph, 2, 24).take(24).collect();
                (design.name.clone(), graph, pairs)
            })
            .collect()
    })
}

fn session(graph: &CircuitGraph, int8: bool) -> InferenceSession<'_> {
    // Deterministic init: both sessions start from identical weights, so
    // any divergence is attributable to weight rounding alone.
    let mut model = CircuitGps::new(ModelConfig::default());
    if int8 {
        assert!(
            model.store_mut().quantize_int8() > 0,
            "quantization must cover at least one weight tensor"
        );
    }
    let xcn = XcNormalizer::fit(&[graph]);
    InferenceSession::new(
        model,
        xcn,
        graph,
        SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        },
    )
}

#[test]
fn quantized_link_predictions_diverge_boundedly_on_grammar_designs() {
    for (name, graph, pairs) in corpus() {
        if pairs.is_empty() {
            continue;
        }
        let f32_preds = session(graph, false).predict_links(pairs);
        let int8_preds = session(graph, true).predict_links(pairs);
        assert_eq!(f32_preds.len(), int8_preds.len());
        for (i, (p, q)) in f32_preds.iter().zip(&int8_preds).enumerate() {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(p),
                "{name}[{i}]: f32 {p}"
            );
            assert!(
                q.is_finite() && (0.0..=1.0).contains(q),
                "{name}[{i}]: int8 {q}"
            );
            // Weight rounding is ≤ scale/2 per tensor (≈0.4% relative);
            // through the 3-layer GPS stack and the sigmoid head that
            // stays well under the probability noise floor.
            let d = (p - q).abs();
            assert!(
                d <= 0.05,
                "{name} pair {i}: link probability diverged {d} (f32 {p}, int8 {q})"
            );
            // Confident calls must not flip class.
            if (p - 0.5).abs() > 0.1 {
                assert_eq!(
                    *p > 0.5,
                    *q > 0.5,
                    "{name} pair {i}: confident classification flipped (f32 {p}, int8 {q})"
                );
            }
        }
    }
}

#[test]
fn quantized_regression_predictions_diverge_boundedly_on_grammar_designs() {
    for (name, graph, pairs) in corpus() {
        if pairs.is_empty() {
            continue;
        }
        let f32_preds = session(graph, false).predict_couplings(pairs);
        let int8_preds = session(graph, true).predict_couplings(pairs);
        for (i, (p, q)) in f32_preds.iter().zip(&int8_preds).enumerate() {
            assert!(p.is_finite(), "{name}[{i}]: f32 {p}");
            assert!(q.is_finite(), "{name}[{i}]: int8 {q}");
            // Normalized-scale regression outputs; 0.05 is far below the
            // model's own eval MAE on any design.
            let d = (p - q).abs();
            assert!(
                d <= 0.05,
                "{name} pair {i}: regression diverged {d} (f32 {p}, int8 {q})"
            );
        }
    }
}

#[test]
fn quantized_inference_is_bitwise_deterministic() {
    // int8 serving is a first-class mode: repeated runs (fresh sessions,
    // fresh quantization of identical weights) must agree bitwise, the
    // same reproducibility bar the f32 path holds.
    let (_, graph, pairs) = &corpus()[0];
    let a = session(graph, true).predict_links(pairs);
    let b = session(graph, true).predict_links(pairs);
    let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a_bits, b_bits);
}
