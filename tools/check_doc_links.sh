#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's top-level *.md
# and docs/*.md resolves to an existing file (anchors are stripped;
# absolute URLs are ignored). Exits non-zero listing each broken link.
#
#   tools/check_doc_links.sh        # from the repo root (CI runs this)
set -euo pipefail

cd "$(dirname "$0")/.."
status=0
# Inline links only: [text](target). Reference-style links are not used
# in this repo; add them here if that changes.
for f in *.md docs/*.md; do
  [ -f "$f" ] || continue
  case "$f" in
    # Verbatim quotes of external repos/papers; their links point at
    # files that intentionally do not exist here.
    SNIPPETS.md|PAPERS.md) continue ;;
  esac
  dir=$(dirname "$f")
  # One link per line; tolerate several links on a source line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN: $f -> $target"
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*(\(.*\))/\1/')
done
# Index coverage: every docs page must be reachable from the docs/
# index, so new pages (e.g. training.md, checkpoint-format.md) cannot
# silently drop out of the table that CI and readers start from.
for f in docs/*.md; do
  base=$(basename "$f")
  [ "$base" = "README.md" ] && continue
  if ! grep -q "]($base" docs/README.md; then
    echo "UNINDEXED: docs/README.md does not link $f"
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "all relative markdown links resolve and docs/README.md indexes every page"
fi
exit "$status"
