//! # ams-netlist
//!
//! SPICE schematic netlists and DSPF parasitic files for the CirGPS
//! reproduction: an in-memory [`Netlist`] model, a parser for the SPICE
//! subset that AMS schematic exporters emit (with hierarchical `.SUBCKT`
//! flattening), a writer, and a simplified [`SpfFile`] reader/writer used
//! to interchange parasitic-capacitance ground truth.
//!
//! ## Example
//!
//! ```
//! use ams_netlist::SpiceFile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! .SUBCKT INV A Z VDD VSS
//! M1 Z A VSS VSS nch W=0.1u L=0.03u
//! M2 Z A VDD VDD pch W=0.4u L=0.03u
//! .ENDS
//! ";
//! let file = SpiceFile::parse(src)?;
//! let flat = file.flatten("INV")?;
//! assert_eq!(flat.num_devices(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ast;
mod parser;
mod spf;
mod units;
mod writer;

pub use ast::{Device, DeviceId, DeviceKind, DeviceParams, Net, NetId, Netlist};
pub use parser::{Element, ParseSpiceError, SpiceFile, Subckt};
pub use spf::{CouplingCap, GroundCap, ParseSpfError, SpfFile, SpfNode};
pub use units::{format_spice_value, parse_spice_value, ParseValueError};
pub use writer::netlist_to_spice;
