//! In-memory representation of a (flattened) AMS schematic netlist.

use std::collections::HashMap;
use std::fmt;

/// Index of a net within a [`Netlist`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NetId(pub u32);

/// Index of a device within a [`Netlist`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DeviceId(pub u32);

/// The kind of a primitive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviceKind {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
    /// Resistor.
    Resistor,
    /// Capacitor (intentional, not parasitic).
    Capacitor,
    /// Diode.
    Diode,
}

impl DeviceKind {
    /// Canonical terminal (pin) names in SPICE order.
    ///
    /// MOSFETs use D/G/S/B; two-terminal devices use P/N; diodes use A/C.
    pub fn terminal_names(self) -> &'static [&'static str] {
        match self {
            DeviceKind::Nmos | DeviceKind::Pmos => &["D", "G", "S", "B"],
            DeviceKind::Resistor | DeviceKind::Capacitor => &["P", "N"],
            DeviceKind::Diode => &["A", "C"],
        }
    }

    /// Whether this is a MOS transistor.
    pub fn is_mos(self) -> bool {
        matches!(self, DeviceKind::Nmos | DeviceKind::Pmos)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Nmos => "nmos",
            DeviceKind::Pmos => "pmos",
            DeviceKind::Resistor => "resistor",
            DeviceKind::Capacitor => "capacitor",
            DeviceKind::Diode => "diode",
        };
        f.write_str(s)
    }
}

/// Geometry / sizing parameters of a device instance.
///
/// Fields not meaningful for a device kind are zero (e.g. `fingers` on a
/// resistor). Lengths and widths are in meters, `value` in SI units of the
/// device (ohms or farads).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct DeviceParams {
    /// Channel / body width in meters.
    pub width: f64,
    /// Channel / body length in meters.
    pub length: f64,
    /// Instance multiplier (`M=`).
    pub multiplier: f64,
    /// Number of fingers (`NF=`), for MOS and MOM/MIM capacitors.
    pub fingers: f64,
    /// Primitive value (resistance in ohms, capacitance in farads).
    pub value: f64,
}

/// A primitive device instance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Device {
    /// Instance name (hierarchical names are joined with `.`).
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Model name as written in the netlist (e.g. `nch_lvt`), if any.
    pub model: String,
    /// Connected net per terminal, in [`DeviceKind::terminal_names`] order.
    pub terminals: Vec<NetId>,
    /// Sizing parameters.
    pub params: DeviceParams,
}

/// A net (electrical node) in the netlist.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Net {
    /// Net name (hierarchical names are joined with `.`).
    pub name: String,
    /// Whether the net is a port of the top cell (or a global like `VDD`).
    pub is_port: bool,
}

/// A flattened schematic netlist: nets plus primitive devices.
///
/// # Examples
///
/// ```
/// use ams_netlist::{DeviceKind, DeviceParams, Netlist};
///
/// let mut nl = Netlist::new("buffer");
/// let a = nl.add_net("A", true);
/// let z = nl.add_net("Z", true);
/// let vdd = nl.add_net("VDD", true);
/// nl.add_device("M1", DeviceKind::Pmos, "pch", &[z, a, vdd, vdd],
///     DeviceParams { width: 4e-7, length: 3e-8, multiplier: 1.0, ..Default::default() });
/// assert_eq!(nl.num_nets(), 3);
/// assert_eq!(nl.num_devices(), 1);
/// ```
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Netlist {
    /// Cell name.
    pub name: String,
    nets: Vec<Net>,
    devices: Vec<Device>,
    #[serde(skip)]
    net_index: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist for cell `name`.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a net (or returns the existing id if the name is known).
    pub fn add_net(&mut self, name: &str, is_port: bool) -> NetId {
        if let Some(&id) = self.net_index.get(name) {
            if is_port {
                self.nets[id.0 as usize].is_port = true;
            }
            return id;
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.to_string(),
            is_port,
        });
        self.net_index.insert(name.to_string(), id);
        id
    }

    /// Adds a device instance, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the terminal count does not match the device kind.
    pub fn add_device(
        &mut self,
        name: &str,
        kind: DeviceKind,
        model: &str,
        terminals: &[NetId],
        params: DeviceParams,
    ) -> DeviceId {
        assert_eq!(
            terminals.len(),
            kind.terminal_names().len(),
            "device {name} of kind {kind} expects {} terminals",
            kind.terminal_names().len()
        );
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            name: name.to_string(),
            kind,
            model: model.to_string(),
            terminals: terminals.to_vec(),
            params,
        });
        id
    }

    /// Looks up a net by name.
    pub fn net_id(&self, name: &str) -> Option<NetId> {
        self.net_index.get(name).copied()
    }

    /// Borrows a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Borrows a device.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterates over `(DeviceId, &Device)`.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// Finds a device by instance name (linear scan; test/debug helper).
    pub fn device_by_name(&self, name: &str) -> Option<(DeviceId, &Device)> {
        self.devices().find(|(_, d)| d.name == name)
    }

    /// Rebuilds the name index (needed after deserializing).
    pub fn rebuild_index(&mut self) {
        self.net_index = self
            .nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NetId(i as u32)))
            .collect();
    }

    /// Total transistor count (devices with MOS kind, weighted by multiplier).
    pub fn transistor_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.kind.is_mos())
            .map(|d| d.params.multiplier.max(1.0) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_net_list() -> Netlist {
        let mut nl = Netlist::new("t");
        nl.add_net("a", false);
        nl.add_net("b", true);
        nl
    }

    #[test]
    fn add_net_deduplicates() {
        let mut nl = two_net_list();
        let a1 = nl.add_net("a", false);
        let a2 = nl.add_net("a", false);
        assert_eq!(a1, a2);
        assert_eq!(nl.num_nets(), 2);
    }

    #[test]
    fn add_net_promotes_to_port() {
        let mut nl = two_net_list();
        let a = nl.add_net("a", true);
        assert!(nl.net(a).is_port);
    }

    #[test]
    #[should_panic(expected = "expects 4 terminals")]
    fn add_device_validates_terminal_count() {
        let mut nl = two_net_list();
        let a = nl.net_id("a").unwrap();
        nl.add_device(
            "M1",
            DeviceKind::Nmos,
            "nch",
            &[a, a],
            DeviceParams::default(),
        );
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut nl = two_net_list();
        nl.net_index.clear();
        assert!(nl.net_id("a").is_none());
        nl.rebuild_index();
        assert_eq!(nl.net_id("a"), Some(NetId(0)));
    }

    #[test]
    fn transistor_count_respects_multiplier() {
        let mut nl = two_net_list();
        let a = nl.net_id("a").unwrap();
        let b = nl.net_id("b").unwrap();
        nl.add_device(
            "M1",
            DeviceKind::Nmos,
            "nch",
            &[a, b, a, a],
            DeviceParams {
                multiplier: 4.0,
                ..Default::default()
            },
        );
        nl.add_device(
            "R1",
            DeviceKind::Resistor,
            "rpoly",
            &[a, b],
            DeviceParams {
                value: 100.0,
                ..Default::default()
            },
        );
        assert_eq!(nl.transistor_count(), 4);
    }
}
