//! SPICE numeric literals with engineering suffixes.

use std::fmt;

/// Parses a SPICE value like `0.1u`, `30n`, `2.5e-15`, `1meg`, `10f`.
///
/// Suffixes are case-insensitive: `t p g meg k m u n p f a` (SPICE uses
/// `meg` for 1e6 because `m` means milli).
///
/// # Examples
///
/// ```
/// use ams_netlist::parse_spice_value;
///
/// assert_eq!(parse_spice_value("0.1u").unwrap(), 1e-7);
/// assert_eq!(parse_spice_value("1meg").unwrap(), 1e6);
/// assert_eq!(parse_spice_value("3.5").unwrap(), 3.5);
/// ```
///
/// # Errors
///
/// Returns [`ParseValueError`] if the mantissa is not a number or the
/// suffix is unknown.
pub fn parse_spice_value(s: &str) -> Result<f64, ParseValueError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseValueError {
            input: s.to_string(),
        });
    }
    let lower = s.to_ascii_lowercase();
    // Find the longest numeric prefix (digits, sign, dot, exponent).
    let mut split = lower.len();
    for (i, c) in lower.char_indices() {
        let numeric = c.is_ascii_digit()
            || c == '.'
            || c == '-'
            || c == '+'
            || c == 'e' && {
                // 'e' is part of the exponent only if followed by digit/sign.
                lower[i + 1..]
                    .chars()
                    .next()
                    .map(|n| n.is_ascii_digit() || n == '-' || n == '+')
                    .unwrap_or(false)
            };
        if !numeric {
            split = i;
            break;
        }
    }
    let (num, suffix) = lower.split_at(split);
    let mantissa: f64 = num.parse().map_err(|_| ParseValueError {
        input: s.to_string(),
    })?;
    let mult = match suffix {
        "" => 1.0,
        "t" => 1e12,
        "g" => 1e9,
        "meg" | "x" => 1e6,
        "k" => 1e3,
        "m" => 1e-3,
        "u" => 1e-6,
        "n" => 1e-9,
        "p" => 1e-12,
        "f" => 1e-15,
        "a" => 1e-18,
        // Trailing unit letters are tolerated, e.g. "1pf", "0.1um".
        other => {
            let stripped = other
                .strip_suffix("ohm")
                .or_else(|| other.strip_suffix('f'))
                .or_else(|| other.strip_suffix('m'))
                .unwrap_or(other);
            match stripped {
                "t" => 1e12,
                "g" => 1e9,
                "meg" | "x" => 1e6,
                "k" => 1e3,
                "m" => 1e-3,
                "u" => 1e-6,
                "n" => 1e-9,
                "p" => 1e-12,
                "f" => 1e-15,
                "a" => 1e-18,
                "" => 1.0,
                _ => {
                    return Err(ParseValueError {
                        input: s.to_string(),
                    })
                }
            }
        }
    };
    Ok(mantissa * mult)
}

/// Formats a value in engineering notation with a SPICE suffix.
///
/// # Examples
///
/// ```
/// use ams_netlist::format_spice_value;
///
/// assert_eq!(format_spice_value(1e-7), "100n");
/// assert_eq!(format_spice_value(2.5e-15), "2.5f");
/// ```
pub fn format_spice_value(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let suffixes: [(f64, &str); 9] = [
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let abs = v.abs();
    for &(scale, suffix) in &suffixes {
        if abs >= scale {
            let scaled = v / scale;
            return trim_float(scaled) + suffix;
        }
    }
    if abs >= 1e-15 {
        return trim_float(v / 1e-15) + "f";
    }
    if abs >= 1e-18 {
        return trim_float(v / 1e-18) + "a";
    }
    format!("{v:e}")
}

fn trim_float(v: f64) -> String {
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

/// Error parsing a SPICE numeric literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    input: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spice value {:?}", self.input)
    }
}

impl std::error::Error for ParseValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_spice_value("42").unwrap(), 42.0);
        assert_eq!(parse_spice_value("-1.5").unwrap(), -1.5);
        assert_eq!(parse_spice_value("2e-15").unwrap(), 2e-15);
    }

    #[test]
    fn parses_suffixes() {
        assert_eq!(parse_spice_value("1k").unwrap(), 1e3);
        assert_eq!(parse_spice_value("1K").unwrap(), 1e3);
        assert!((parse_spice_value("10f").unwrap() - 1e-14).abs() < 1e-20);
        assert_eq!(parse_spice_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_spice_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_spice_value("0.03u").unwrap(), 3e-8);
    }

    #[test]
    fn parses_unit_suffixes() {
        assert_eq!(parse_spice_value("1pf").unwrap(), 1e-12);
        assert_eq!(parse_spice_value("0.1um").unwrap(), 1e-7);
        assert_eq!(parse_spice_value("1kohm").unwrap(), 1e3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spice_value("abc").is_err());
        assert!(parse_spice_value("").is_err());
        assert!(parse_spice_value("1.2.3").is_err());
    }

    #[test]
    fn format_round_trips() {
        for v in [1e-7, 2.5e-15, 3.3, 1e6, 4.7e3, 1.2e-12, 9e-16] {
            let s = format_spice_value(v);
            let back = parse_spice_value(&s).unwrap();
            assert!(
                (back - v).abs() / v.abs() < 1e-3,
                "round trip {v} -> {s} -> {back}"
            );
        }
    }

    #[test]
    fn exponent_not_confused_with_suffix() {
        assert_eq!(parse_spice_value("1e3").unwrap(), 1000.0);
        assert_eq!(parse_spice_value("1e-3").unwrap(), 0.001);
    }
}
