//! Simplified DSPF (Detailed Standard Parasitic Format) reader/writer.
//!
//! Post-layout extraction tools report two kinds of parasitic capacitance:
//! *ground* capacitance from a node to the substrate, and *coupling*
//! capacitance between two signal nodes. The paper extracts its ground-truth
//! labels and targets from SPF files; this module provides the same
//! interchange format for the synthetic extraction flow in `ams-datagen`.
//!
//! A node is either a net (by name) or a device pin written `device:PIN`
//! (e.g. `Xbit0.M1:G`), matching industry DSPF pin naming.

use std::fmt;
use std::fmt::Write as _;

use crate::units::{format_spice_value, parse_spice_value};

/// A parasitic node: a net or a device pin.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum SpfNode {
    /// A net, by flattened name.
    Net(String),
    /// A device pin, `device:pin` (pin is `G`/`D`/`S`/`B`/`P`/`N`/`A`/`C`).
    Pin {
        /// Flattened device instance name.
        device: String,
        /// Terminal name.
        pin: String,
    },
}

impl SpfNode {
    /// Parses `netname` or `device:PIN` notation.
    pub fn parse(s: &str) -> SpfNode {
        match s.rsplit_once(':') {
            Some((device, pin)) if !device.is_empty() && !pin.is_empty() => SpfNode::Pin {
                device: device.to_string(),
                pin: pin.to_string(),
            },
            _ => SpfNode::Net(s.to_string()),
        }
    }
}

impl fmt::Display for SpfNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpfNode::Net(n) => f.write_str(n),
            SpfNode::Pin { device, pin } => write!(f, "{device}:{pin}"),
        }
    }
}

/// Ground capacitance entry: node to substrate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroundCap {
    /// The node.
    pub node: SpfNode,
    /// Capacitance to ground, farads.
    pub value: f64,
}

/// Coupling capacitance entry between two nodes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CouplingCap {
    /// First node.
    pub a: SpfNode,
    /// Second node.
    pub b: SpfNode,
    /// Coupling capacitance, farads.
    pub value: f64,
}

/// A parsed SPF file: design name plus parasitic capacitances.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpfFile {
    /// Design name from the `*|DESIGN` header.
    pub design: String,
    /// Node-to-substrate capacitances.
    pub ground_caps: Vec<GroundCap>,
    /// Node-to-node coupling capacitances.
    pub coupling_caps: Vec<CouplingCap>,
}

/// Error parsing an SPF file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpfError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseSpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spf parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpfError {}

impl SpfFile {
    /// Creates an empty SPF container for `design`.
    pub fn new(design: &str) -> Self {
        SpfFile {
            design: design.to_string(),
            ..Default::default()
        }
    }

    /// Total number of capacitance entries.
    pub fn len(&self) -> usize {
        self.ground_caps.len() + self.coupling_caps.len()
    }

    /// Whether the file holds no parasitics.
    pub fn is_empty(&self) -> bool {
        self.ground_caps.is_empty() && self.coupling_caps.is_empty()
    }

    /// Parses SPF text.
    ///
    /// Capacitor cards whose second node is `0` (or `GND`) are ground caps;
    /// any other pair is a coupling cap.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSpfError`] on malformed capacitor cards.
    pub fn parse(source: &str) -> Result<Self, ParseSpfError> {
        let mut out = SpfFile::default();
        for (i, raw) in source.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("*|DESIGN") {
                out.design = rest.trim().trim_matches('"').to_string();
                continue;
            }
            if line.starts_with('*') || line.starts_with('.') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if !tokens[0].to_ascii_uppercase().starts_with('C') {
                return Err(ParseSpfError {
                    line: lineno,
                    message: format!("unexpected card {:?}", tokens[0]),
                });
            }
            if tokens.len() < 4 {
                return Err(ParseSpfError {
                    line: lineno,
                    message: "capacitor card needs two nodes and a value".into(),
                });
            }
            let value = parse_spice_value(tokens[3]).map_err(|e| ParseSpfError {
                line: lineno,
                message: e.to_string(),
            })?;
            let a = SpfNode::parse(tokens[1]);
            let is_ground = tokens[2] == "0" || tokens[2].eq_ignore_ascii_case("gnd");
            if is_ground {
                out.ground_caps.push(GroundCap { node: a, value });
            } else {
                let b = SpfNode::parse(tokens[2]);
                out.coupling_caps.push(CouplingCap { a, b, value });
            }
        }
        Ok(out)
    }

    /// Renders the file as SPF text (parseable by [`SpfFile::parse`]).
    pub fn to_text(&self) -> String {
        // ~64 bytes/line: saves ~30 doubling reallocs on multi-hundred-MB
        // outputs from million-node designs.
        let mut out =
            String::with_capacity(64 * (self.ground_caps.len() + self.coupling_caps.len()) + 128);
        let _ = writeln!(out, "*|DSPF 1.5");
        let _ = writeln!(out, "*|DESIGN \"{}\"", self.design);
        let _ = writeln!(out, "* ground capacitances: {}", self.ground_caps.len());
        for (i, g) in self.ground_caps.iter().enumerate() {
            let _ = writeln!(out, "Cg{} {} 0 {}", i, g.node, format_spice_value(g.value));
        }
        let _ = writeln!(out, "* coupling capacitances: {}", self.coupling_caps.len());
        for (i, c) in self.coupling_caps.iter().enumerate() {
            let _ = writeln!(
                out,
                "Cc{} {} {} {}",
                i,
                c.a,
                c.b,
                format_spice_value(c.value)
            );
        }
        let _ = writeln!(out, ".END");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_parse_forms() {
        assert_eq!(SpfNode::parse("netA"), SpfNode::Net("netA".into()));
        assert_eq!(
            SpfNode::parse("Xb.M1:G"),
            SpfNode::Pin {
                device: "Xb.M1".into(),
                pin: "G".into()
            }
        );
        // Degenerate colon forms fall back to net names.
        assert_eq!(SpfNode::parse(":G"), SpfNode::Net(":G".into()));
    }

    #[test]
    fn parse_classifies_ground_vs_coupling() {
        let src = "*|DSPF 1.5\n*|DESIGN \"d\"\nC1 a 0 1f\nC2 a b 2f\nC3 a GND 3f\n.END\n";
        let f = SpfFile::parse(src).unwrap();
        assert_eq!(f.design, "d");
        assert_eq!(f.ground_caps.len(), 2);
        assert_eq!(f.coupling_caps.len(), 1);
        assert_eq!(f.coupling_caps[0].value, 2e-15);
    }

    #[test]
    fn round_trip() {
        let mut f = SpfFile::new("rt");
        f.ground_caps.push(GroundCap {
            node: SpfNode::Net("n1".into()),
            value: 2.5e-16,
        });
        f.coupling_caps.push(CouplingCap {
            a: SpfNode::Net("n1".into()),
            b: SpfNode::Pin {
                device: "M3".into(),
                pin: "D".into(),
            },
            value: 7.5e-18,
        });
        let text = f.to_text();
        let back = SpfFile::parse(&text).unwrap();
        assert_eq!(back.design, "rt");
        assert_eq!(back.ground_caps.len(), 1);
        assert_eq!(back.coupling_caps.len(), 1);
        assert!((back.coupling_caps[0].value - 7.5e-18).abs() / 7.5e-18 < 1e-3);
        assert_eq!(back.coupling_caps[0].b, f.coupling_caps[0].b);
    }

    #[test]
    fn rejects_malformed_cards() {
        assert!(SpfFile::parse("C1 a b\n").is_err());
        assert!(SpfFile::parse("R1 a b 1\n").is_err());
        assert!(SpfFile::parse("C1 a b xyz\n").is_err());
    }
}
