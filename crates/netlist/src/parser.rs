//! Parser for the SPICE netlist subset emitted by AMS schematic exporters.
//!
//! Supported syntax: `.SUBCKT`/`.ENDS` definitions, `.GLOBAL`, comment and
//! continuation lines, `M`/`R`/`C`/`D` primitives with `K=V` parameters and
//! `X` subcircuit instances. Hierarchical designs are flattened with
//! dotted instance prefixes (`Xcell0.M1`), which is the naming convention
//! the SPF ground-truth files use as well.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{DeviceKind, DeviceParams, Netlist};
use crate::units::parse_spice_value;

/// Maximum subcircuit nesting depth during flattening. Real AMS designs
/// sit well under ten levels; the cap turns a hostile non-cyclic chain of
/// thousands of one-child subcircuits (a stack-overflow abort) into a
/// named parse error.
const MAX_FLATTEN_DEPTH: usize = 64;

/// A parsed element line inside a subcircuit (or at top level).
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A primitive device.
    Device {
        /// Instance name as written (`M1`, `R3`, ...).
        name: String,
        /// Device kind derived from the leading letter and model.
        kind: DeviceKind,
        /// Model name (empty for value-only R/C).
        model: String,
        /// Connected net names in terminal order.
        nets: Vec<String>,
        /// Parsed sizing parameters.
        params: DeviceParams,
    },
    /// A subcircuit instance (`X` card).
    Instance {
        /// Instance name as written (`Xbit0`).
        name: String,
        /// Connection net names, in the subcircuit's port order.
        nets: Vec<String>,
        /// Name of the referenced subcircuit.
        subckt: String,
    },
}

/// A `.SUBCKT` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// Subcircuit name.
    pub name: String,
    /// Port net names.
    pub ports: Vec<String>,
    /// Body elements.
    pub elements: Vec<Element>,
}

/// A parsed SPICE file: subcircuit definitions plus top-level elements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpiceFile {
    /// Design name from `.TITLE` or the first comment, if any.
    pub title: String,
    /// Subcircuit definitions in file order.
    pub subckts: Vec<Subckt>,
    /// Elements outside any `.SUBCKT`.
    pub top: Vec<Element>,
    /// Nets declared `.GLOBAL` (never prefixed during flattening).
    pub globals: Vec<String>,
}

/// Error produced while parsing or flattening a SPICE file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpiceError {
    /// 1-based line number, 0 when not line-specific.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseSpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "spice parse error at line {}: {}",
                self.line, self.message
            )
        } else {
            write!(f, "spice error: {}", self.message)
        }
    }
}

impl std::error::Error for ParseSpiceError {}

fn err(line: usize, message: impl Into<String>) -> ParseSpiceError {
    ParseSpiceError {
        line,
        message: message.into(),
    }
}

impl SpiceFile {
    /// Parses SPICE source text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSpiceError`] with a line number on malformed cards,
    /// unbalanced `.SUBCKT`/`.ENDS`, or invalid numeric literals.
    pub fn parse(source: &str) -> Result<Self, ParseSpiceError> {
        let mut file = SpiceFile::default();
        let mut current: Option<Subckt> = None;

        for (lineno, raw) in logical_lines(source) {
            let line = strip_comment(raw.trim());
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let first = tokens[0].to_ascii_lowercase();
            match first.as_str() {
                ".subckt" => {
                    if current.is_some() {
                        return Err(err(lineno, "nested .subckt is not supported"));
                    }
                    if tokens.len() < 2 {
                        return Err(err(lineno, ".subckt needs a name"));
                    }
                    current = Some(Subckt {
                        name: tokens[1].to_string(),
                        ports: tokens[2..].iter().map(|s| s.to_string()).collect(),
                        elements: Vec::new(),
                    });
                }
                ".ends" => match current.take() {
                    Some(s) => file.subckts.push(s),
                    None => return Err(err(lineno, ".ends without .subckt")),
                },
                ".global" => {
                    file.globals
                        .extend(tokens[1..].iter().map(|s| s.to_string()));
                }
                ".title" => {
                    file.title = tokens[1..].join(" ");
                }
                ".end" | ".option" | ".options" | ".param" | ".include" | ".lib" | ".model"
                | ".temp" => {
                    // Accepted and ignored: not needed for topology extraction.
                }
                _ if first.starts_with('.') => {
                    return Err(err(lineno, format!("unsupported card {:?}", tokens[0])));
                }
                _ => {
                    let elem = parse_element(&tokens, lineno)?;
                    match &mut current {
                        Some(s) => s.elements.push(elem),
                        None => file.top.push(elem),
                    }
                }
            }
        }
        if let Some(s) = current {
            return Err(err(0, format!(".subckt {} missing .ends", s.name)));
        }
        Ok(file)
    }

    /// Looks up a subcircuit definition by name.
    pub fn subckt(&self, name: &str) -> Option<&Subckt> {
        self.subckts.iter().find(|s| s.name == name)
    }

    /// Flattens the subcircuit `top` into a primitive-only [`Netlist`].
    ///
    /// Instance paths are joined with `.`, so device `M1` inside instance
    /// `Xbit0` becomes `Xbit0.M1`. Ports of `top` and `.GLOBAL` nets keep
    /// their bare names and are marked as ports.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown subcircuits, port-count mismatches, or
    /// instantiation cycles.
    pub fn flatten(&self, top: &str) -> Result<Netlist, ParseSpiceError> {
        let sub = self
            .subckt(top)
            .ok_or_else(|| err(0, format!("unknown subckt {top:?}")))?;
        let mut nl = Netlist::new(top);
        let globals: HashSet<&str> = self.globals.iter().map(|s| s.as_str()).collect();
        for g in &self.globals {
            nl.add_net(g, true);
        }
        let mut port_map = HashMap::new();
        for p in &sub.ports {
            let id = nl.add_net(p, true);
            port_map.insert(p.clone(), id);
        }
        let mut stack = vec![top.to_string()];
        self.flatten_into(&mut nl, sub, "", &port_map, &globals, &mut stack)?;
        Ok(nl)
    }

    /// Flattens the top-level elements (cards outside any `.SUBCKT`).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SpiceFile::flatten`].
    pub fn flatten_top(&self, name: &str) -> Result<Netlist, ParseSpiceError> {
        let sub = Subckt {
            name: name.to_string(),
            ports: Vec::new(),
            elements: self.top.clone(),
        };
        let mut nl = Netlist::new(name);
        let globals: HashSet<&str> = self.globals.iter().map(|s| s.as_str()).collect();
        for g in &self.globals {
            nl.add_net(g, true);
        }
        let mut stack = vec![name.to_string()];
        self.flatten_into(&mut nl, &sub, "", &HashMap::new(), &globals, &mut stack)?;
        Ok(nl)
    }

    fn flatten_into(
        &self,
        nl: &mut Netlist,
        sub: &Subckt,
        prefix: &str,
        bindings: &HashMap<String, crate::ast::NetId>,
        globals: &HashSet<&str>,
        stack: &mut Vec<String>,
    ) -> Result<(), ParseSpiceError> {
        let resolve = |nl: &mut Netlist, net: &str| {
            if let Some(&id) = bindings.get(net) {
                return id;
            }
            if globals.contains(net) || net == "0" || net.eq_ignore_ascii_case("gnd") {
                return nl.add_net(net, true);
            }
            let full = if prefix.is_empty() {
                net.to_string()
            } else {
                format!("{prefix}{net}")
            };
            // Nets created during subckt expansion are internal, never
            // top-level ports.
            nl.add_net(&full, false)
        };

        for elem in &sub.elements {
            match elem {
                Element::Device {
                    name,
                    kind,
                    model,
                    nets,
                    params,
                } => {
                    let ids: Vec<_> = nets.iter().map(|n| resolve(nl, n)).collect();
                    let full = if prefix.is_empty() {
                        name.clone()
                    } else {
                        format!("{prefix}{name}")
                    };
                    nl.add_device(&full, *kind, model, &ids, *params);
                }
                Element::Instance { name, nets, subckt } => {
                    if stack.iter().any(|s| s == subckt) {
                        return Err(err(0, format!("recursive instantiation of {subckt:?}")));
                    }
                    // Non-cyclic but absurdly deep hierarchies would
                    // otherwise recurse without bound (stack overflow
                    // aborts, it doesn't unwind) — cap the depth.
                    if stack.len() >= MAX_FLATTEN_DEPTH {
                        return Err(err(
                            0,
                            format!(
                                "hierarchy deeper than {MAX_FLATTEN_DEPTH} levels at {subckt:?}"
                            ),
                        ));
                    }
                    let child = self
                        .subckt(subckt)
                        .ok_or_else(|| err(0, format!("unknown subckt {subckt:?}")))?;
                    if child.ports.len() != nets.len() {
                        return Err(err(
                            0,
                            format!(
                                "instance {name}: {} connections for subckt {subckt} with {} ports",
                                nets.len(),
                                child.ports.len()
                            ),
                        ));
                    }
                    let mut child_bindings = HashMap::new();
                    for (port, net) in child.ports.iter().zip(nets) {
                        let id = resolve(nl, net);
                        child_bindings.insert(port.clone(), id);
                    }
                    let child_prefix = if prefix.is_empty() {
                        format!("{name}.")
                    } else {
                        format!("{prefix}{name}.")
                    };
                    stack.push(subckt.clone());
                    self.flatten_into(nl, child, &child_prefix, &child_bindings, globals, stack)?;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Joins `+` continuation lines and yields `(line_number, text)`.
fn logical_lines(source: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
        }
        if trimmed.starts_with('*') {
            continue;
        }
        out.push((i + 1, line.to_string()));
    }
    out
}

fn strip_comment(line: &str) -> &str {
    let end = line.find(['$', ';']).unwrap_or(line.len());
    line[..end].trim()
}

fn parse_params(tokens: &[&str], lineno: usize) -> Result<DeviceParams, ParseSpiceError> {
    let mut p = DeviceParams {
        multiplier: 1.0,
        ..Default::default()
    };
    for t in tokens {
        let Some((k, v)) = t.split_once('=') else {
            return Err(err(lineno, format!("expected K=V parameter, got {t:?}")));
        };
        let value = parse_spice_value(v).map_err(|e| err(lineno, e.to_string()))?;
        match k.to_ascii_lowercase().as_str() {
            "w" => p.width = value,
            "l" => p.length = value,
            "m" => p.multiplier = value,
            "nf" => p.fingers = value,
            "c" | "r" => p.value = value,
            // Unknown parameters are tolerated (AD/AS/PD/PS etc.).
            _ => {}
        }
    }
    Ok(p)
}

fn parse_element(tokens: &[&str], lineno: usize) -> Result<Element, ParseSpiceError> {
    let name = tokens[0].to_string();
    // Flattened hierarchical names are dot-joined (`Xcell0.M1`); the
    // element type is determined by the *leaf* segment so re-parsing a
    // flattened netlist classifies devices correctly.
    let leaf = name.rsplit('.').next().unwrap_or(&name);
    let lead = leaf.chars().next().unwrap_or(' ').to_ascii_uppercase();
    match lead {
        'M' => {
            if tokens.len() < 6 {
                return Err(err(lineno, "MOSFET card needs 4 nets and a model"));
            }
            let nets = tokens[1..5].iter().map(|s| s.to_string()).collect();
            let model = tokens[5].to_string();
            let kind = if model.to_ascii_lowercase().starts_with('p') {
                DeviceKind::Pmos
            } else {
                DeviceKind::Nmos
            };
            let params = parse_params(&tokens[6..], lineno)?;
            Ok(Element::Device {
                name,
                kind,
                model,
                nets,
                params,
            })
        }
        'R' | 'C' => {
            if tokens.len() < 4 {
                return Err(err(lineno, "R/C card needs 2 nets and a value or model"));
            }
            let nets: Vec<String> = tokens[1..3].iter().map(|s| s.to_string()).collect();
            let kind = if lead == 'R' {
                DeviceKind::Resistor
            } else {
                DeviceKind::Capacitor
            };
            // Either `R1 a b 100` or `R1 a b model R=100 W=1u L=2u`.
            if tokens[3].contains('=') {
                let params = parse_params(&tokens[3..], lineno)?;
                Ok(Element::Device {
                    name,
                    kind,
                    model: String::new(),
                    nets,
                    params,
                })
            } else if let Ok(v) = parse_spice_value(tokens[3]) {
                let mut params = parse_params(&tokens[4..], lineno)?;
                params.value = v;
                Ok(Element::Device {
                    name,
                    kind,
                    model: String::new(),
                    nets,
                    params,
                })
            } else {
                let model = tokens[3].to_string();
                let params = parse_params(&tokens[4..], lineno)?;
                Ok(Element::Device {
                    name,
                    kind,
                    model,
                    nets,
                    params,
                })
            }
        }
        'D' => {
            if tokens.len() < 4 {
                return Err(err(lineno, "diode card needs 2 nets and a model"));
            }
            let nets = tokens[1..3].iter().map(|s| s.to_string()).collect();
            let model = tokens[3].to_string();
            let params = parse_params(&tokens[4..], lineno)?;
            Ok(Element::Device {
                name,
                kind: DeviceKind::Diode,
                model,
                nets,
                params,
            })
        }
        'X' => {
            if tokens.len() < 3 {
                return Err(err(lineno, "subcircuit instance needs nets and a name"));
            }
            // Last non-K=V token is the subcircuit name.
            let mut end = tokens.len();
            while end > 1 && tokens[end - 1].contains('=') {
                end -= 1;
            }
            // `end == 1` means every token after the name was K=V — there
            // is no subcircuit name to instantiate.
            if end < 2 {
                return Err(err(
                    lineno,
                    "subcircuit instance has parameters but no subcircuit name",
                ));
            }
            let subckt = tokens[end - 1].to_string();
            let nets = tokens[1..end - 1].iter().map(|s| s.to_string()).collect();
            Ok(Element::Instance { name, nets, subckt })
        }
        other => Err(err(lineno, format!("unsupported element type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUFFER: &str = r#"
* a simple buffer
.GLOBAL VDD VSS
.SUBCKT INV A Z VDD VSS
M1 Z A VSS VSS nch W=0.1u L=0.03u
M2 Z A VDD VDD pch W=0.4u L=0.03u
.ENDS
.SUBCKT BUF A Z VDD VSS
Xi1 A mid VDD VSS INV
Xi2 mid Z VDD VSS INV
.ENDS
"#;

    #[test]
    fn parses_subckts() {
        let f = SpiceFile::parse(BUFFER).unwrap();
        assert_eq!(f.subckts.len(), 2);
        assert_eq!(f.subckt("INV").unwrap().ports, vec!["A", "Z", "VDD", "VSS"]);
        assert_eq!(f.globals, vec!["VDD", "VSS"]);
    }

    #[test]
    fn flatten_buffer() {
        let f = SpiceFile::parse(BUFFER).unwrap();
        let nl = f.flatten("BUF").unwrap();
        assert_eq!(nl.num_devices(), 4);
        // Nets: VDD, VSS (global), A, Z (ports), Xi1.mid... no — `mid` is a
        // local of BUF so it is named `mid` (top-level flatten has no prefix).
        assert!(nl.net_id("mid").is_some());
        assert!(nl.device_by_name("Xi1.M1").is_some());
        assert!(nl.device_by_name("Xi2.M2").is_some());
        let m1 = nl.device_by_name("Xi1.M1").unwrap().1;
        assert_eq!(m1.kind, DeviceKind::Nmos);
        assert!((m1.params.width - 1e-7).abs() < 1e-12);
    }

    #[test]
    fn continuation_lines_join() {
        let src = ".SUBCKT T A B\nM1 A B 0 0 nch\n+ W=0.2u\n+ L=0.05u\n.ENDS\n";
        let f = SpiceFile::parse(src).unwrap();
        let nl = f.flatten("T").unwrap();
        let d = nl.device_by_name("M1").unwrap().1;
        assert!((d.params.width - 2e-7).abs() < 1e-12);
        assert!((d.params.length - 5e-8).abs() < 1e-12);
    }

    #[test]
    fn resistor_value_and_model_forms() {
        let src = ".SUBCKT T A B\nR1 A B 1k\nR2 A B rppoly W=1u L=10u\nC1 A B 10f\n.ENDS\n";
        let f = SpiceFile::parse(src).unwrap();
        let nl = f.flatten("T").unwrap();
        assert_eq!(nl.device_by_name("R1").unwrap().1.params.value, 1e3);
        let r2 = nl.device_by_name("R2").unwrap().1;
        assert_eq!(r2.model, "rppoly");
        assert!((r2.params.length - 1e-5).abs() < 1e-12);
        assert!((nl.device_by_name("C1").unwrap().1.params.value - 1e-14).abs() < 1e-20);
    }

    #[test]
    fn detects_recursion() {
        let src = ".SUBCKT A X\nXi X A\n.ENDS\n";
        let f = SpiceFile::parse(src).unwrap();
        assert!(f.flatten("A").is_err());
    }

    #[test]
    fn instance_with_only_params_is_an_error_not_a_panic() {
        // Every token after the name is K=V, so there is no subckt name.
        let src = ".SUBCKT T A\nX1 W=1u L=2u\n.ENDS\n";
        let err = SpiceFile::parse(src).unwrap_err();
        assert!(err.message.contains("no subcircuit name"), "{err}");
    }

    #[test]
    fn over_deep_hierarchy_is_an_error_not_a_stack_overflow() {
        // A 200-level non-cyclic chain: S0 -> S1 -> ... -> S200.
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!(".SUBCKT S{i} A\nXc A S{}\n.ENDS\n", i + 1));
        }
        src.push_str(".SUBCKT S200 A\nR1 A 0 1k\n.ENDS\n");
        let f = SpiceFile::parse(&src).unwrap();
        let err = f.flatten("S0").unwrap_err();
        assert!(err.message.contains("hierarchy deeper"), "{err}");
        // A chain under the cap still flattens.
        let mut ok = String::new();
        for i in 0..20 {
            ok.push_str(&format!(".SUBCKT S{i} A\nXc A S{}\n.ENDS\n", i + 1));
        }
        ok.push_str(".SUBCKT S20 A\nR1 A 0 1k\n.ENDS\n");
        let f = SpiceFile::parse(&ok).unwrap();
        assert_eq!(f.flatten("S0").unwrap().num_devices(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let src = ".SUBCKT T A\nM1 A\n.ENDS\n";
        let e = SpiceFile::parse(src).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unbalanced_subckt_is_error() {
        assert!(SpiceFile::parse(".SUBCKT T A\n").is_err());
        assert!(SpiceFile::parse(".ENDS\n").is_err());
    }

    #[test]
    fn port_count_mismatch_is_error() {
        let src = ".SUBCKT I A B\nR1 A B 1\n.ENDS\n.SUBCKT T X\nXi X extra I2\n.ENDS\n";
        let f = SpiceFile::parse(src).unwrap();
        assert!(f.flatten("T").is_err());
        let src2 = ".SUBCKT I A B\nR1 A B 1\n.ENDS\n.SUBCKT T X\nXi X I\n.ENDS\n";
        let f2 = SpiceFile::parse(src2).unwrap();
        assert!(f2.flatten("T").is_err());
    }

    #[test]
    fn ground_aliases_are_shared() {
        let src = ".SUBCKT T A\nR1 A 0 1\nR2 A gnd 1\n.ENDS\n";
        let f = SpiceFile::parse(src).unwrap();
        let nl = f.flatten("T").unwrap();
        // "0" and "gnd" are distinct nets but both port-like globals.
        assert!(nl.net_id("0").is_some());
    }

    #[test]
    fn deep_hierarchy_prefixes() {
        let src = "
.SUBCKT LEAF A
R1 A int 1
.ENDS
.SUBCKT MID A
Xl A LEAF
.ENDS
.SUBCKT TOP A
Xm A MID
.ENDS
";
        let f = SpiceFile::parse(src).unwrap();
        let nl = f.flatten("TOP").unwrap();
        assert!(nl.device_by_name("Xm.Xl.R1").is_some());
        assert!(nl.net_id("Xm.Xl.int").is_some());
    }
}
