//! Int8 weight-only quantized inference.
//!
//! Quantization is **per-tensor symmetric**: a weight matrix `W` is
//! stored as `i8` codes `q = clamp(round(W / s), -127, 127)` with one
//! `f32` scale `s = max|W| / 127`. At inference time the dequantizing
//! GEMM kernels reconstruct each weight as `(q as f32) · s` on the fly —
//! two exact operations (small-integer conversion and a single multiply
//! both round exactly at these magnitudes' precision needs... see below)
//! — so the only divergence versus the f32 path is the **rounding of the
//! weights themselves** (≤ s/2 ≈ max|W|/254 per weight). Activations,
//! biases, batch-norm statistics, embeddings and the attention QKV
//! projections stay f32.
//!
//! Precisely: `(q as f32)` is exact for |q| ≤ 127, and `q · s` is one
//! correctly-rounded f32 multiply, so every backend dequantizes to the
//! *same* f32 value — the scalar and SIMD quant kernels then share the
//! f32 kernels' accumulation-order contract and are bitwise-equal to
//! each other (enforced by the parity test matrix). End-to-end
//! int8-vs-f32 divergence bounds over grammar-corpus designs are
//! asserted in `crates/model` tests and documented in
//! `docs/simd-quant.md`.
//!
//! Quantized scales/codes travel in the optional `quant` section of the
//! CGPC checkpoint container (see `docs/checkpoint-format.md`); старые
//! checkpoints without the section simply serve f32.

use std::io::{self, Read, Write};

use crate::simd::Backend;
use crate::tensor::Tensor;

/// A per-tensor symmetrically quantized weight matrix: `i8` codes plus
/// one `f32` scale, in the same row-major layout as the f32 original.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    scale: f32,
    data: Vec<i8>,
}

impl QuantMatrix {
    /// Quantizes an f32 matrix: `scale = max|W| / 127`,
    /// `q = clamp(round(W / scale), -127, 127)`. An all-zero (or empty)
    /// matrix gets scale `1.0` so dequantization never divides by zero.
    pub fn quantize(t: &Tensor) -> QuantMatrix {
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let inv = 1.0 / scale;
        let data = t
            .as_slice()
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantMatrix {
            rows: t.rows(),
            cols: t.cols(),
            scale,
            data,
        }
    }

    /// Assembles a quant matrix from raw parts (the checkpoint loader).
    ///
    /// # Errors
    ///
    /// Rejects a data length that does not match `rows × cols`, or a
    /// non-finite / non-positive scale.
    pub fn from_parts(rows: usize, cols: usize, scale: f32, data: Vec<i8>) -> Result<Self, String> {
        if data.len() != rows * cols {
            return Err(format!(
                "quant matrix data length {} does not match shape {rows}x{cols}",
                data.len()
            ));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(format!("quant scale {scale} must be finite and positive"));
        }
        Ok(QuantMatrix {
            rows,
            cols,
            scale,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-tensor scale `s` (weights reconstruct as `q · s`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The row-major `i8` codes.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Materializes the dequantized f32 matrix (`q · s` per element) —
    /// exactly the values the dequantizing GEMM kernels see.
    pub fn dequantize(&self) -> Tensor {
        let s = self.scale;
        Tensor::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| (q as f32) * s).collect(),
        )
    }

    /// Worst-case absolute weight rounding error, `scale / 2`.
    pub fn max_weight_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Serializes named quant matrices as the payload of a CGPC `quant`
/// section: `u64 count`, then per entry `u64 name_len || name || u64
/// rows || u64 cols || f32 scale || rows·cols i8 codes` (all
/// little-endian).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_quant_blob<W: Write>(mut w: W, entries: &[(&str, &QuantMatrix)]) -> io::Result<()> {
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for (name, q) in entries {
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(q.rows as u64).to_le_bytes())?;
        w.write_all(&(q.cols as u64).to_le_bytes())?;
        w.write_all(&q.scale.to_le_bytes())?;
        // i8 → u8 is a bit-identity; write the codes as one block.
        let bytes: &[u8] =
            unsafe { std::slice::from_raw_parts(q.data.as_ptr() as *const u8, q.data.len()) };
        w.write_all(bytes)?;
    }
    Ok(())
}

/// Parses a `quant` section payload (the counterpart of
/// [`write_quant_blob`]), validating every length before allocating.
///
/// # Errors
///
/// Returns a descriptive message on truncation, an unreasonable count /
/// name / matrix size, or an invalid scale — never panics on hostile
/// bytes.
pub fn read_quant_blob<R: Read>(mut r: R) -> Result<Vec<(String, QuantMatrix)>, String> {
    fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, String> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)
            .map_err(|e| format!("quant section truncated reading {what}: {e}"))?;
        Ok(u64::from_le_bytes(b))
    }
    let count = read_u64(&mut r, "entry count")? as usize;
    if count > 1 << 16 {
        return Err(format!("quant section claims {count} entries (corrupt)"));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let name_len = read_u64(&mut r, "name length")? as usize;
        if name_len > 1 << 12 {
            return Err(format!(
                "quant entry {i} claims a {name_len}-byte name (corrupt)"
            ));
        }
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)
            .map_err(|e| format!("quant section truncated reading entry {i} name: {e}"))?;
        let name = String::from_utf8(name_buf)
            .map_err(|_| format!("quant entry {i} name is not UTF-8"))?;
        let rows = read_u64(&mut r, "rows")? as usize;
        let cols = read_u64(&mut r, "cols")? as usize;
        if rows.saturating_mul(cols) > 1 << 28 {
            return Err(format!(
                "quant entry {name:?} claims an unreasonable {rows}x{cols} matrix"
            ));
        }
        let mut sb = [0u8; 4];
        r.read_exact(&mut sb)
            .map_err(|e| format!("quant section truncated reading {name:?} scale: {e}"))?;
        let scale = f32::from_le_bytes(sb);
        let mut data = vec![0i8; rows * cols];
        {
            // i8 → u8 view for one bulk read; bit-identical.
            let bytes: &mut [u8] =
                unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut u8, data.len()) };
            r.read_exact(bytes)
                .map_err(|e| format!("quant section truncated reading {name:?} codes: {e}"))?;
        }
        let q = QuantMatrix::from_parts(rows, cols, scale, data)
            .map_err(|e| format!("quant entry {name:?}: {e}"))?;
        out.push((name, q));
    }
    // Trailing garbage means the section was not produced by this
    // serializer (or was bit-extended): reject rather than ignore.
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(out),
        Ok(_) => Err("quant section has trailing bytes (corrupt)".to_string()),
        Err(e) => Err(format!("quant section read error: {e}")),
    }
}

/// Dequantizing `out += a · (q · s)` for row-major `a (m×k)` against a
/// quantized `k×n` weight, dispatched like the f32 GEMM. The per-element
/// accumulation is one fused multiply-add per k step (`acc = fma(a_p,
/// q_pj·s, acc)`), identical on every backend.
pub(crate) fn gemm_quant(a: &[f32], q: &QuantMatrix, out: &mut [f32], m: usize) {
    gemm_quant_with(Backend::active(), a, q, out, m)
}

/// [`gemm_quant`] on an explicit backend.
pub(crate) fn gemm_quant_with(
    backend: Backend,
    a: &[f32],
    q: &QuantMatrix,
    out: &mut [f32],
    m: usize,
) {
    let (k, n) = (q.rows, q.cols);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    if crate::tensor::use_parallel(m, k, n) {
        let threads = crate::tensor::hardware_threads().min(m).max(1);
        let rows_per = m.div_ceil(threads.max(1));
        std::thread::scope(|s| {
            for (ti, ochunk) in out.chunks_mut(rows_per * n).enumerate() {
                let i0 = ti * rows_per;
                let rows = ochunk.len() / n;
                let aband = &a[i0 * k..(i0 + rows) * k];
                s.spawn(move || gemm_quant_serial(backend, aband, q, ochunk, rows));
            }
        });
    } else {
        gemm_quant_serial(backend, a, q, out, m);
    }
}

#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn gemm_quant_serial(backend: Backend, a: &[f32], q: &QuantMatrix, out: &mut [f32], m: usize) {
    let (k, n) = (q.rows, q.cols);
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: a non-scalar backend is only selected after its CPU
        // feature probe succeeded (`Backend::available`).
        unsafe {
            match (backend, n) {
                (Backend::Avx512, 16) => {
                    return crate::simd::avx512::gemm_quant_fixed::<16>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                (Backend::Avx512, 32) => {
                    return crate::simd::avx512::gemm_quant_fixed::<32>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                (Backend::Avx512, 64) => {
                    return crate::simd::avx512::gemm_quant_fixed::<64>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                (_, 8) => {
                    return crate::simd::avx2::gemm_quant_fixed::<8>(a, &q.data, q.scale, out, m, k)
                }
                (_, 16) => {
                    return crate::simd::avx2::gemm_quant_fixed::<16>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                (_, 32) => {
                    return crate::simd::avx2::gemm_quant_fixed::<32>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                (_, 64) => {
                    return crate::simd::avx2::gemm_quant_fixed::<64>(
                        a, &q.data, q.scale, out, m, k,
                    )
                }
                _ => {}
            }
        }
    }
    // Scalar reference (and the fallback for widths without a fixed-N
    // microkernel, on every backend): a single-step k chain per output
    // element — the same chain the SIMD kernels run per lane.
    let scale = q.scale;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let qrow = &q.data[p * n..(p + 1) * n];
            for (o, &qv) in orow.iter_mut().zip(qrow) {
                *o = av.mul_add((qv as f32) * scale, *o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i as f32) * 0.173).sin() * 2.5)
                .collect(),
        )
    }

    #[test]
    fn quantize_round_trips_within_half_scale() {
        let t = ramp(7, 9);
        let q = QuantMatrix::quantize(&t);
        let d = q.dequantize();
        for (x, y) in t.as_slice().iter().zip(d.as_slice()) {
            assert!(
                (x - y).abs() <= q.max_weight_error() + 1e-7,
                "{x} vs {y} (scale {})",
                q.scale()
            );
        }
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let q = QuantMatrix::quantize(&Tensor::zeros(3, 4));
        assert_eq!(q.scale(), 1.0);
        assert!(q.data().iter().all(|&v| v == 0));
        assert!(q.dequantize().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn blob_round_trips() {
        let q1 = QuantMatrix::quantize(&ramp(5, 8));
        let q2 = QuantMatrix::quantize(&ramp(3, 1));
        let mut bytes = Vec::new();
        write_quant_blob(&mut bytes, &[("a.weight", &q1), ("b.weight", &q2)]).unwrap();
        let entries = read_quant_blob(&bytes[..]).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a.weight");
        assert_eq!(entries[0].1, q1);
        assert_eq!(entries[1].1, q2);
    }

    #[test]
    fn truncated_blob_is_an_error_not_a_panic() {
        let q = QuantMatrix::quantize(&ramp(4, 4));
        let mut bytes = Vec::new();
        write_quant_blob(&mut bytes, &[("w", &q)]).unwrap();
        for cut in [0, 3, 9, bytes.len() - 1] {
            let err = read_quant_blob(&bytes[..cut]).unwrap_err();
            assert!(err.contains("truncated"), "cut {cut}: {err}");
        }
        // Trailing garbage is also rejected.
        bytes.push(0xAB);
        assert!(read_quant_blob(&bytes[..])
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn absurd_sizes_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_quant_blob(&bytes[..]).unwrap_err().contains("entries"));
    }

    #[test]
    fn quant_gemm_matches_dequantized_f32_gemm() {
        // The dequantizing kernel must equal "materialize q·s, then run
        // the f32 GEMM with a single-step chain" — here checked against
        // a naive accumulation in the same order.
        let (m, k, n) = (5, 23, 8);
        let a = ramp(m, k);
        let q = QuantMatrix::quantize(&ramp(k, n));
        let mut out = vec![0.0f32; m * n];
        gemm_quant_with(Backend::Scalar, a.as_slice(), &q, &mut out, m);
        let d = q.dequantize();
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a.as_slice()[i * k + p];
                for j in 0..n {
                    want[i * n + j] = av.mul_add(d.as_slice()[p * n + j], want[i * n + j]);
                }
            }
        }
        assert_eq!(out, want);
    }
}
