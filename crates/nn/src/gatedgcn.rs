//! Residual Gated Graph ConvNet (GatedGCN, Bresson & Laurent 2017) with edge
//! features, as used inside GraphGPS and this paper's MPNN branch.
//!
//! Update rule (for an edge `j → i` with feature `e_ij`):
//!
//! ```text
//! ê_ij = C·e_ij + D·x_i + E·x_j
//! η_ij = σ(ê_ij)
//! x̂_i  = A·x_i + Σ_j η_ij ⊙ (B·x_j)  /  (Σ_j η_ij + ε)
//! x'   = x + ReLU(BN(x̂))     e' = e + ReLU(BN(ê))
//! ```
//!
//! Edges must be provided in *directed* form; undirected graphs list each
//! edge twice (both directions), which is what
//! [`circuit-graph`](https://crates.io/crates/circuit-graph)'s CSR export does.

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::infer::{add_div_inplace, assemble_edge_hat_typed, gated_scatter};
use crate::layers::{BatchNorm1d, Linear};
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Directed edge index shared by all GatedGCN layers of a model.
///
/// `src[k] → dst[k]` is the k-th message; both arrays index node rows.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// Source node of each directed edge.
    pub src: Arc<Vec<usize>>,
    /// Destination node of each directed edge.
    pub dst: Arc<Vec<usize>>,
}

impl EdgeIndex {
    /// Creates an edge index from parallel source/destination arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length.
    pub fn new(src: Vec<usize>, dst: Vec<usize>) -> Self {
        assert_eq!(src.len(), dst.len(), "edge index arrays must be parallel");
        EdgeIndex {
            src: Arc::new(src),
            dst: Arc::new(dst),
        }
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Largest node index referenced by any edge, or `None` for an empty
    /// index. Lets callers validate the index against their node count
    /// before gather/scatter panics deep inside a kernel.
    pub fn max_node(&self) -> Option<usize> {
        self.src.iter().chain(self.dst.iter()).copied().max()
    }
}

/// One GatedGCN layer with residual connections and batch norm on both the
/// node and the edge stream.
#[derive(Debug, Clone)]
pub struct GatedGcn {
    a: Linear,
    b: Linear,
    c: Linear,
    d: Linear,
    e: Linear,
    bn_x: BatchNorm1d,
    bn_e: BatchNorm1d,
    dropout: f32,
    eps: f32,
}

impl GatedGcn {
    /// Registers a GatedGCN layer over node/edge width `dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        GatedGcn {
            a: Linear::new(store, &format!("{name}.A"), dim, dim, true, rng),
            b: Linear::new(store, &format!("{name}.B"), dim, dim, true, rng),
            c: Linear::new(store, &format!("{name}.C"), dim, dim, true, rng),
            d: Linear::new(store, &format!("{name}.D"), dim, dim, true, rng),
            e: Linear::new(store, &format!("{name}.E"), dim, dim, true, rng),
            bn_x: BatchNorm1d::new(store, &format!("{name}.bn_x"), dim),
            bn_e: BatchNorm1d::new(store, &format!("{name}.bn_e"), dim),
            dropout,
            eps: 1e-6,
        }
    }

    /// Applies the layer.
    ///
    /// * `x` — `N × d` node features
    /// * `e` — `E × d` directed-edge features (one row per directed edge)
    /// * `index` — directed edge index with `E` entries
    ///
    /// Returns `(x', e')`.
    pub fn forward(&self, tape: &mut Tape, x: Var, e: Var, index: &EdgeIndex) -> (Var, Var) {
        let n = tape.shape(x).0;
        let ne = tape.shape(e).0;
        assert_eq!(ne, index.len(), "edge feature count must match edge index");
        if let Some(max) = index.max_node() {
            assert!(
                max < n,
                "edge index references node {max} but only {n} nodes exist"
            );
        }

        // Edge update: ê = C e + D x_dst + E x_src. The adds consume their
        // left operand in place — ce/tmp are not referenced again.
        let ce = self.c.forward(tape, e);
        let dx = self.d.forward(tape, x);
        let ex = self.e.forward(tape, x);
        let dx_dst = tape.gather(dx, index.dst.clone());
        let ex_src = tape.gather(ex, index.src.clone());
        let tmp = tape.add_inplace(ce, dx_dst);
        let e_hat = tape.add_inplace(tmp, ex_src);

        // Gates.
        let eta = tape.sigmoid(e_hat); // E × d

        // Node update: x̂_i = A x_i + Σ η ⊙ (B x_src) / (Σ η + ε)
        let bx = self.b.forward(tape, x);
        let bx_src = tape.gather(bx, index.src.clone());
        let weighted = tape.mul(eta, bx_src);
        let num = tape.scatter_add(weighted, index.dst.clone(), n);
        let den = tape.scatter_add(eta, index.dst.clone(), n);
        let den = tape.add_scalar_inplace(den, self.eps);
        let agg = tape.div(num, den);
        let ax = self.a.forward(tape, x);
        let x_hat = tape.add_inplace(ax, agg);

        // Residual + BN + ReLU on both streams. The BN output is
        // single-use, so the ReLU runs in place; the residual add may only
        // consume the dropout output when it is a distinct var (ReLU's
        // backward reads its own output, so the ReLU result itself must
        // stay readable). `x`/`e` stay intact for the Linear backward.
        let xb = self.bn_x.forward(tape, x_hat);
        let xr = tape.relu_inplace(xb);
        let xd = tape.dropout(xr, self.dropout);
        let x_out = if xd == xr {
            tape.add(xd, x)
        } else {
            tape.add_inplace(xd, x)
        };

        let eb = self.bn_e.forward(tape, e_hat);
        let er = tape.relu_inplace(eb);
        let ed = tape.dropout(er, self.dropout);
        let e_out = if ed == er {
            tape.add(ed, e)
        } else {
            tape.add_inplace(ed, e)
        };

        (x_out, e_out)
    }

    /// Tape-free forward (eval mode: dropout is the identity, batch norm
    /// uses running statistics). Mirrors [`GatedGcn::forward`] op for op,
    /// so outputs are bitwise-equal to the taped eval-mode pass.
    ///
    /// # Panics
    ///
    /// Same contracts as [`GatedGcn::forward`].
    pub fn infer(
        &self,
        params: &ParamStore,
        x: &Tensor,
        e: &Tensor,
        index: &EdgeIndex,
    ) -> (Tensor, Tensor) {
        self.infer_opts(params, x, e, index, None, true)
    }

    /// [`GatedGcn::infer`] with the inference-engine fast paths:
    ///
    /// * `typed_edges` — when `e` is a row gather of an embedding table
    ///   (the first GPS layer's edge features), pass `(codes, table)` and
    ///   the `C·e` GEMM collapses to one GEMM over the table's few rows
    ///   plus a gather. Per-row results are unchanged (GEMM rows are
    ///   independent), so this is bitwise-equal.
    /// * `need_edge_out = false` — skips the edge stream's BN/ReLU/
    ///   residual output sweep and returns an empty edge tensor; use on
    ///   the last layer, whose edge output nobody reads.
    ///
    /// # Panics
    ///
    /// Same contracts as [`GatedGcn::forward`].
    pub fn infer_opts(
        &self,
        params: &ParamStore,
        x: &Tensor,
        e: &Tensor,
        index: &EdgeIndex,
        typed_edges: Option<(&[usize], &Tensor)>,
        need_edge_out: bool,
    ) -> (Tensor, Tensor) {
        let n = x.rows();
        assert_eq!(
            e.rows(),
            index.len(),
            "edge feature count must match edge index"
        );
        if let Some(max) = index.max_node() {
            assert!(
                max < n,
                "edge index references node {max} but only {n} nodes exist"
            );
        }

        // Edge update ê = C e + D x_dst + E x_src, assembled in one fused
        // sweep over the edge stream.
        let dx = self.d.infer(params, x);
        let ex = self.e.infer(params, x);
        let e_hat = match typed_edges {
            Some((codes, table)) => {
                debug_assert_eq!(codes.len(), e.rows());
                // C·e collapses to the table's few rows; the per-edge rows
                // are read straight out of the projected table during the
                // single assembly pass.
                let ce_table = self.c.infer(params, table);
                let e_hat =
                    assemble_edge_hat_typed(&ce_table, codes, &dx, &index.dst, &ex, &index.src);
                ce_table.recycle();
                e_hat
            }
            None => self
                .c
                .infer_add_gathered2(params, e, &dx, &index.dst, &ex, &index.src),
        };
        dx.recycle();
        ex.recycle();

        // Gates + node aggregation, fused: η = σ(ê) is computed per edge
        // and scattered into the numerator/denominator in edge order.
        let bx = self.b.infer(params, x);
        let (num, den) = gated_scatter(&e_hat, &bx, &index.src, &index.dst, n);
        bx.recycle();
        let x_hat = add_div_inplace(self.a.infer(params, x), &num, &den, self.eps);
        num.recycle();
        den.recycle();

        // Residual + BN + ReLU on both streams (eval: no dropout), one
        // fused output sweep per stream.
        let x_out = self.bn_x.infer_relu_add(params, &x_hat, x);
        let e_out = if need_edge_out {
            self.bn_e.infer_relu_add(params, &e_hat, e)
        } else {
            Tensor::zeros(0, e.cols())
        };
        x_hat.recycle();
        e_hat.recycle();
        (x_out, e_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use crate::tensor::Tensor;
    use rand::{Rng, SeedableRng};

    fn path_graph(n: usize) -> EdgeIndex {
        // Undirected path 0-1-2-...-n stored as both directions. Iterating
        // from 1 avoids the `0..n - 1` underflow when `n == 0`.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for i in 1..n {
            src.push(i - 1);
            dst.push(i);
            src.push(i);
            dst.push(i - 1);
        }
        EdgeIndex::new(src, dst)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = GatedGcn::new(&mut store, "g", 8, 0.0, &mut rng);
        let idx = path_graph(5);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::ones(5, 8));
        let e = tape.input(Tensor::ones(idx.len(), 8));
        let (x2, e2) = layer.forward(&mut tape, x, e, &idx);
        assert_eq!(tape.shape(x2), (5, 8));
        assert_eq!(tape.shape(e2), (idx.len(), 8));
    }

    #[test]
    fn gradients_reach_all_five_linears() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = GatedGcn::new(&mut store, "g", 4, 0.0, &mut rng);
        let idx = path_graph(4);
        let mut tape = Tape::new(&store, true, 0);
        let xv: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let ev: Vec<f32> = (0..idx.len() * 4)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let x = tape.input(Tensor::from_vec(4, 4, xv));
        let e = tape.input(Tensor::from_vec(idx.len(), 4, ev));
        let (x2, _e2) = layer.forward(&mut tape, x, e, &idx);
        let loss = tape.mse_loss(x2, &vec![0.0; 16]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        for tag in ["g.A", "g.B", "g.C", "g.D", "g.E"] {
            let found = store
                .iter()
                .any(|(id, name, _)| name.starts_with(tag) && grads.get(id).is_some());
            assert!(found, "no gradient reached {tag}");
        }
    }

    #[test]
    fn empty_edge_index_is_guarded() {
        // path_graph(1) has a single node and no edges — the former
        // `0..n - 1` underflow case.
        let idx = path_graph(1);
        assert!(idx.is_empty());
        assert_eq!(idx.max_node(), None);

        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let layer = GatedGcn::new(&mut store, "g", 4, 0.0, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::ones(3, 4));
        let e = tape.input(Tensor::zeros(0, 4));
        let (x2, e2) = layer.forward(&mut tape, x, e, &idx);
        assert_eq!(tape.shape(x2), (3, 4));
        assert_eq!(tape.shape(e2), (0, 4));
        assert!(tape.value(x2).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "edge index references node")]
    fn out_of_range_edge_index_panics_clearly() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let layer = GatedGcn::new(&mut store, "g", 4, 0.0, &mut rng);
        let idx = EdgeIndex::new(vec![0], vec![5]);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::ones(3, 4));
        let e = tape.input(Tensor::ones(1, 4));
        let _ = layer.forward(&mut tape, x, e, &idx);
    }

    #[test]
    fn isolated_node_keeps_residual_value() {
        // A node with no incoming edges must still produce finite output
        // (the ε in the denominator guards the 0/0 case).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = GatedGcn::new(&mut store, "g", 4, 0.0, &mut rng);
        // Single directed edge 0 → 1 leaves node 2 isolated.
        let idx = EdgeIndex::new(vec![0], vec![1]);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::ones(3, 4));
        let e = tape.input(Tensor::ones(1, 4));
        let (x2, _) = layer.forward(&mut tape, x, e, &idx);
        assert!(tape.value(x2).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deeper_stack_stays_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layers: Vec<GatedGcn> = (0..4)
            .map(|i| GatedGcn::new(&mut store, &format!("l{i}"), 8, 0.0, &mut rng))
            .collect();
        let idx = path_graph(6);
        let mut tape = Tape::new(&store, true, 0);
        let mut rng2 = StdRng::seed_from_u64(4);
        let xv: Vec<f32> = (0..48).map(|_| rng2.gen_range(-1.0..1.0)).collect();
        let mut x = tape.input(Tensor::from_vec(6, 8, xv));
        let mut e = tape.input(Tensor::ones(idx.len(), 8));
        for layer in &layers {
            let (nx, ne) = layer.forward(&mut tape, x, e, &idx);
            x = nx;
            e = ne;
        }
        assert!(tape.value(x).as_slice().iter().all(|v| v.is_finite()));
    }
}
