//! Standard neural-network layers built on the autograd [`Tape`].
//!
//! Layers own only [`ParamId`]/[`BufferId`] handles; the actual weights live
//! in the shared [`ParamStore`]. Constructing a layer registers its
//! parameters under a dotted name prefix so checkpoints and freeze-by-prefix
//! fine-tuning work uniformly.

use rand::rngs::StdRng;

use crate::params::{normal_init, xavier_uniform, BufferId, ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Activation functions selectable in [`Mlp`] and model configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// Rectified linear unit (the paper's default).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Tape-free activation (eval mode), mutating `x` in place. Uses the
    /// same elementwise kernels as the taped ops, so results are
    /// bitwise-equal.
    pub fn infer(self, x: &mut Tensor) {
        let backend = crate::simd::Backend::active();
        match self {
            Activation::Relu => crate::infer::relu_sweep_with(backend, x.as_mut_slice()),
            Activation::Tanh => {
                for v in x.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => crate::infer::sigmoid_sweep_with(backend, x.as_mut_slice()),
            Activation::Identity => {}
        }
    }
}

/// Fully connected layer `y = xW + b`.
///
/// # Examples
///
/// ```
/// use cirgps_nn::{Linear, ParamStore, Tape, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let lin = Linear::new(&mut store, "proj", 4, 8, true, &mut rng);
/// let mut tape = Tape::new(&store, false, 0);
/// let x = tape.input(Tensor::zeros(3, 4));
/// let y = lin.forward(&mut tape, x);
/// assert_eq!(tape.shape(y), (3, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new linear layer under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            &format!("{name}.weight"),
            xavier_uniform(in_dim, out_dim, rng),
            true,
        );
        // Linear weights route through the dequantizing GEMM when an
        // int8 snapshot exists; layers whose inference path reads the
        // raw f32 weight instead (the packed QKV projections) unmark
        // theirs at construction.
        store.set_quantizable(w, true);
        let b =
            bias.then(|| store.register(&format!("{name}.bias"), Tensor::zeros(1, out_dim), true));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The weight's [`ParamId`] (for fused multi-projection ops that
    /// read several layers' weights at once, e.g. the packed QKV GEMM).
    pub(crate) fn weight_id(&self) -> ParamId {
        self.w
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to an `N × in_dim` input (fused matmul + bias).
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w);
        let b = self.b.map(|b| tape.param(b));
        tape.linear(x, w, b)
    }

    /// Applies the layer followed by a fused ReLU (`relu(xW + b)`), saving
    /// one tape op and one output buffer versus `forward` + `relu`.
    pub fn forward_relu(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w);
        let b = self.b.map(|b| tape.param(b));
        tape.linear_relu(x, w, b)
    }

    /// Tape-free forward (eval mode): same fused kernel as
    /// [`Linear::forward`], reading weights straight from `params`. If
    /// the store holds an int8 snapshot of this weight, the GEMM runs
    /// through the dequantizing kernels instead.
    pub fn infer(&self, params: &ParamStore, x: &Tensor) -> Tensor {
        match params.quant_of(self.w) {
            Some(q) => crate::infer::linear_fwd_quant(x, q, self.b.map(|b| params.get(b)), false),
            None => crate::infer::linear_fwd(
                x,
                params.get(self.w),
                self.b.map(|b| params.get(b)),
                false,
            ),
        }
    }

    /// Tape-free `relu(xW + b)` (eval mode).
    pub fn infer_relu(&self, params: &ParamStore, x: &Tensor) -> Tensor {
        match params.quant_of(self.w) {
            Some(q) => crate::infer::linear_fwd_quant(x, q, self.b.map(|b| params.get(b)), true),
            None => {
                crate::infer::linear_fwd(x, params.get(self.w), self.b.map(|b| params.get(b)), true)
            }
        }
    }

    /// Tape-free `(xW + b) + dx[dst] + ex[src]` with the gathered adds
    /// fused into the GEMM's store epilogue (the GatedGCN edge update).
    pub fn infer_add_gathered2(
        &self,
        params: &ParamStore,
        x: &Tensor,
        dx: &Tensor,
        dst: &[usize],
        ex: &Tensor,
        src: &[usize],
    ) -> Tensor {
        if let Some(q) = params.quant_of(self.w) {
            // Quantized route: dequantizing GEMM, gathered adds as a
            // second sweep (bitwise-equal to the fused epilogue).
            let ce = crate::infer::linear_fwd_quant(x, q, self.b.map(|b| params.get(b)), false);
            return crate::infer::add_gathered2_inplace(ce, dx, dst, ex, src);
        }
        crate::infer::linear_add_gathered2(
            x,
            params.get(self.w),
            self.b.map(|b| params.get(b)),
            dx,
            dst,
            ex,
            src,
        )
    }
}

/// Lookup table mapping integer codes to dense embeddings.
#[derive(Debug, Clone)]
pub struct Embedding {
    w: ParamId,
    num: usize,
    dim: usize,
}

impl Embedding {
    /// Registers an embedding table with `num` entries of width `dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        let w = store.register(
            &format!("{name}.weight"),
            normal_init(num, dim, std, rng),
            true,
        );
        Embedding { w, num, dim }
    }

    /// Number of entries in the table.
    pub fn num_embeddings(&self) -> usize {
        self.num
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of codes, producing an `N × dim` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range.
    pub fn forward(&self, tape: &mut Tape, codes: &[usize]) -> Var {
        for &c in codes {
            assert!(c < self.num, "embedding code {c} out of range {}", self.num);
        }
        let w = tape.param(self.w);
        tape.gather(w, std::sync::Arc::new(codes.to_vec()))
    }

    /// The embedding table itself (for inference fast paths that operate
    /// on the table's rows instead of per-lookup rows).
    pub fn table<'p>(&self, params: &'p ParamStore) -> &'p Tensor {
        params.get(self.w)
    }

    /// Tape-free lookup (eval mode).
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range.
    pub fn infer(&self, params: &ParamStore, codes: &[usize]) -> Tensor {
        for &c in codes {
            assert!(c < self.num, "embedding code {c} out of range {}", self.num);
        }
        crate::infer::gather_rows(params.get(self.w), codes)
    }
}

/// Batch normalization over the row (node/sample) dimension with running
/// statistics for evaluation mode.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: ParamId,
    beta: ParamId,
    running_mean: BufferId,
    running_var: BufferId,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm1d {
    /// Registers a batch-norm layer over `dim` features.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(&format!("{name}.gamma"), Tensor::ones(1, dim), true);
        let beta = store.register(&format!("{name}.beta"), Tensor::zeros(1, dim), true);
        let running_mean =
            store.register_buffer(&format!("{name}.running_mean"), Tensor::zeros(1, dim));
        let running_var =
            store.register_buffer(&format!("{name}.running_var"), Tensor::ones(1, dim));
        BatchNorm1d {
            gamma,
            beta,
            running_mean,
            running_var,
            momentum: 0.1,
            eps: 1e-5,
            dim,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies batch normalization. In training mode the running statistics
    /// are updated with momentum 0.1 (PyTorch convention).
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let gamma = tape.param(self.gamma);
        let beta = tape.param(self.beta);
        if tape.is_training() {
            let (y, mean, var) = tape.batch_norm(x, gamma, beta, self.eps, None);
            let m = self.momentum;
            tape.params().update_buffer(self.running_mean, |rm| {
                for (r, &b) in rm.as_mut_slice().iter_mut().zip(mean.as_slice()) {
                    *r = (1.0 - m) * *r + m * b;
                }
            });
            tape.params().update_buffer(self.running_var, |rv| {
                for (r, &b) in rv.as_mut_slice().iter_mut().zip(var.as_slice()) {
                    *r = (1.0 - m) * *r + m * b;
                }
            });
            y
        } else {
            let mean = tape.params().buffer(self.running_mean);
            let var = tape.params().buffer(self.running_var);
            let (y, _, _) = tape.batch_norm(x, gamma, beta, self.eps, Some((&mean, &var)));
            y
        }
    }

    /// Tape-free eval-mode forward: normalizes by the running statistics
    /// with the same per-element arithmetic as the taped eval path.
    pub fn infer(&self, params: &ParamStore, x: &Tensor) -> Tensor {
        let mean = params.buffer(self.running_mean);
        let var = params.buffer(self.running_var);
        let out = crate::infer::batch_norm_eval_fwd(
            x,
            params.get(self.gamma),
            params.get(self.beta),
            self.eps,
            &mean,
            &var,
        );
        mean.recycle();
        var.recycle();
        out
    }

    /// Fused tape-free `max(BN(x), 0) + residual` (eval mode): one output
    /// sweep, bitwise-equal to `infer` + ReLU + add.
    pub fn infer_relu_add(&self, params: &ParamStore, x: &Tensor, residual: &Tensor) -> Tensor {
        let mean = params.buffer(self.running_mean);
        let var = params.buffer(self.running_var);
        let out = crate::infer::batch_norm_eval_relu_add_fwd(
            x,
            params.get(self.gamma),
            params.get(self.beta),
            self.eps,
            &mean,
            &var,
            residual,
        );
        mean.recycle();
        var.recycle();
        out
    }

    /// Fused tape-free `BN(a + b)` (eval mode): one output sweep,
    /// bitwise-equal to adding first and normalizing after.
    pub fn infer_of_sum(&self, params: &ParamStore, a: &Tensor, b: &Tensor) -> Tensor {
        let mean = params.buffer(self.running_mean);
        let var = params.buffer(self.running_var);
        let out = crate::infer::batch_norm_eval_of_sum_fwd(
            a,
            b,
            params.get(self.gamma),
            params.get(self.beta),
            self.eps,
            &mean,
            &var,
        );
        mean.recycle();
        var.recycle();
        out
    }
}

/// Multi-layer perceptron with a shared hidden width.
///
/// The paper's GPS layer uses a 2-layer MLP block; heads use deeper stacks.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
    dropout: f32,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[64, 128, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        act: Activation,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp {
            layers,
            act,
            dropout,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Applies the MLP; the activation and dropout are applied between
    /// layers, not after the last one. ReLU hidden layers use the fused
    /// `linear_relu` op.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let n = self.layers.len();
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            if i + 1 < n {
                h = if self.act == Activation::Relu {
                    layer.forward_relu(tape, h)
                } else {
                    let y = layer.forward(tape, h);
                    self.act.apply(tape, y)
                };
                h = tape.dropout(h, self.dropout);
            } else {
                h = layer.forward(tape, h);
            }
        }
        h
    }

    /// Tape-free forward (eval mode: dropout is the identity). Recycles
    /// every intermediate activation, so steady-state inference allocates
    /// nothing.
    pub fn infer(&self, params: &ParamStore, x: &Tensor) -> Tensor {
        let n = self.layers.len();
        let mut cur: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input = cur.as_ref().unwrap_or(x);
            let next = if i + 1 < n {
                if self.act == Activation::Relu {
                    layer.infer_relu(params, input)
                } else {
                    let mut y = layer.infer(params, input);
                    self.act.infer(&mut y);
                    y
                }
            } else {
                layer.infer(params, input)
            };
            if let Some(prev) = cur.replace(next) {
                prev.recycle();
            }
        }
        cur.unwrap_or_else(|| x.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 5, true, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::zeros(7, 3));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (7, 5));
    }

    #[test]
    fn linear_without_bias_has_fewer_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        Linear::new(&mut store, "a", 3, 5, false, &mut rng);
        assert_eq!(store.num_trainable(), 15);
        Linear::new(&mut store, "b", 3, 5, true, &mut rng);
        assert_eq!(store.num_trainable(), 35);
    }

    #[test]
    fn embedding_lookup_returns_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 4, 6, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let v = emb.forward(&mut tape, &[2, 2, 0]);
        assert_eq!(tape.shape(v), (3, 6));
        let t = tape.value(v);
        assert_eq!(t.row_slice(0), t.row_slice(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_rejects_bad_code() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 4, 6, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let _ = emb.forward(&mut tape, &[4]);
    }

    #[test]
    fn batch_norm_normalizes_in_training() {
        let mut store = ParamStore::new();
        let bn = BatchNorm1d::new(&mut store, "bn", 2);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(Tensor::from_rows(&[
            &[1.0, 10.0],
            &[3.0, 20.0],
            &[5.0, 30.0],
        ]));
        let y = bn.forward(&mut tape, x);
        let t = tape.value(y);
        // Each column should have ~zero mean and ~unit variance.
        for c in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| t.get(r, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "column {c} mean {mean}");
        }
    }

    #[test]
    fn batch_norm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let bn = BatchNorm1d::new(&mut store, "bn", 1);
        // Run many training steps so running stats converge to data stats.
        for _ in 0..200 {
            let mut tape = Tape::new(&store, true, 0);
            let x = tape.input(Tensor::col(&[4.0, 6.0]));
            let _ = bn.forward(&mut tape, x);
        }
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::col(&[5.0]));
        let y = bn.forward(&mut tape, x);
        // 5.0 is the running mean, so the normalized output should be ~0.
        assert!(tape.value(y).item().abs() < 0.05);
    }

    #[test]
    fn mlp_learns_xor_direction() {
        // Not a full training test; just check gradients flow through
        // every layer of a 3-layer MLP.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[2, 8, 1],
            Activation::Relu,
            0.0,
            &mut rng,
        );
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
        let y = mlp.forward(&mut tape, x);
        let loss = tape.mse_loss(y, &[1.0, 1.0]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 4, "all weight+bias tensors should have grads");
    }
}
