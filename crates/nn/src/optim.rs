//! Optimizers and learning-rate schedules.

use std::io::{self, Read, Write};

use crate::params::{read_tensor, read_u64, write_tensor, write_u64, GradStore, ParamStore};
use crate::tensor::Tensor;

/// Adam / AdamW optimizer (Kingma & Ba 2015; decoupled weight decay per
/// Loshchilov & Hutter 2019 when `weight_decay > 0`).
///
/// # Examples
///
/// ```
/// use cirgps_nn::{Adam, GradStore, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::ones(1, 1), true);
/// let mut opt = Adam::new(0.1);
/// let mut grads = GradStore::new(&store);
/// grads.accumulate(w, &Tensor::scalar(1.0));
/// opt.step(&mut store, &grads);
/// assert!(store.get(w).item() < 1.0);
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Overrides the default betas.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (used by schedulers between steps).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Serializes the optimizer's *mutable* state — the step counter and
    /// the first/second moment estimates — so a resumed training run
    /// continues bitwise where it stopped. Hyperparameters (lr, betas,
    /// weight decay) are NOT serialized: they come from the training
    /// config, and the lr is overwritten by the schedule every step.
    ///
    /// Layout (little-endian, no magic — callers embed this in their own
    /// container): `t: u64`, `len: u64`, then `len` slots of
    /// `present: u8` followed, when `present == 1`, by a
    /// `(rows, cols, f32 data)` tensor record for `m` and another for
    /// `v`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_state<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u64(&mut w, self.t)?;
        write_u64(&mut w, self.m.len() as u64)?;
        for (m, v) in self.m.iter().zip(&self.v) {
            match (m, v) {
                (Some(m), Some(v)) => {
                    w.write_all(&[1])?;
                    write_tensor(&mut w, m)?;
                    write_tensor(&mut w, v)?;
                }
                _ => w.write_all(&[0])?,
            }
        }
        Ok(())
    }

    /// Restores state written by [`Adam::save_state`], replacing this
    /// optimizer's step counter and moment estimates.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the reader fails or the payload is
    /// malformed (e.g. truncated, or an absurd slot count).
    pub fn load_state<R: Read>(&mut self, mut r: R) -> io::Result<()> {
        let t = read_u64(&mut r)?;
        let len = read_u64(&mut r)? as usize;
        if len > 1 << 24 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unreasonable optimizer slot count",
            ));
        }
        let mut m = Vec::with_capacity(len);
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            let mut present = [0u8; 1];
            r.read_exact(&mut present)?;
            match present[0] {
                0 => {
                    m.push(None);
                    v.push(None);
                }
                1 => {
                    m.push(Some(read_tensor(&mut r)?));
                    v.push(Some(read_tensor(&mut r)?));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad optimizer slot tag {other}"),
                    ));
                }
            }
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one update step. Parameters without gradients, and frozen
    /// parameters, are left untouched.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradStore) {
        if self.m.len() < store.len() {
            self.m.resize_with(store.len(), || None);
            self.v.resize_with(store.len(), || None);
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            if !store.is_trainable(id) {
                continue;
            }
            let Some(g) = grads.get(id) else { continue };
            let shape = store.get(id).shape();
            let m = self.m[id_index(id)].get_or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let v = self.v[id_index(id)].get_or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            let gs = g.as_slice();
            // `grads` and `store` are disjoint structs, so the gradient can
            // be read while the parameter is updated — no copy needed.
            let p = store.get_mut(id);
            for (((pi, &gi), mi), vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(gs)
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                let mut update = lr * mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    update += lr * wd * *pi;
                }
                *pi -= update;
            }
        }
    }
}

fn id_index(id: crate::params::ParamId) -> usize {
    // ParamId is an index newtype; this helper keeps the field private.
    id.0
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradStore) {
        if self.velocity.len() < store.len() {
            self.velocity.resize_with(store.len(), || None);
        }
        let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            if !store.is_trainable(id) {
                continue;
            }
            let Some(g) = grads.get(id) else { continue };
            let g = g.clone();
            let shape = store.get(id).shape();
            let vel =
                self.velocity[id_index(id)].get_or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let p = store.get_mut(id);
            for i in 0..p.len() {
                let v = self.momentum * vel.as_slice()[i] + g.as_slice()[i];
                vel.as_mut_slice()[i] = v;
                p.as_mut_slice()[i] -= self.lr * v;
            }
        }
    }
}

/// Cosine-annealing learning-rate schedule with linear warmup, as used by
/// GraphGPS configs.
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    base_lr: f32,
    min_lr: f32,
    warmup_steps: usize,
    total_steps: usize,
}

impl CosineSchedule {
    /// Creates a schedule ramping to `base_lr` over `warmup_steps` and
    /// annealing to `min_lr` at `total_steps`.
    pub fn new(base_lr: f32, min_lr: f32, warmup_steps: usize, total_steps: usize) -> Self {
        CosineSchedule {
            base_lr,
            min_lr,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let progress = if self.total_steps <= self.warmup_steps {
            1.0
        } else {
            ((step - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps) as f32)
                .min(1.0)
        };
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xavier_uniform;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize ||w - target||² — Adam should converge quickly.
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(1, 4, &mut rng), true);
        let target = [0.3f32, -0.7, 1.2, 0.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            let mut grads = GradStore::new(&store);
            {
                let mut tape = Tape::new(&store, true, 0);
                let wv = tape.param(w);
                let loss = tape.mse_loss(wv, &target);
                tape.backward(loss, &mut grads);
            }
            opt.step(&mut store, &grads);
        }
        for (got, want) in store.get(w).as_slice().iter().zip(&target) {
            assert!((got - want).abs() < 1e-2, "got {got}, want {want}");
        }
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::row(&[5.0]), true);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..200 {
            let mut grads = GradStore::new(&store);
            {
                let mut tape = Tape::new(&store, true, 0);
                let wv = tape.param(w);
                let loss = tape.mse_loss(wv, &[1.0]);
                tape.backward(loss, &mut grads);
            }
            opt.step(&mut store, &grads);
        }
        assert!((store.get(w).item() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn adam_skips_frozen_params() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::row(&[1.0]), false);
        let mut grads = GradStore::new(&store);
        grads.accumulate(w, &Tensor::row(&[10.0]));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &grads);
        assert_eq!(store.get(w).item(), 1.0);
    }

    #[test]
    fn adam_state_round_trip_resumes_bitwise() {
        // Two stores driven by the identical gradient sequence: A steps
        // straight through, B snapshots its optimizer halfway, restores
        // into a FRESH Adam, and continues. Divergence would mean the
        // moment estimates or step counter weren't fully captured.
        let grad_at =
            |step: usize| Tensor::row(&[0.1 + 0.03 * step as f32, -0.2, 0.05 * step as f32]);
        let mut store_a = ParamStore::new();
        let wa = store_a.register("w", Tensor::ones(1, 3), true);
        let mut store_b = ParamStore::new();
        let wb = store_b.register("w", Tensor::ones(1, 3), true);
        let mut opt_a = Adam::new(0.02).with_weight_decay(0.01);
        let mut opt_b = Adam::new(0.02).with_weight_decay(0.01);
        let do_step = |store: &mut ParamStore, opt: &mut Adam, id, step: usize| {
            let mut grads = GradStore::new(store);
            grads.accumulate(id, &grad_at(step));
            opt.step(store, &grads);
        };
        for step in 0..10 {
            do_step(&mut store_a, &mut opt_a, wa, step);
            do_step(&mut store_b, &mut opt_b, wb, step);
        }
        let mut state = Vec::new();
        opt_b.save_state(&mut state).unwrap();
        let mut opt_b2 = Adam::new(0.02).with_weight_decay(0.01);
        opt_b2.load_state(&state[..]).unwrap();
        for step in 10..20 {
            do_step(&mut store_a, &mut opt_a, wa, step);
            do_step(&mut store_b, &mut opt_b2, wb, step);
        }
        for (a, b) in store_a
            .get(wa)
            .as_slice()
            .iter()
            .zip(store_b.get(wb).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed optimizer diverged");
        }
        // Truncated state is a clean error, not a partial restore.
        assert!(Adam::new(0.02)
            .load_state(&state[..state.len() / 2])
            .is_err());
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule::new(1.0, 0.1, 10, 110);
        assert!(s.lr_at(0) < s.lr_at(9));
        assert!((s.lr_at(9) - 1.0).abs() < 0.11);
        assert!((s.lr_at(10) - 1.0).abs() < 1e-5);
        assert!((s.lr_at(110) - 0.1).abs() < 1e-4);
        assert!(s.lr_at(60) > 0.1 && s.lr_at(60) < 1.0);
        // Never below min_lr even past the end.
        assert!(s.lr_at(10_000) >= 0.1 - 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::row(&[1.0]), true);
        let mut grads = GradStore::new(&store);
        grads.accumulate(w, &Tensor::row(&[0.0]));
        let mut opt = Adam::new(0.1).with_weight_decay(0.5);
        opt.step(&mut store, &grads);
        assert!(store.get(w).item() < 1.0);
    }
}
