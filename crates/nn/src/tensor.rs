//! Dense 2-D tensors of `f32` with pooled allocation and blocked kernels.
//!
//! Everything in the CirGPS model is expressible with rank-2 tensors
//! (node-feature matrices `N × d`, weight matrices, row vectors `1 × d`,
//! column vectors `n × 1`, and scalars `1 × 1`), so the tensor type is
//! deliberately restricted to two dimensions. This keeps shape handling
//! easy to audit and removes an entire class of broadcasting bugs.
//!
//! Performance notes:
//!
//! * All constructors draw their backing `Vec<f32>` from the thread-local
//!   buffer pool ([`crate::pool`]); the autograd [`crate::Tape`] returns
//!   buffers to the pool when it is dropped or reset, so steady-state
//!   training does no per-op heap allocation.
//! * The three matmul variants use cache-blocked kernels (k-panelled
//!   i-k-j loops whose inner loop is a contiguous AXPY/dot) and switch to
//!   a row-partitioned multi-threaded path above a size threshold — see
//!   [`Tensor::matmul_parallel`] and `docs/perf.md`.

use std::fmt;
use std::sync::OnceLock;

use crate::pool;
use crate::simd::Backend;

/// k-panel height for the blocked GEMM kernels. A `KC × n` panel of the
/// right-hand matrix stays cache-hot while every output row is updated,
/// without changing the per-element accumulation order (k stays
/// ascending), so blocked results are bitwise-equal to the naive i-k-j
/// loop.
const KC: usize = 128;

/// Default multiply-accumulate count above which matmuls go parallel.
const DEFAULT_PAR_MACS: usize = 4 << 20;

/// MAC-count threshold for the parallel matmul path; override with the
/// `CIRGPS_PAR_MACS` environment variable (`0` disables threading).
fn par_macs_threshold() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var("CIRGPS_PAR_MACS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_PAR_MACS)
    })
}

pub(crate) fn hardware_threads() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

pub(crate) fn use_parallel(m: usize, k: usize, n: usize) -> bool {
    let threshold = par_macs_threshold();
    threshold > 0
        && hardware_threads() > 1
        && m > 1
        && m.saturating_mul(k).saturating_mul(n) >= threshold
}

/// `out += a · b` for row-major `a (m×k)`, `b (k×n)`, `out (m×n)`.
///
/// k-panelled so a `KC × n` slab of `b` stays cache-resident across all
/// output rows, with the inner accumulation unrolled over four k-steps:
/// the output row is streamed once per four B rows instead of once per
/// row, which is what makes the small `d×d` model matmuls fast. The
/// serial and parallel paths share this kernel, so they stay
/// bitwise-identical; versus a naive i-k-j loop the 4-way grouping is
/// tolerance-equal (different f32 summation tree), not bitwise.
pub(crate) fn gemm_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_serial_with(Backend::active(), a, b, out, m, k, n)
}

/// [`gemm_serial`] on an explicit backend. The SIMD microkernels keep
/// each output element's k-accumulation order, so every backend is
/// bitwise-equal (see `crate::simd`).
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn gemm_serial_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if n == 1 {
        // Column-vector RHS (e.g. the d→1 output heads): one dot product
        // per output element; the AXPY loop would make k width-1 passes.
        // Lives here (not in the `gemm` dispatcher) so serial, parallel,
        // and auto paths all use the same kernel for this shape.
        for (i, o) in out.iter_mut().enumerate() {
            *o += dot_with(backend, &a[i * k..(i + 1) * k], b);
        }
        return;
    }
    // SIMD backends: the fixed-width microkernels cover the model's
    // power-of-two widths at any k (a straight 4-unrolled k loop equals
    // the KC-panelled one because KC % 4 == 0); everything else runs the
    // vectorized generic AXPY loop. N=8 stays on the AVX2 kernel under
    // Avx512 (one 256-bit vector per row is already optimal).
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: a non-scalar backend is only selected after its CPU
        // feature probe succeeded (`Backend::available`).
        unsafe {
            return match (backend, n) {
                (Backend::Avx512, 16) => crate::simd::avx512::gemm_fixed::<16>(a, b, out, m, k),
                (Backend::Avx512, 32) => crate::simd::avx512::gemm_fixed::<32>(a, b, out, m, k),
                (Backend::Avx512, 64) => crate::simd::avx512::gemm_fixed::<64>(a, b, out, m, k),
                (_, 8) => crate::simd::avx2::gemm_fixed::<8>(a, b, out, m, k),
                (_, 16) => crate::simd::avx2::gemm_fixed::<16>(a, b, out, m, k),
                (_, 32) => crate::simd::avx2::gemm_fixed::<32>(a, b, out, m, k),
                (_, 64) => crate::simd::avx2::gemm_fixed::<64>(a, b, out, m, k),
                _ => crate::simd::avx2::gemm_generic(a, b, out, m, k, n, KC),
            };
        }
    }
    // Register-blocked microkernels for the model's power-of-two widths:
    // the output row lives in a `[f32; N]` accumulator for the whole k
    // loop (one load, one store) instead of being re-streamed every four
    // k-steps. The k order, 4-way grouping and panel boundaries are
    // identical to the generic loop below, so results stay bitwise-equal;
    // the k ≤ 2·KC bound keeps the whole `b` matrix L1/L2-resident.
    if k <= 2 * KC {
        match n {
            8 => return gemm_fixed_n::<8>(a, b, out, m, k),
            16 => return gemm_fixed_n::<16>(a, b, out, m, k),
            32 => return gemm_fixed_n::<32>(a, b, out, m, k),
            64 => return gemm_fixed_n::<64>(a, b, out, m, k),
            _ => {}
        }
    }
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..i * n + n];
            let mut p = p0;
            while p + 4 <= p1 {
                let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                let b0 = &b[p * n..p * n + n];
                let b1 = &b[(p + 1) * n..(p + 1) * n + n];
                let b2 = &b[(p + 2) * n..(p + 2) * n + n];
                let b3 = &b[(p + 3) * n..(p + 3) * n + n];
                for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    let t = a1.mul_add(v1, a0.mul_add(v0, *o));
                    *o = a3.mul_add(v3, a2.mul_add(v2, t));
                }
                p += 4;
            }
            while p < p1 {
                let av = arow[p];
                let brow = &b[p * n..p * n + n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = av.mul_add(bv, *o);
                }
                p += 1;
            }
        }
    }
}

/// `out += a · b` for a compile-time column count `N`: each output row
/// accumulates in registers across the whole (panelled, 4-unrolled) k
/// loop. Same per-element accumulation order as the generic kernel in
/// [`gemm_serial`], hence bitwise-equal — just ~2× fewer loads/stores.
fn gemm_fixed_n<const N: usize>(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize) {
    gemm_fixed_n_epilogue::<N, _>(a, b, out, m, k, |_, _| {});
}

/// [`gemm_fixed_n`] with a per-row store epilogue: `epilogue(i, acc)`
/// runs after row `i`'s accumulation completes, just before the store.
/// Fusing post-GEMM elementwise work here (e.g. the GatedGCN edge
/// assembly's gathered adds) saves a full read-modify-write sweep of the
/// output and is bitwise-equal to applying the same ops afterwards.
pub(crate) fn gemm_fixed_n_epilogue<const N: usize, E>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    epilogue: E,
) where
    E: Fn(usize, &mut [f32; N]),
{
    // Two output rows per pass: the four B rows of each k-group are
    // loaded once and feed both accumulators, roughly halving the load
    // traffic per FMA. Rows are independent, so per-row arithmetic (and
    // the single-row tail) is unchanged.
    let mut i = 0;
    while i + 2 <= m {
        let arow0 = &a[i * k..(i + 1) * k];
        let arow1 = &a[(i + 1) * k..(i + 2) * k];
        let mut acc0 = [0.0f32; N];
        let mut acc1 = [0.0f32; N];
        acc0.copy_from_slice(&out[i * N..(i + 1) * N]);
        acc1.copy_from_slice(&out[(i + 1) * N..(i + 2) * N]);
        for p0 in (0..k).step_by(KC) {
            let p1 = (p0 + KC).min(k);
            let mut p = p0;
            while p + 4 <= p1 {
                let (x0, x1, x2, x3) = (arow0[p], arow0[p + 1], arow0[p + 2], arow0[p + 3]);
                let (y0, y1, y2, y3) = (arow1[p], arow1[p + 1], arow1[p + 2], arow1[p + 3]);
                let b0 = &b[p * N..p * N + N];
                let b1 = &b[(p + 1) * N..(p + 1) * N + N];
                let b2 = &b[(p + 2) * N..(p + 2) * N + N];
                let b3 = &b[(p + 3) * N..(p + 3) * N + N];
                for j in 0..N {
                    let t0 = x1.mul_add(b1[j], x0.mul_add(b0[j], acc0[j]));
                    acc0[j] = x3.mul_add(b3[j], x2.mul_add(b2[j], t0));
                    let t1 = y1.mul_add(b1[j], y0.mul_add(b0[j], acc1[j]));
                    acc1[j] = y3.mul_add(b3[j], y2.mul_add(b2[j], t1));
                }
                p += 4;
            }
            while p < p1 {
                let xv = arow0[p];
                let yv = arow1[p];
                let brow = &b[p * N..p * N + N];
                for j in 0..N {
                    acc0[j] = xv.mul_add(brow[j], acc0[j]);
                    acc1[j] = yv.mul_add(brow[j], acc1[j]);
                }
                p += 1;
            }
        }
        epilogue(i, &mut acc0);
        epilogue(i + 1, &mut acc1);
        out[i * N..(i + 1) * N].copy_from_slice(&acc0);
        out[(i + 1) * N..(i + 2) * N].copy_from_slice(&acc1);
        i += 2;
    }
    if i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * N..(i + 1) * N];
        let mut acc = [0.0f32; N];
        acc.copy_from_slice(orow);
        for p0 in (0..k).step_by(KC) {
            let p1 = (p0 + KC).min(k);
            let mut p = p0;
            while p + 4 <= p1 {
                let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                let b0 = &b[p * N..p * N + N];
                let b1 = &b[(p + 1) * N..(p + 1) * N + N];
                let b2 = &b[(p + 2) * N..(p + 2) * N + N];
                let b3 = &b[(p + 3) * N..(p + 3) * N + N];
                for j in 0..N {
                    let t = a1.mul_add(b1[j], a0.mul_add(b0[j], acc[j]));
                    acc[j] = a3.mul_add(b3[j], a2.mul_add(b2[j], t));
                }
                p += 4;
            }
            while p < p1 {
                let av = arow[p];
                let brow = &b[p * N..p * N + N];
                for j in 0..N {
                    acc[j] = av.mul_add(brow[j], acc[j]);
                }
                p += 1;
            }
        }
        epilogue(i, &mut acc);
        orow.copy_from_slice(&acc);
    }
}

/// Row-partitioned parallel `out += a · b`. Each worker owns a disjoint
/// band of output rows and runs the serial kernel on it, so the result
/// is bitwise-identical to [`gemm_serial`].
pub(crate) fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_parallel_with(Backend::active(), a, b, out, m, k, n)
}

/// [`gemm_parallel`] on an explicit backend (each band runs the serial
/// kernel for that backend, so results stay bitwise-identical).
pub(crate) fn gemm_parallel_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let threads = hardware_threads().min(m).max(1);
    // Empty output: nothing to do (and `chunks_mut(0)` would panic).
    if out.is_empty() || threads < 2 {
        return gemm_serial_with(backend, a, b, out, m, k, n);
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (ti, ochunk) in out.chunks_mut(rows_per * n).enumerate() {
            let i0 = ti * rows_per;
            let rows = ochunk.len() / n;
            let aband = &a[i0 * k..(i0 + rows) * k];
            s.spawn(move || gemm_serial_with(backend, aband, b, ochunk, rows, k, n));
        }
    });
}

pub(crate) fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_with(Backend::active(), a, b, out, m, k, n)
}

/// Auto serial/parallel `out += a · b` on an explicit backend.
pub(crate) fn gemm_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if n != 1 && use_parallel(m, k, n) {
        gemm_parallel_with(backend, a, b, out, m, k, n);
    } else {
        gemm_serial_with(backend, a, b, out, m, k, n);
    }
}

/// Band kernel shared by the serial and parallel `aᵀ · b` paths: updates
/// output rows `[i0, i0 + rows)` with the accumulation unrolled over four
/// k-steps. Sharing one kernel keeps both paths bitwise-identical.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
#[allow(clippy::too_many_arguments)]
fn atb_band(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    oband: &mut [f32],
    i0: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe;
        // AVX-512 reuses the AVX2 band kernel (same 8-lane j sweep).
        return unsafe { crate::simd::avx2::atb_band(a, b, oband, i0, m, k, n) };
    }
    let rows = oband.len().checked_div(n).unwrap_or(0);
    let mut p = 0;
    while p + 4 <= k {
        let b0 = &b[p * n..p * n + n];
        let b1 = &b[(p + 1) * n..(p + 1) * n + n];
        let b2 = &b[(p + 2) * n..(p + 2) * n + n];
        let b3 = &b[(p + 3) * n..(p + 3) * n + n];
        for i in 0..rows {
            let a0 = a[p * m + i0 + i];
            let a1 = a[(p + 1) * m + i0 + i];
            let a2 = a[(p + 2) * m + i0 + i];
            let a3 = a[(p + 3) * m + i0 + i];
            let orow = &mut oband[i * n..i * n + n];
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                let t = a1.mul_add(v1, a0.mul_add(v0, *o));
                *o = a3.mul_add(v3, a2.mul_add(v2, t));
            }
        }
        p += 4;
    }
    while p < k {
        let brow = &b[p * n..p * n + n];
        for i in 0..rows {
            let av = a[p * m + i0 + i];
            let orow = &mut oband[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(bv, *o);
            }
        }
        p += 1;
    }
}

/// `out += aᵀ · b` for row-major `a (k×m)`, `b (k×n)`, `out (m×n)`,
/// without materializing the transpose, on an explicit backend.
pub(crate) fn gemm_atb_serial_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    atb_band(backend, a, b, out, 0, m, k, n);
}

/// Parallel `out += aᵀ · b` on an explicit backend: workers own disjoint
/// output-row bands (columns of `a`) and run the same band kernel, so
/// results match [`gemm_atb_serial_with`] bitwise.
pub(crate) fn gemm_atb_parallel_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let threads = hardware_threads().min(m).max(1);
    if out.is_empty() || threads < 2 {
        return gemm_atb_serial_with(backend, a, b, out, m, k, n);
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (ti, ochunk) in out.chunks_mut(rows_per * n).enumerate() {
            let i0 = ti * rows_per;
            s.spawn(move || atb_band(backend, a, b, ochunk, i0, m, k, n));
        }
    });
}

pub(crate) fn gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_atb_with(Backend::active(), a, b, out, m, k, n)
}

/// Auto serial/parallel `out += aᵀ · b` on an explicit backend.
pub(crate) fn gemm_atb_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if use_parallel(m, k, n) {
        gemm_atb_parallel_with(backend, a, b, out, m, k, n);
    } else {
        gemm_atb_serial_with(backend, a, b, out, m, k, n);
    }
}

/// Eight-lane unrolled dot product on an explicit backend. The lane
/// split breaks the serial floating-point dependency chain so the scalar
/// path vectorizes; every backend keeps the same 8-lane split and
/// reduction tree (AVX-512 reuses the 8-lane AVX2 kernel), so the
/// summation order — hence the result — never changes.
#[inline]
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn dot_with(backend: Backend, x: &[f32], y: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::dot(x, y) };
    }
    let mut lanes = [0.0f32; 8];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        for l in 0..8 {
            lanes[l] = cx[l].mul_add(cy[l], lanes[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail = a.mul_add(b, tail);
    }
    let s0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let s1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    (s0 + s1) + tail
}

/// Eight-lane unrolled sum with exactly [`dot_with`]'s summation tree:
/// equals `dot(x, ones)` bitwise (multiplying by 1.0 is exact), letting
/// callers skip materializing an all-ones vector. Keep in sync with
/// [`dot_with`].
pub(crate) fn laned_sum(x: &[f32]) -> f32 {
    laned_sum_with(Backend::active(), x)
}

/// [`laned_sum`] on an explicit backend (same tree on every backend).
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn laned_sum_with(backend: Backend, x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::laned_sum(x) };
    }
    let mut lanes = [0.0f32; 8];
    let mut xc = x.chunks_exact(8);
    for cx in &mut xc {
        for l in 0..8 {
            lanes[l] += cx[l];
        }
    }
    let mut tail = 0.0f32;
    for &a in xc.remainder() {
        tail += a;
    }
    let s0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let s1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    (s0 + s1) + tail
}

/// `out += a · bᵀ` for row-major `a (m×k)`, `b (n×k)`, `out (m×n)` on an
/// explicit backend: every output element is one [`dot_with`], so the
/// reduction order is backend-invariant.
pub(crate) fn gemm_abt_serial_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o += dot_with(backend, arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Row-partitioned parallel `out += a · bᵀ` on an explicit backend;
/// bitwise-equal to [`gemm_abt_serial_with`] because each element is one
/// dot product.
pub(crate) fn gemm_abt_parallel_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let threads = hardware_threads().min(m).max(1);
    if out.is_empty() || threads < 2 {
        return gemm_abt_serial_with(backend, a, b, out, m, k, n);
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (ti, ochunk) in out.chunks_mut(rows_per * n).enumerate() {
            let i0 = ti * rows_per;
            let rows = ochunk.len() / n;
            let aband = &a[i0 * k..(i0 + rows) * k];
            s.spawn(move || gemm_abt_serial_with(backend, aband, b, ochunk, rows, k, n));
        }
    });
}

pub(crate) fn gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_abt_with(Backend::active(), a, b, out, m, k, n)
}

/// Auto serial/parallel `out += a · bᵀ` on an explicit backend.
pub(crate) fn gemm_abt_with(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if use_parallel(m, k, n) {
        gemm_abt_parallel_with(backend, a, b, out, m, k, n);
    } else {
        gemm_abt_serial_with(backend, a, b, out, m, k, n);
    }
}

/// Branch-free `exp(x)`: Cephes-style range reduction (`exp(x) = 2^n ·
/// exp(r)` with a Cody–Waite split of ln 2) plus a degree-6 polynomial
/// for `exp(r)` on `[-ln2/2, ln2/2]`.
///
/// Relative error stays below `1e-6` over the full range — an order of
/// magnitude inside the crate's 1e-5 numeric tolerance — and the
/// function inlines into `map` loops where the compiler auto-vectorizes
/// it, unlike a libm `expf` call. Inputs above ~88 saturate to `exp(88)`
/// (≈ 1.7e38) instead of `inf`; NaN propagates.
#[inline]
#[allow(clippy::excessive_precision)] // Cody–Waite/minimax constants are exact by design.
pub fn fast_exp(x: f32) -> f32 {
    // Bounds where the 2^n exponent construction stays in range.
    let x = x.clamp(-87.0, 88.0);
    // Round to nearest via the 1.5·2^23 magic constant: adding it pushes
    // the fraction bits out (ties to even), subtracting recovers the
    // integer. Unlike `f32::round` (a libm call LLVM cannot vectorize)
    // this is two adds; and because the biased integer `n` also sits in
    // the low mantissa bits of `x·log₂e + MAGIC`, the `2^n` scale is
    // built with pure integer ops — no saturating float→int cast, which
    // was the op that kept every exp/sigmoid/softmax sweep scalar
    // (vectorizing it cut `map(fast_exp)` from ~1.12 ms to ~0.36 ms per
    // 580k elements). Valid because |x·log₂e| ≤ 128 « 2^22.
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let zf = x * std::f32::consts::LOG2_E + MAGIC;
    let n = zf - MAGIC;
    // Cody–Waite: subtract n·ln2 in two parts so r keeps full precision.
    const C1: f32 = 0.693_359_375;
    const C2: f32 = -2.121_944_4e-4;
    let r = x - n * C1 - n * C2;
    let z = r * r;
    let p = ((((1.987_569_2e-4 * r + 1.398_200_0e-3) * r + 8.333_452_0e-3) * r + 4.166_579_6e-2)
        * r
        + 1.666_666_5e-1)
        * r
        + 5.000_000_1e-1;
    let y = p * z + r + 1.0;
    // bits(MAGIC + n) − bits(MAGIC) = n for |n| < 2^22, so the biased
    // exponent (n + 127) << 23 comes straight from the float's bits.
    let n_i = (zf.to_bits() as i32).wrapping_sub(0x4B40_0000);
    y * f32::from_bits(((n_i + 127) << 23) as u32)
}

/// A dense, row-major 2-D tensor of `f32`.
///
/// # Examples
///
/// ```
/// use cirgps_nn::Tensor;
///
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.shape(), (2, 2));
/// assert_eq!(t.get(1, 0), 3.0);
/// ```
#[derive(PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take_capacity(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros (pool-backed).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: pool::take_zeroed(rows * cols),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::full(rows, cols, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut data = pool::take_capacity(rows * cols);
        data.resize(rows * cols, value);
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = pool::take_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a `1 × 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::row(&[v])
    }

    /// Creates a `1 × n` row vector.
    pub fn row(v: &[f32]) -> Self {
        let mut data = pool::take_capacity(v.len());
        data.extend_from_slice(v);
        Tensor {
            rows: 1,
            cols: v.len(),
            data,
        }
    }

    /// Creates an `n × 1` column vector.
    pub fn col(v: &[f32]) -> Self {
        let mut data = pool::take_capacity(v.len());
        data.extend_from_slice(v);
        Tensor {
            rows: v.len(),
            cols: 1,
            data,
        }
    }

    /// The `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    fn check_matmul(&self, rhs: &Tensor) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
    }

    /// Matrix product `self × rhs`.
    ///
    /// Uses the blocked kernel and switches to the row-partitioned
    /// parallel path above the `CIRGPS_PAR_MACS` threshold; all paths
    /// (including the `rhs.cols() == 1` dot-product shape) produce
    /// bitwise-identical results to [`Tensor::matmul_serial`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.check_matmul(rhs);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = pool::take_zeroed(m * n);
        gemm(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Matrix product via the serial blocked kernel, regardless of size.
    ///
    /// Exists so tests and benches can compare against
    /// [`Tensor::matmul_parallel`]; `matmul` picks between the two.
    pub fn matmul_serial(&self, rhs: &Tensor) -> Tensor {
        self.check_matmul(rhs);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = pool::take_zeroed(m * n);
        gemm_serial(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Matrix product via the row-partitioned threaded kernel, regardless
    /// of size. Bitwise-equal to [`Tensor::matmul_serial`].
    pub fn matmul_parallel(&self, rhs: &Tensor) -> Tensor {
        self.check_matmul(rhs);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = pool::take_zeroed(m * n);
        gemm_parallel(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Matrix product `selfᵀ × rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = pool::take_zeroed(m * n);
        gemm_atb(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = pool::take_zeroed(m * n);
        gemm_abt(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Returns the transpose (cache-blocked copy).
    pub fn transpose(&self) -> Tensor {
        const TB: usize = 32;
        let (r, c) = (self.rows, self.cols);
        let mut out = pool::take_zeroed(self.data.len());
        for r0 in (0..r).step_by(TB) {
            let r1 = (r0 + TB).min(r);
            for c0 in (0..c).step_by(TB) {
                let c1 = (c0 + TB).min(c);
                for i in r0..r1 {
                    for j in c0..c1 {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Tensor {
            rows: c,
            cols: r,
            data: out,
        }
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise scaling by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Applies `f` to each element (pool-backed output).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::take_capacity(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += s * rhs` (AXPY).
    pub fn axpy(&mut self, s: f32, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Column-wise sum, returned as a `1 × cols` row vector.
    pub fn col_sum(&self) -> Tensor {
        let mut out = pool::take_zeroed(self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
        Tensor {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Column-wise mean, returned as a `1 × cols` row vector.
    pub fn col_mean(&self) -> Tensor {
        let mut out = self.col_sum();
        let inv = if self.rows == 0 {
            0.0
        } else {
            1.0 / self.rows as f32
        };
        for o in out.data.iter_mut() {
            *o *= inv;
        }
        out
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut data = pool::take_capacity(self.data.len());
        data.extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns the buffer to the thread-local pool. The tape calls this
    /// when it retires intermediates; tape-free inference callers (see
    /// [`crate::infer`]) do so explicitly after each op so steady-state
    /// batched inference allocates nothing.
    pub fn recycle(self) {
        pool::put(self.data);
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_close_to_matmul_with_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        let fused = a.matmul_t(&b);
        let reference = a.matmul(&b.transpose());
        assert_eq!(fused.shape(), reference.shape());
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_kernels_match_serial_exactly() {
        // Larger-than-one-tile shapes so blocking and partitioning both
        // engage; the parallel path must be bitwise-identical.
        let k = 300;
        let a = Tensor::from_vec(
            37,
            k,
            (0..37 * k).map(|i| (i as f32 * 0.137).sin()).collect(),
        );
        let b = Tensor::from_vec(
            k,
            19,
            (0..k * 19).map(|i| (i as f32 * 0.071).cos()).collect(),
        );
        assert_eq!(
            a.matmul_serial(&b).as_slice(),
            a.matmul_parallel(&b).as_slice()
        );

        let mut o1 = vec![0.0f32; a.cols() * b.cols()];
        let mut o2 = vec![0.0f32; a.cols() * b.cols()];
        let at = Tensor::from_vec(
            k,
            37,
            (0..k * 37).map(|i| (i as f32 * 0.093).sin()).collect(),
        );
        let be = Backend::active();
        gemm_atb_serial_with(
            be,
            at.as_slice(),
            b.as_slice(),
            &mut o1[..37 * 19],
            37,
            k,
            19,
        );
        gemm_atb_parallel_with(
            be,
            at.as_slice(),
            b.as_slice(),
            &mut o2[..37 * 19],
            37,
            k,
            19,
        );
        assert_eq!(&o1[..37 * 19], &o2[..37 * 19]);

        let bt = Tensor::from_vec(
            19,
            k,
            (0..19 * k).map(|i| (i as f32 * 0.059).cos()).collect(),
        );
        let mut o3 = vec![0.0f32; 37 * 19];
        let mut o4 = vec![0.0f32; 37 * 19];
        gemm_abt_serial_with(be, a.as_slice(), bt.as_slice(), &mut o3, 37, k, 19);
        gemm_abt_parallel_with(be, a.as_slice(), bt.as_slice(), &mut o4, 37, k, 19);
        assert_eq!(o3, o4);
    }

    #[test]
    fn blocked_gemm_matches_naive_triple_loop() {
        let (m, k, n) = (5, 200, 7);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.25)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.125)
            .collect();
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        let t = Tensor::from_vec(m, k, a).matmul(&Tensor::from_vec(k, n, b));
        for (x, y) in t.as_slice().iter().zip(&naive) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::row(&[3.0, 5.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn col_mean_averages_rows() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(a.col_mean().as_slice(), &[2.0, 4.0]);
        assert_eq!(a.col_sum().as_slice(), &[4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        // Multi-tile transpose.
        let big = Tensor::from_vec(70, 41, (0..70 * 41).map(|i| i as f32).collect());
        assert_eq!(big.transpose().transpose(), big);
        assert_eq!(big.transpose().get(3, 50), big.get(50, 3));
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn fast_exp_matches_std_exp() {
        for i in -8700..=8800 {
            let x = i as f32 * 0.01;
            let got = fast_exp(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-6, "x={x}: fast {got} vs std {want} (rel {rel})");
        }
        assert!(fast_exp(f32::NAN).is_nan());
        assert!(fast_exp(-1000.0) >= 0.0);
        assert!(fast_exp(1000.0).is_finite(), "saturates instead of inf");
    }

    #[test]
    fn degenerate_shapes() {
        let rowvec = Tensor::row(&[1.0, 2.0, 3.0]); // 1×3
        let colvec = Tensor::col(&[4.0, 5.0, 6.0]); // 3×1
        assert_eq!(rowvec.matmul(&colvec).item(), 32.0);
        let outer = colvec.matmul(&rowvec);
        assert_eq!(outer.shape(), (3, 3));
        assert_eq!(outer.get(2, 0), 6.0);
        let empty = Tensor::zeros(0, 4).matmul(&Tensor::zeros(4, 2));
        assert_eq!(empty.shape(), (0, 2));
        // Zero-column / zero-row outputs must not panic on any path.
        let wide = Tensor::zeros(8, 4);
        assert_eq!(wide.matmul_parallel(&Tensor::zeros(4, 0)).shape(), (8, 0));
        assert_eq!(
            Tensor::zeros(0, 4)
                .matmul_parallel(&Tensor::zeros(4, 2))
                .shape(),
            (0, 2)
        );
        // n == 1 uses the dot kernel on every path; serial and parallel
        // must still agree bitwise.
        let a = Tensor::from_vec(9, 7, (0..63).map(|i| (i as f32 * 0.3).sin()).collect());
        let b = Tensor::from_vec(7, 1, (0..7).map(|i| (i as f32 * 0.7).cos()).collect());
        assert_eq!(a.matmul(&b).as_slice(), a.matmul_serial(&b).as_slice());
        assert_eq!(
            a.matmul_serial(&b).as_slice(),
            a.matmul_parallel(&b).as_slice()
        );
    }
}
