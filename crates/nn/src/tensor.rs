//! Dense 2-D tensors of `f32`.
//!
//! Everything in the CirGPS model is expressible with rank-2 tensors
//! (node-feature matrices `N × d`, weight matrices, row vectors `1 × d`,
//! column vectors `n × 1`, and scalars `1 × 1`), so the tensor type is
//! deliberately restricted to two dimensions. This keeps shape handling
//! easy to audit and removes an entire class of broadcasting bugs.

use std::fmt;

/// A dense, row-major 2-D tensor of `f32`.
///
/// # Examples
///
/// ```
/// use cirgps_nn::Tensor;
///
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.shape(), (2, 2));
/// assert_eq!(t.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Tensor { rows: r, cols: c, data }
    }

    /// Creates a `1 × 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor { rows: 1, cols: 1, data: vec![v] }
    }

    /// Creates a `1 × n` row vector.
    pub fn row(v: &[f32]) -> Self {
        Tensor { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Creates an `n × 1` column vector.
    pub fn col(v: &[f32]) -> Self {
        Tensor { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// The `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self × rhs`.
    ///
    /// Uses an i-k-j loop order so the inner loop is a contiguous AXPY,
    /// which the compiler auto-vectorizes.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Matrix product `selfᵀ × rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &self.data[p * m..(p + 1) * m];
            let brow = &rhs.data[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor { rows: self.cols, cols: self.rows, data: out }
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise scaling by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Applies `f` to each element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += s * rhs` (AXPY).
    pub fn axpy(&mut self, s: f32, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Column-wise mean, returned as a `1 × cols` row vector.
    pub fn col_mean(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
        let inv = if self.rows == 0 { 0.0 } else { 1.0 / self.rows as f32 };
        for o in &mut out {
            *o *= inv;
        }
        Tensor { rows: 1, cols: self.cols, data: out }
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::row(&[3.0, 5.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn col_mean_averages_rows() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(a.col_mean().as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
