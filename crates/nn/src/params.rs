//! Parameter storage shared between the model, the autograd tape and the
//! optimizer.
//!
//! Layers register their weights in a [`ParamStore`] at construction time and
//! keep only [`ParamId`] handles. During a forward pass the tape reads the
//! store immutably (so minibatch samples can run on worker threads), each
//! worker accumulates gradients into its own [`GradStore`], the grad stores
//! are merged, and the optimizer finally mutates the store in place.

use std::io::{self, Read, Write};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;

use crate::quant::QuantMatrix;
use crate::tensor::Tensor;

/// Why loading a parameter blob into a [`ParamStore`] failed.
///
/// Every variant names what was expected and what the blob contained, so
/// a CLI can surface "which parameter, which shapes" instead of a bare
/// I/O error. Converts into [`std::io::Error`] (kind `InvalidData`,
/// except [`ParamLoadError::Io`] which keeps its kind) for callers on
/// `io::Result` signatures.
#[derive(Debug)]
pub enum ParamLoadError {
    /// Underlying reader failed (or the blob was truncated).
    Io(io::Error),
    /// The 4-byte legacy magic was not `CGPS`.
    BadMagic([u8; 4]),
    /// The blob holds a different number of parameter tensors.
    ParamCount {
        /// Tensors in the store being loaded into.
        expected: usize,
        /// Tensors recorded in the blob.
        found: usize,
    },
    /// The blob holds a different number of state buffers.
    BufferCount {
        /// Buffers in the store being loaded into.
        expected: usize,
        /// Buffers recorded in the blob.
        found: usize,
    },
    /// A record's name differs from the store's (same index).
    NameMismatch {
        /// Name in the store being loaded into.
        expected: String,
        /// Name recorded in the blob.
        found: String,
    },
    /// A record's tensor shape differs from the store's.
    ShapeMismatch {
        /// The parameter (or buffer) name.
        name: String,
        /// `(rows, cols)` in the store being loaded into.
        expected: (usize, usize),
        /// `(rows, cols)` recorded in the blob.
        found: (usize, usize),
    },
}

impl std::fmt::Display for ParamLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamLoadError::Io(e) => write!(f, "reading parameter blob: {e}"),
            ParamLoadError::BadMagic(m) => {
                write!(f, "bad checkpoint magic {m:?} (expected \"CGPS\")")
            }
            ParamLoadError::ParamCount { expected, found } => write!(
                f,
                "checkpoint has {found} params, model expects {expected} \
                 (architecture mismatch)"
            ),
            ParamLoadError::BufferCount { expected, found } => write!(
                f,
                "checkpoint has {found} buffers, model expects {expected} \
                 (architecture mismatch)"
            ),
            ParamLoadError::NameMismatch { expected, found } => write!(
                f,
                "param name mismatch: checkpoint has {found:?}, model expects {expected:?}"
            ),
            ParamLoadError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for param {name:?}: model expects {}x{}, checkpoint has {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for ParamLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParamLoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParamLoadError {
    fn from(e: io::Error) -> Self {
        ParamLoadError::Io(e)
    }
}

impl From<ParamLoadError> for io::Error {
    fn from(e: ParamLoadError) -> Self {
        match e {
            ParamLoadError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Handle to a trainable (or frozen) parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

/// Handle to a non-trainable state buffer (e.g. batch-norm running stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) usize);

/// Owns every parameter and state buffer of a model.
///
/// # Examples
///
/// ```
/// use cirgps_nn::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::ones(2, 2), true);
/// assert_eq!(store.get(w).shape(), (2, 2));
/// assert_eq!(store.num_trainable(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    params: Vec<Tensor>,
    names: Vec<String>,
    trainable: Vec<bool>,
    buffers: Vec<Mutex<Tensor>>,
    buffer_names: Vec<String>,
    /// Whether each parameter is a weight matrix the int8 path may
    /// quantize (set by the layer that registered it).
    quantizable: Vec<bool>,
    /// Per-parameter int8 snapshot, populated by
    /// [`ParamStore::quantize_int8`] or a checkpoint's `quant` section.
    quant: Vec<Option<QuantMatrix>>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    ///
    /// `trainable = false` freezes the parameter: the optimizer will skip it
    /// even if gradients are produced (used for Performer's fixed random
    /// projections and for head-only fine-tuning).
    pub fn register(&mut self, name: &str, init: Tensor, trainable: bool) -> ParamId {
        self.params.push(init);
        self.names.push(name.to_string());
        self.trainable.push(trainable);
        self.quantizable.push(false);
        self.quant.push(None);
        ParamId(self.params.len() - 1)
    }

    /// Registers a non-trainable state buffer, returning its handle.
    pub fn register_buffer(&mut self, name: &str, init: Tensor) -> BufferId {
        self.buffers.push(Mutex::new(init));
        self.buffer_names.push(name.to_string());
        BufferId(self.buffers.len() - 1)
    }

    /// Borrows a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Mutably borrows a parameter tensor (used by optimizers).
    ///
    /// Invalidates any int8 snapshot of the parameter: the quantized
    /// codes would otherwise go stale the moment an optimizer step
    /// mutates the f32 values.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.quant[id.0] = None;
        &mut self.params[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Whether the optimizer may update this parameter.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.trainable[id.0]
    }

    /// Freezes or unfreezes a parameter.
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.trainable[id.0] = trainable;
    }

    /// Freezes or unfreezes every parameter whose name starts with `prefix`.
    ///
    /// Returns the number of parameters affected. Used to implement the
    /// paper's head-only fine-tuning (freeze encoders + GPS layers).
    pub fn set_trainable_by_prefix(&mut self, prefix: &str, trainable: bool) -> usize {
        let mut n = 0;
        for i in 0..self.params.len() {
            if self.names[i].starts_with(prefix) {
                self.trainable[i] = trainable;
                n += 1;
            }
        }
        n
    }

    /// Marks a parameter as eligible for int8 weight quantization.
    ///
    /// Layers call this for weight matrices whose inference path goes
    /// through a dequantizing GEMM (currently [`crate::Linear`] weights,
    /// except the attention QKV projections, which are re-packed from
    /// raw f32 at inference time). Biases, embeddings and batch-norm
    /// parameters stay f32.
    pub fn set_quantizable(&mut self, id: ParamId, quantizable: bool) {
        self.quantizable[id.0] = quantizable;
        if !quantizable {
            self.quant[id.0] = None;
        }
    }

    /// Whether a parameter is eligible for int8 quantization.
    pub fn is_quantizable(&self, id: ParamId) -> bool {
        self.quantizable[id.0]
    }

    /// Quantizes every quantizable parameter to int8, returning how many
    /// tensors were snapshotted. Inference then routes those weights
    /// through the dequantizing GEMM kernels (see [`crate::QuantMatrix`]).
    pub fn quantize_int8(&mut self) -> usize {
        let mut n = 0;
        for i in 0..self.params.len() {
            if self.quantizable[i] {
                self.quant[i] = Some(QuantMatrix::quantize(&self.params[i]));
                n += 1;
            }
        }
        n
    }

    /// Drops every int8 snapshot, reverting inference to pure f32.
    pub fn clear_quant(&mut self) {
        for q in &mut self.quant {
            *q = None;
        }
    }

    /// The int8 snapshot of a parameter, if one exists.
    pub fn quant_of(&self, id: ParamId) -> Option<&QuantMatrix> {
        self.quant[id.0].as_ref()
    }

    /// Whether any parameter currently has an int8 snapshot.
    pub fn has_quant(&self) -> bool {
        self.quant.iter().any(Option::is_some)
    }

    /// Serializes the int8 snapshots as a `quant` section payload
    /// (sorted by parameter index, i.e. registration order).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_quant_blob<W: Write>(&self, w: W) -> io::Result<()> {
        let entries: Vec<(&str, &QuantMatrix)> = self
            .quant
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.as_ref().map(|q| (self.names[i].as_str(), q)))
            .collect();
        crate::quant::write_quant_blob(w, &entries)
    }

    /// Loads int8 snapshots from a `quant` section payload (the
    /// counterpart of [`ParamStore::save_quant_blob`]).
    ///
    /// Every entry must name a known parameter, match its shape, and be
    /// marked quantizable in this store — a checkpoint quantizing a
    /// weight this model re-packs from f32 would silently lose the
    /// quantization, so it is rejected instead.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on truncation, corruption, an
    /// unknown parameter name, or a shape/eligibility mismatch.
    pub fn load_quant_blob<R: Read>(&mut self, r: R) -> Result<usize, String> {
        let entries = crate::quant::read_quant_blob(r)?;
        let mut loaded = 0;
        for (name, q) in entries {
            let idx = self
                .names
                .iter()
                .position(|n| *n == name)
                .ok_or_else(|| format!("quant section names unknown parameter {name:?}"))?;
            let shape = self.params[idx].shape();
            if (q.rows(), q.cols()) != shape {
                return Err(format!(
                    "quant section shape mismatch for {name:?}: model expects {}x{}, \
                     section has {}x{}",
                    shape.0,
                    shape.1,
                    q.rows(),
                    q.cols()
                ));
            }
            if !self.quantizable[idx] {
                return Err(format!(
                    "quant section quantizes {name:?}, which this model cannot serve quantized"
                ));
            }
            self.quant[idx] = Some(q);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalar parameters (the paper's `#Param.`).
    pub fn num_trainable(&self) -> usize {
        self.params
            .iter()
            .zip(&self.trainable)
            .filter(|(_, &t)| t)
            .map(|(p, _)| p.len())
            .sum()
    }

    /// Total number of scalar parameters including frozen ones.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.len()).sum()
    }

    /// Reads a buffer by cloning it (buffers are behind a mutex so that
    /// training forward passes on worker threads can update running stats).
    pub fn buffer(&self, id: BufferId) -> Tensor {
        self.buffers[id.0].lock().clone()
    }

    /// Applies `f` to a buffer under its lock.
    pub fn update_buffer(&self, id: BufferId, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.buffers[id.0].lock());
    }

    /// Iterates over `(id, name, tensor)` for all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i), self.names[i].as_str(), p))
    }

    /// Serializes all parameters and buffers to a writer as a raw named
    /// blob (no magic, no version).
    ///
    /// This is the record layout embedded by the self-describing
    /// checkpoint container (see `circuitgps`'s checkpoint module and
    /// `docs/checkpoint-format.md`): a length-prefixed sequence of
    /// `(name, rows, cols, f32 data)` records for the parameters,
    /// followed by the same for the state buffers.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_blob<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u64(&mut w, self.params.len() as u64)?;
        for i in 0..self.params.len() {
            write_str(&mut w, &self.names[i])?;
            write_tensor(&mut w, &self.params[i])?;
        }
        write_u64(&mut w, self.buffers.len() as u64)?;
        for i in 0..self.buffers.len() {
            write_str(&mut w, &self.buffer_names[i])?;
            write_tensor(&mut w, &self.buffers[i].lock())?;
        }
        Ok(())
    }

    /// Loads parameter *values* from a raw named blob (the counterpart of
    /// [`ParamStore::save_blob`]) into this store.
    ///
    /// The store must already contain parameters with matching names and
    /// shapes (i.e. build the model first, then load the blob).
    ///
    /// # Errors
    ///
    /// Returns a named [`ParamLoadError`] on I/O failure or
    /// count/name/shape mismatch; shape mismatches carry the parameter
    /// name and both shapes.
    pub fn load_blob<R: Read>(&mut self, mut r: R) -> Result<(), ParamLoadError> {
        let np = read_u64(&mut r)? as usize;
        if np != self.params.len() {
            return Err(ParamLoadError::ParamCount {
                expected: self.params.len(),
                found: np,
            });
        }
        for i in 0..np {
            let name = read_str(&mut r)?;
            let t = read_tensor(&mut r)?;
            if name != self.names[i] {
                return Err(ParamLoadError::NameMismatch {
                    expected: self.names[i].clone(),
                    found: name,
                });
            }
            if t.shape() != self.params[i].shape() {
                return Err(ParamLoadError::ShapeMismatch {
                    name,
                    expected: self.params[i].shape(),
                    found: t.shape(),
                });
            }
            self.params[i] = t;
        }
        let nb = read_u64(&mut r)? as usize;
        if nb != self.buffers.len() {
            return Err(ParamLoadError::BufferCount {
                expected: self.buffers.len(),
                found: nb,
            });
        }
        for i in 0..nb {
            let name = read_str(&mut r)?;
            let t = read_tensor(&mut r)?;
            if name != self.buffer_names[i] {
                return Err(ParamLoadError::NameMismatch {
                    expected: self.buffer_names[i].clone(),
                    found: name,
                });
            }
            if t.shape() != self.buffers[i].lock().shape() {
                return Err(ParamLoadError::ShapeMismatch {
                    expected: self.buffers[i].lock().shape(),
                    found: t.shape(),
                    name,
                });
            }
            *self.buffers[i].lock() = t;
        }
        Ok(())
    }

    /// Serializes all parameters and buffers in the **legacy** raw-dump
    /// format: the 4-byte magic `CGPS` followed by the
    /// [`ParamStore::save_blob`] records. The format does not record the
    /// model configuration; prefer the self-describing checkpoint
    /// container (`CircuitGps::save_checkpoint` in `circuitgps`).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"CGPS")?;
        self.save_blob(&mut w)
    }

    /// Loads parameter *values* from a legacy-format reader (the
    /// counterpart of [`ParamStore::save`]) into this store.
    ///
    /// The store must already contain parameters with matching names and
    /// shapes (i.e. build the model first, then load the checkpoint).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, or name/shape
    /// mismatch (a [`ParamLoadError`] converted to `io::Error`, keeping
    /// the named message).
    pub fn load<R: Read>(&mut self, mut r: R) -> io::Result<()> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"CGPS" {
            return Err(ParamLoadError::BadMagic(magic).into());
        }
        self.load_blob(&mut r).map_err(Into::into)
    }
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let n = read_u64(r)? as usize;
    if n > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unreasonable string length",
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf-8"))
}

pub(crate) fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> io::Result<()> {
    write_u64(w, t.rows() as u64)?;
    write_u64(w, t.cols() as u64)?;
    for &v in t.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_tensor<R: Read>(r: &mut R) -> io::Result<Tensor> {
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    if rows.saturating_mul(cols) > 1 << 28 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unreasonable tensor size",
        ));
    }
    let mut data = vec![0.0f32; rows * cols];
    let mut b = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    Ok(Tensor::from_vec(rows, cols, data))
}

/// Per-thread gradient accumulator, indexed by [`ParamId`].
///
/// # Examples
///
/// ```
/// use cirgps_nn::{GradStore, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::zeros(1, 2), true);
/// let mut g1 = GradStore::new(&store);
/// let mut g2 = GradStore::new(&store);
/// g1.accumulate(w, &Tensor::row(&[1.0, 0.0]));
/// g2.accumulate(w, &Tensor::row(&[0.0, 2.0]));
/// g1.merge(g2);
/// assert_eq!(g1.get(w).unwrap().as_slice(), &[1.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct GradStore {
    grads: Vec<Option<Tensor>>,
}

impl GradStore {
    /// Creates a zeroed gradient store sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        GradStore {
            grads: (0..store.len()).map(|_| None).collect(),
        }
    }

    /// Adds `g` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        match &mut self.grads[id.0] {
            Some(acc) => acc.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Gradient for `id`, if any op touched it.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads[id.0].as_ref()
    }

    /// Merges another grad store (summing) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two stores were built for different param stores.
    pub fn merge(&mut self, mut other: GradStore) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "grad store size mismatch"
        );
        let taken = std::mem::take(&mut other.grads);
        for (a, b) in self.grads.iter_mut().zip(taken) {
            match (a.as_mut(), b) {
                (Some(x), Some(y)) => {
                    x.add_assign(&y);
                    crate::pool::put(y.into_vec());
                }
                (None, Some(y)) => *a = Some(y),
                _ => {}
            }
        }
    }

    /// Scales every gradient by `s` (used for minibatch averaging).
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            for v in g.as_mut_slice() {
                *v *= s;
            }
        }
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so the global norm does not exceed `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }
}

impl Drop for GradStore {
    /// Returns every gradient buffer to the thread-local pool so the next
    /// step's accumulations allocate nothing.
    fn drop(&mut self) {
        for g in self.grads.drain(..).flatten() {
            crate::pool::put(g.into_vec());
        }
    }
}

/// Xavier/Glorot-uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect(),
    )
}

/// Gaussian initialization with standard deviation `std`.
pub fn normal_init(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Tensor {
    // Box-Muller transform; rand 0.8's StdRng is deterministic per seed.
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn register_and_count() {
        let mut s = ParamStore::new();
        let a = s.register("enc.w", Tensor::zeros(3, 4), true);
        let b = s.register("head.w", Tensor::zeros(2, 2), true);
        assert_eq!(s.num_trainable(), 16);
        s.set_trainable(a, false);
        assert_eq!(s.num_trainable(), 4);
        assert_eq!(s.name(b), "head.w");
    }

    #[test]
    fn freeze_by_prefix() {
        let mut s = ParamStore::new();
        s.register("enc.w1", Tensor::zeros(1, 1), true);
        s.register("enc.w2", Tensor::zeros(1, 1), true);
        s.register("head.w", Tensor::zeros(1, 1), true);
        assert_eq!(s.set_trainable_by_prefix("enc.", false), 2);
        assert_eq!(s.num_trainable(), 1);
    }

    #[test]
    fn save_load_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = ParamStore::new();
        s.register("w", xavier_uniform(3, 5, &mut rng), true);
        let buf_id = s.register_buffer("bn.mean", Tensor::row(&[1.0, 2.0]));
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();

        let mut s2 = ParamStore::new();
        let w2 = s2.register("w", Tensor::zeros(3, 5), true);
        s2.register_buffer("bn.mean", Tensor::zeros(1, 2));
        s2.load(&bytes[..]).unwrap();
        assert_eq!(s2.get(w2), s.get(ParamId(0)));
        assert_eq!(s2.buffer(BufferId(0)), s.buffer(buf_id));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut s = ParamStore::new();
        s.register("w", Tensor::zeros(2, 2), true);
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();

        let mut s2 = ParamStore::new();
        s2.register("w", Tensor::zeros(3, 3), true);
        assert!(s2.load(&bytes[..]).is_err());
    }

    #[test]
    fn grad_clip() {
        let mut s = ParamStore::new();
        let w = s.register("w", Tensor::zeros(1, 2), true);
        let mut g = GradStore::new(&s);
        g.accumulate(w, &Tensor::row(&[3.0, 4.0]));
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn quantize_marks_and_optimizer_writes_invalidate() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = ParamStore::new();
        let w = s.register("w", xavier_uniform(4, 8, &mut rng), true);
        let b = s.register("b", xavier_uniform(1, 8, &mut rng), true);
        s.set_quantizable(w, true);
        assert_eq!(s.quantize_int8(), 1);
        assert!(s.quant_of(w).is_some());
        assert!(s.quant_of(b).is_none());
        // Mutating a parameter (the optimizer path) drops its snapshot.
        s.get_mut(w).as_mut_slice()[0] += 1.0;
        assert!(s.quant_of(w).is_none());
        assert!(!s.has_quant());
    }

    #[test]
    fn quant_blob_round_trips_and_validates() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = ParamStore::new();
        let w = s.register("w", xavier_uniform(4, 8, &mut rng), true);
        s.set_quantizable(w, true);
        s.quantize_int8();
        let mut bytes = Vec::new();
        s.save_quant_blob(&mut bytes).unwrap();

        let mut s2 = ParamStore::new();
        let w2 = s2.register("w", Tensor::zeros(4, 8), true);
        s2.set_quantizable(w2, true);
        assert_eq!(s2.load_quant_blob(&bytes[..]).unwrap(), 1);
        assert_eq!(s2.quant_of(w2), s.quant_of(w));

        // Unknown name, wrong shape and non-quantizable targets are all
        // named errors rather than silent drops.
        let mut s3 = ParamStore::new();
        s3.register("other", Tensor::zeros(4, 8), true);
        assert!(s3
            .load_quant_blob(&bytes[..])
            .unwrap_err()
            .contains("unknown"));
        let mut s4 = ParamStore::new();
        let w4 = s4.register("w", Tensor::zeros(2, 8), true);
        s4.set_quantizable(w4, true);
        assert!(s4
            .load_quant_blob(&bytes[..])
            .unwrap_err()
            .contains("shape"));
        let mut s5 = ParamStore::new();
        s5.register("w", Tensor::zeros(4, 8), true);
        assert!(s5
            .load_quant_blob(&bytes[..])
            .unwrap_err()
            .contains("cannot serve quantized"));
    }

    #[test]
    fn normal_init_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal_init(100, 100, 0.5, &mut rng);
        assert!(t.mean().abs() < 0.02);
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|v| (v - t.mean()).powi(2))
            .sum::<f32>()
            / t.len() as f32;
        assert!((var.sqrt() - 0.5).abs() < 0.05);
    }
}
