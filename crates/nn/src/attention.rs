//! Global attention mechanisms for the GPS layer: exact multi-head softmax
//! attention (the paper's "Transformer" rows) and FAVOR+ linear attention
//! (the "Performer" rows).

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::infer::{
    block_slice, block_slice_scaled, block_write, gather_rows, softmax_rows_scaled_fwd,
};
use crate::layers::Linear;
use crate::params::{normal_init, ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::{fast_exp, Tensor};

/// Exact multi-head softmax self-attention over all nodes of a (sub)graph.
///
/// Complexity is `O(N²·d)`; on the paper's 1-hop enclosing subgraphs
/// (hundreds of nodes) this is affordable, and Table III/VII quantify the
/// cost against the Performer variant.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Registers a new attention block with `heads` heads over width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            heads,
            head_dim: dim / heads,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attention over an `N × dim` node-feature matrix.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = tape.col_slice(q, off, self.head_dim);
            let kh = tape.col_slice(k, off, self.head_dim);
            let vh = tape.col_slice(v, off, self.head_dim);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            // The raw score matrix is single-use: scale it in place.
            let scores = tape.scale_inplace(scores, scale);
            let attn = tape.softmax_rows(scores);
            outs.push(tape.matmul(attn, vh));
        }
        let cat = tape.concat_cols(&outs);
        self.wo.forward(tape, cat)
    }

    /// Tape-free block-diagonal self-attention (eval mode).
    ///
    /// `x` is a concatenation of per-graph node blocks; `blocks` lists
    /// each graph's `(first_row, row_count)`. Attention is computed
    /// within each block only, so a batch of packed subgraphs produces
    /// bitwise-identical rows to running [`MultiHeadAttention::forward`]
    /// on each subgraph alone — while the `O(N²)` score cost drops from
    /// `(Σnᵢ)²` to `Σnᵢ²`.
    ///
    /// # Panics
    ///
    /// Panics if a block reaches outside `x`.
    pub fn infer_blocks(
        &self,
        params: &ParamStore,
        x: &Tensor,
        blocks: &[(usize, usize)],
    ) -> Tensor {
        let q = self.wq.infer(params, x);
        let k = self.wk.infer(params, x);
        let v = self.wv.infer(params, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut cat = Tensor::zeros(x.rows(), x.cols());
        for &(r0, len) in blocks {
            for h in 0..self.heads {
                let off = h * self.head_dim;
                let qh = block_slice(&q, r0, len, off, self.head_dim);
                let kh = block_slice(&k, r0, len, off, self.head_dim);
                let vh = block_slice(&v, r0, len, off, self.head_dim);
                let kt = kh.transpose();
                let scores = qh.matmul(&kt);
                // Scale fused into the softmax sweep (bitwise-equal:
                // scaling by a positive constant is monotone, so the row
                // max is the scaled max).
                let attn = softmax_rows_scaled_fwd(&scores, scale);
                let out = attn.matmul(&vh);
                block_write(&mut cat, &out, r0, off);
                for t in [qh, kh, vh, kt, scores, attn, out] {
                    t.recycle();
                }
            }
        }
        let y = self.wo.infer(params, &cat);
        for t in [q, k, v, cat] {
            t.recycle();
        }
        y
    }
}

/// FAVOR+ linear attention (Performer, Choromanski et al. 2021).
///
/// Approximates softmax attention with positive random features so the cost
/// is `O(N·m·d)` instead of `O(N²·d)`. The random projection is a frozen
/// parameter (not updated by the optimizer), matching the reference
/// implementation's default of non-redrawn features.
#[derive(Debug, Clone)]
pub struct PerformerAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    proj: ParamId,
    heads: usize,
    head_dim: usize,
    features: usize,
}

impl PerformerAttention {
    /// Registers a Performer block with `features` random features per head.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        features: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let head_dim = dim / heads;
        // One stacked projection for all heads: (heads*features) × head_dim,
        // rows are N(0, I) — frozen.
        let proj = store.register(
            &format!("{name}.proj"),
            normal_init(heads * features, head_dim, 1.0, rng),
            false,
        );
        PerformerAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            proj,
            heads,
            head_dim,
            features,
        }
    }

    /// Number of random features per head.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Transposed random projection `Ωᵀ` for one head (shared by the q and
    /// k feature maps, so it is materialized once per head).
    fn omega_t(&self, tape: &mut Tape, head: usize) -> Var {
        let omega_all = tape.param(self.proj);
        let rows: Vec<usize> = (head * self.features..(head + 1) * self.features).collect();
        let omega = tape.gather(omega_all, Arc::new(rows));
        tape.transpose(omega)
    }

    /// φ(x) = exp(x̂ Ωᵀ − ‖x̂‖²/2 ) / √m with x̂ = x / d^{1/4}.
    fn feature_map(&self, tape: &mut Tape, x: Var, omega_t: Var) -> Var {
        let scale = 1.0 / (self.head_dim as f32).powf(0.25);
        let xs = tape.scale(x, scale);
        let prod = tape.matmul(xs, omega_t); // N × m
        let sq = tape.mul(xs, xs);
        let half_norms = tape.row_sum(sq); // N × 1
        let half_norms = tape.scale(half_norms, 0.5);
        let shifted = tape.sub_colvec(prod, half_norms);
        let phi = tape.exp(shifted);
        // Stabilizer: add a tiny epsilon so the denominator never vanishes.
        // (Not in place: the exp output is read by its own backward.)
        let phi = tape.add_scalar(phi, 1e-6);
        tape.scale_inplace(phi, 1.0 / (self.features as f32).sqrt())
    }

    /// Linear-attention forward pass over an `N × dim` matrix.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let n = tape.shape(x).0;
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = tape.col_slice(q, off, self.head_dim);
            let kh = tape.col_slice(k, off, self.head_dim);
            let vh = tape.col_slice(v, off, self.head_dim);
            let omega_t = self.omega_t(tape, h);
            let phi_q = self.feature_map(tape, qh, omega_t); // N × m
            let phi_k = self.feature_map(tape, kh, omega_t); // N × m
            let phi_k_t = tape.transpose(phi_k); // m × N
            let kv = tape.matmul(phi_k_t, vh); // m × d_h
            let num = tape.matmul(phi_q, kv); // N × d_h
                                              // Denominator: φ(Q) (φ(K)ᵀ 1)
            let ones = tape.input(crate::tensor::Tensor::ones(n, 1));
            let k_sum = tape.matmul(phi_k_t, ones); // m × 1
            let den = tape.matmul(phi_q, k_sum); // N × 1
            outs.push(tape.div_colvec(num, den));
        }
        let cat = tape.concat_cols(&outs);
        self.wo.forward(tape, cat)
    }

    /// Tape-free φ(x̂) over a pre-scaled input `xs = x / d^{1/4}`;
    /// per-element arithmetic mirrors
    /// [`PerformerAttention::feature_map`] exactly, with the squared-norm
    /// and exp/stabilize/normalize passes fused.
    fn feature_map_infer(&self, xs: &Tensor, omega_t: &Tensor) -> Tensor {
        let mut prod = xs.matmul(omega_t);
        let inv = 1.0 / (self.features as f32).sqrt();
        let (n, m) = prod.shape();
        for r in 0..n {
            // ‖x̂‖²/2: squares summed left-to-right like the taped
            // mul + row_sum, then halved.
            let half: f32 = xs.row_slice(r).iter().map(|&v| v * v).sum::<f32>() * 0.5;
            for v in &mut prod.as_mut_slice()[r * m..(r + 1) * m] {
                *v = (fast_exp(*v - half) + 1e-6) * inv;
            }
        }
        prod
    }

    /// Tape-free block-diagonal linear attention (eval mode).
    ///
    /// Same contract as [`MultiHeadAttention::infer_blocks`]. The
    /// feature maps φ(q)/φ(k) are row-wise, so they run once over the
    /// whole packed batch per head; only the key aggregation `φ(K)ᵀ·V`,
    /// the per-block key sums and the denominators are per block,
    /// computed straight on contiguous row ranges of the head slices.
    /// Every kernel shares the taped path's arithmetic, so results are
    /// bitwise-equal to the per-graph taped forward.
    ///
    /// # Panics
    ///
    /// Panics if a block reaches outside `x`.
    pub fn infer_blocks(
        &self,
        params: &ParamStore,
        x: &Tensor,
        blocks: &[(usize, usize)],
    ) -> Tensor {
        use crate::tensor::{gemm, gemm_atb, laned_sum};

        let q = self.wq.infer(params, x);
        let k = self.wk.infer(params, x);
        let v = self.wv.infer(params, x);
        let n = x.rows();
        let (m, dh) = (self.features, self.head_dim);
        let mut cat = Tensor::zeros(n, x.cols());
        for h in 0..self.heads {
            // Ωᵀ once per head, shared by every block and both feature maps.
            let rows: Vec<usize> = (h * m..(h + 1) * m).collect();
            let omega = gather_rows(params.get(self.proj), &rows);
            let omega_t = omega.transpose();
            omega.recycle();
            let off = h * dh;
            // Head slices with the x̂ = x/d^{1/4} scale fused into the copy.
            let scale = 1.0 / (dh as f32).powf(0.25);
            let xs_q = block_slice_scaled(&q, 0, n, off, dh, scale);
            let xs_k = block_slice_scaled(&k, 0, n, off, dh, scale);
            let vh = block_slice(&v, 0, n, off, dh);
            let phi_q = self.feature_map_infer(&xs_q, &omega_t);
            let phi_k = self.feature_map_infer(&xs_k, &omega_t);
            for &(r0, len) in blocks {
                let pq = &phi_q.as_slice()[r0 * m..(r0 + len) * m];
                let pk = &phi_k.as_slice()[r0 * m..(r0 + len) * m];
                let vb = &vh.as_slice()[r0 * dh..(r0 + len) * dh];
                // kv = φ(K)ᵀ·V over this block's rows (the transposing
                // kernel reads the same values in the same order as the
                // taped transpose-then-matmul).
                let mut kv = crate::pool::take_zeroed(m * dh);
                gemm_atb(pk, vb, &mut kv, m, len, dh);
                let mut num = crate::pool::take_zeroed(len * dh);
                gemm(pq, &kv, &mut num, len, m, dh);
                // k_sum = φ(K)ᵀ·1: a laned column sum with exactly the
                // dot kernel's summation tree (see `laned_sum`).
                let mut k_sum = crate::pool::take_zeroed(m);
                let mut col = crate::pool::take_zeroed(len);
                for (f, ks) in k_sum.iter_mut().enumerate() {
                    for (r, c) in col.iter_mut().enumerate() {
                        *c = pk[r * m + f];
                    }
                    *ks = laned_sum(&col);
                }
                crate::pool::put(col);
                // den = φ(Q)·k_sum (the n == 1 dot path), then the
                // divide writes straight into the output block.
                let mut den = crate::pool::take_zeroed(len);
                gemm(pq, &k_sum, &mut den, len, m, 1);
                for r in 0..len {
                    let drow = &mut cat.row_slice_mut(r0 + r)[off..off + dh];
                    let s = den[r];
                    for (o, &nv) in drow.iter_mut().zip(&num[r * dh..(r + 1) * dh]) {
                        *o = nv / s;
                    }
                }
                for buf in [kv, num, k_sum, den] {
                    crate::pool::put(buf);
                }
            }
            for t in [xs_q, xs_k, vh, phi_q, phi_k, omega_t] {
                t.recycle();
            }
        }
        let y = self.wo.infer(params, &cat);
        for t in [q, k, v, cat] {
            t.recycle();
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use crate::tensor::Tensor;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn mha_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 16, 4, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(random_input(9, 16, 1));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (9, 16));
    }

    #[test]
    fn mha_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(5, 8, 2));
        let y = attn.forward(&mut tape, x);
        let loss = tape.mse_loss(y, &vec![0.1; 40]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5, "wq, wk, wv, wo.weight, wo.bias");
    }

    #[test]
    fn performer_output_shape_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(6, 8, 3));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (6, 8));
        let loss = tape.mse_loss(y, &vec![0.0; 48]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        // The frozen projection must NOT receive a gradient.
        let frozen: Vec<_> = store
            .iter()
            .filter(|(id, name, _)| name.ends_with(".proj") && grads.get(*id).is_some())
            .collect();
        assert!(frozen.is_empty(), "projection should be frozen");
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5);
    }

    #[test]
    fn performer_approximates_softmax_attention_loosely() {
        // With many random features, Performer output should correlate with
        // exact attention when using the SAME q/k/v projections. We test the
        // kernel property directly: φ(q)·φ(k) ≈ exp(q·k/√d) on average.
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 1, 512, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let q = tape.input(random_input(4, 8, 10));
        let k = tape.input(random_input(4, 8, 11));
        let omega_t = attn.omega_t(&mut tape, 0);
        let pq = attn.feature_map(&mut tape, q, omega_t);
        let pk = attn.feature_map(&mut tape, k, omega_t);
        let pk_t = tape.transpose(pk);
        let approx = tape.matmul(pq, pk_t);
        let qv = tape.value(q).clone();
        let kv = tape.value(k).clone();
        let d = 8.0f32;
        let mut max_rel = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                let dot: f32 = qv
                    .row_slice(i)
                    .iter()
                    .zip(kv.row_slice(j))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let exact = (dot / d.sqrt()).exp();
                let got = tape.value(approx).get(i, j);
                let rel = (got - exact).abs() / exact;
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 0.6, "kernel approximation too loose: {max_rel}");
    }
}
