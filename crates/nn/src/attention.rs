//! Global attention mechanisms for the GPS layer: exact multi-head softmax
//! attention (the paper's "Transformer" rows) and FAVOR+ linear attention
//! (the "Performer" rows).

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::layers::Linear;
use crate::params::{normal_init, ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Exact multi-head softmax self-attention over all nodes of a (sub)graph.
///
/// Complexity is `O(N²·d)`; on the paper's 1-hop enclosing subgraphs
/// (hundreds of nodes) this is affordable, and Table III/VII quantify the
/// cost against the Performer variant.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Registers a new attention block with `heads` heads over width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            heads,
            head_dim: dim / heads,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attention over an `N × dim` node-feature matrix.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = tape.col_slice(q, off, self.head_dim);
            let kh = tape.col_slice(k, off, self.head_dim);
            let vh = tape.col_slice(v, off, self.head_dim);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            // The raw score matrix is single-use: scale it in place.
            let scores = tape.scale_inplace(scores, scale);
            let attn = tape.softmax_rows(scores);
            outs.push(tape.matmul(attn, vh));
        }
        let cat = tape.concat_cols(&outs);
        self.wo.forward(tape, cat)
    }
}

/// FAVOR+ linear attention (Performer, Choromanski et al. 2021).
///
/// Approximates softmax attention with positive random features so the cost
/// is `O(N·m·d)` instead of `O(N²·d)`. The random projection is a frozen
/// parameter (not updated by the optimizer), matching the reference
/// implementation's default of non-redrawn features.
#[derive(Debug, Clone)]
pub struct PerformerAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    proj: ParamId,
    heads: usize,
    head_dim: usize,
    features: usize,
}

impl PerformerAttention {
    /// Registers a Performer block with `features` random features per head.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        features: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let head_dim = dim / heads;
        // One stacked projection for all heads: (heads*features) × head_dim,
        // rows are N(0, I) — frozen.
        let proj = store.register(
            &format!("{name}.proj"),
            normal_init(heads * features, head_dim, 1.0, rng),
            false,
        );
        PerformerAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            proj,
            heads,
            head_dim,
            features,
        }
    }

    /// Number of random features per head.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Transposed random projection `Ωᵀ` for one head (shared by the q and
    /// k feature maps, so it is materialized once per head).
    fn omega_t(&self, tape: &mut Tape, head: usize) -> Var {
        let omega_all = tape.param(self.proj);
        let rows: Vec<usize> = (head * self.features..(head + 1) * self.features).collect();
        let omega = tape.gather(omega_all, Arc::new(rows));
        tape.transpose(omega)
    }

    /// φ(x) = exp(x̂ Ωᵀ − ‖x̂‖²/2 ) / √m with x̂ = x / d^{1/4}.
    fn feature_map(&self, tape: &mut Tape, x: Var, omega_t: Var) -> Var {
        let scale = 1.0 / (self.head_dim as f32).powf(0.25);
        let xs = tape.scale(x, scale);
        let prod = tape.matmul(xs, omega_t); // N × m
        let sq = tape.mul(xs, xs);
        let half_norms = tape.row_sum(sq); // N × 1
        let half_norms = tape.scale(half_norms, 0.5);
        let shifted = tape.sub_colvec(prod, half_norms);
        let phi = tape.exp(shifted);
        // Stabilizer: add a tiny epsilon so the denominator never vanishes.
        // (Not in place: the exp output is read by its own backward.)
        let phi = tape.add_scalar(phi, 1e-6);
        tape.scale_inplace(phi, 1.0 / (self.features as f32).sqrt())
    }

    /// Linear-attention forward pass over an `N × dim` matrix.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let n = tape.shape(x).0;
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = tape.col_slice(q, off, self.head_dim);
            let kh = tape.col_slice(k, off, self.head_dim);
            let vh = tape.col_slice(v, off, self.head_dim);
            let omega_t = self.omega_t(tape, h);
            let phi_q = self.feature_map(tape, qh, omega_t); // N × m
            let phi_k = self.feature_map(tape, kh, omega_t); // N × m
            let phi_k_t = tape.transpose(phi_k); // m × N
            let kv = tape.matmul(phi_k_t, vh); // m × d_h
            let num = tape.matmul(phi_q, kv); // N × d_h
                                              // Denominator: φ(Q) (φ(K)ᵀ 1)
            let ones = tape.input(crate::tensor::Tensor::ones(n, 1));
            let k_sum = tape.matmul(phi_k_t, ones); // m × 1
            let den = tape.matmul(phi_q, k_sum); // N × 1
            outs.push(tape.div_colvec(num, den));
        }
        let cat = tape.concat_cols(&outs);
        self.wo.forward(tape, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use crate::tensor::Tensor;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn mha_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 16, 4, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(random_input(9, 16, 1));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (9, 16));
    }

    #[test]
    fn mha_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(5, 8, 2));
        let y = attn.forward(&mut tape, x);
        let loss = tape.mse_loss(y, &vec![0.1; 40]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5, "wq, wk, wv, wo.weight, wo.bias");
    }

    #[test]
    fn performer_output_shape_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(6, 8, 3));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (6, 8));
        let loss = tape.mse_loss(y, &vec![0.0; 48]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        // The frozen projection must NOT receive a gradient.
        let frozen: Vec<_> = store
            .iter()
            .filter(|(id, name, _)| name.ends_with(".proj") && grads.get(*id).is_some())
            .collect();
        assert!(frozen.is_empty(), "projection should be frozen");
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5);
    }

    #[test]
    fn performer_approximates_softmax_attention_loosely() {
        // With many random features, Performer output should correlate with
        // exact attention when using the SAME q/k/v projections. We test the
        // kernel property directly: φ(q)·φ(k) ≈ exp(q·k/√d) on average.
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 1, 512, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let q = tape.input(random_input(4, 8, 10));
        let k = tape.input(random_input(4, 8, 11));
        let omega_t = attn.omega_t(&mut tape, 0);
        let pq = attn.feature_map(&mut tape, q, omega_t);
        let pk = attn.feature_map(&mut tape, k, omega_t);
        let pk_t = tape.transpose(pk);
        let approx = tape.matmul(pq, pk_t);
        let qv = tape.value(q).clone();
        let kv = tape.value(k).clone();
        let d = 8.0f32;
        let mut max_rel = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                let dot: f32 = qv
                    .row_slice(i)
                    .iter()
                    .zip(kv.row_slice(j))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let exact = (dot / d.sqrt()).exp();
                let got = tape.value(approx).get(i, j);
                let rel = (got - exact).abs() / exact;
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 0.6, "kernel approximation too loose: {max_rel}");
    }
}
