//! Global attention mechanisms for the GPS layer: exact multi-head softmax
//! attention (the paper's "Transformer" rows) and FAVOR+ linear attention
//! (the "Performer" rows).

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::infer::{linear_fwd, mha_block_diag_fwd, performer_block_diag_fwd, qkv_pack_weights};
use crate::layers::Linear;
use crate::params::{normal_init, ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Exact multi-head softmax self-attention over all nodes of a (sub)graph.
///
/// Complexity is `O(N²·d)`; on the paper's 1-hop enclosing subgraphs
/// (hundreds of nodes) this is affordable, and Table III/VII quantify the
/// cost against the Performer variant.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Registers a new attention block with `heads` heads over width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let attn = MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            heads,
            head_dim: dim / heads,
        };
        // The inference path packs Q/K/V into one GEMM straight from the
        // raw f32 weights, so quantizing them would be silently ignored;
        // only the output projection stays quantizable.
        for w in [&attn.wq, &attn.wk, &attn.wv] {
            store.set_quantizable(w.weight_id(), false);
        }
        attn
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attention over an `N × dim` node-feature matrix (one block
    /// spanning every row; see [`MultiHeadAttention::forward_blocks`]).
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let n = tape.shape(x).0;
        self.forward_blocks(tape, x, Arc::new(vec![(0, n)]))
    }

    /// Taped block-diagonal self-attention over a packed batch.
    ///
    /// `x` concatenates per-graph node blocks; `blocks` lists each
    /// graph's `(first_row, row_count)`. Attention is computed within
    /// each block only — two fused tape ops (one packed QKV GEMM via
    /// [`Tape::linear_qkv`], one [`Tape::attn_block_diag`]) instead of
    /// ~10 ops per head, with hand-written backward kernels that never
    /// materialize a `(ΣN)²` matrix. The forward shares the
    /// [`MultiHeadAttention::infer_blocks`] kernels, so taped and
    /// tape-free results are bitwise-equal by construction.
    pub fn forward_blocks(&self, tape: &mut Tape, x: Var, blocks: Arc<Vec<(usize, usize)>>) -> Var {
        let wq = tape.param(self.wq.weight_id());
        let wk = tape.param(self.wk.weight_id());
        let wv = tape.param(self.wv.weight_id());
        let qkv = tape.linear_qkv(x, wq, wk, wv);
        let cat = tape.attn_block_diag(qkv, blocks, self.heads, self.head_dim);
        self.wo.forward(tape, cat)
    }

    /// Tape-free block-diagonal self-attention (eval mode).
    ///
    /// Same per-graph semantics as
    /// [`MultiHeadAttention::forward_blocks`] — a batch of packed
    /// subgraphs produces bitwise-identical rows to running the model on
    /// each subgraph alone, while the `O(N²)` score cost drops from
    /// `(Σnᵢ)²` to `Σnᵢ²`.
    ///
    /// # Panics
    ///
    /// Panics if a block reaches outside `x`.
    pub fn infer_blocks(
        &self,
        params: &ParamStore,
        x: &Tensor,
        blocks: &[(usize, usize)],
    ) -> Tensor {
        let wcat = qkv_pack_weights(
            params.get(self.wq.weight_id()),
            params.get(self.wk.weight_id()),
            params.get(self.wv.weight_id()),
        );
        let qkv = linear_fwd(x, &wcat, None, false);
        wcat.recycle();
        let (cat, _) = mha_block_diag_fwd(&qkv, blocks, self.heads, self.head_dim, false);
        qkv.recycle();
        let y = self.wo.infer(params, &cat);
        cat.recycle();
        y
    }
}

/// FAVOR+ linear attention (Performer, Choromanski et al. 2021).
///
/// Approximates softmax attention with positive random features so the cost
/// is `O(N·m·d)` instead of `O(N²·d)`. The random projection is a frozen
/// parameter (not updated by the optimizer), matching the reference
/// implementation's default of non-redrawn features.
#[derive(Debug, Clone)]
pub struct PerformerAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    proj: ParamId,
    heads: usize,
    head_dim: usize,
    features: usize,
}

impl PerformerAttention {
    /// Registers a Performer block with `features` random features per head.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        features: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let head_dim = dim / heads;
        // One stacked projection for all heads: (heads*features) × head_dim,
        // rows are N(0, I) — frozen.
        let proj = store.register(
            &format!("{name}.proj"),
            normal_init(heads * features, head_dim, 1.0, rng),
            false,
        );
        let attn = PerformerAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, true, rng),
            proj,
            heads,
            head_dim,
            features,
        };
        // Same as MultiHeadAttention: Q/K/V are packed from raw f32 at
        // inference time, so they must not carry int8 snapshots.
        for w in [&attn.wq, &attn.wk, &attn.wv] {
            store.set_quantizable(w.weight_id(), false);
        }
        attn
    }

    /// Number of random features per head.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Transposed random projection `Ωᵀ` for one head (shared by the q and
    /// k feature maps, so it is materialized once per head).
    ///
    /// Only the kernel-property test composes the feature map from
    /// generic ops these days — the model path runs the fused
    /// [`Tape::performer_block_diag`] op.
    #[cfg(test)]
    fn omega_t(&self, tape: &mut Tape, head: usize) -> Var {
        let omega_all = tape.param(self.proj);
        let rows: Vec<usize> = (head * self.features..(head + 1) * self.features).collect();
        let omega = tape.gather(omega_all, Arc::new(rows));
        tape.transpose(omega)
    }

    /// φ(x) = exp(x̂ Ωᵀ − ‖x̂‖²/2 ) / √m with x̂ = x / d^{1/4}.
    #[cfg(test)]
    fn feature_map(&self, tape: &mut Tape, x: Var, omega_t: Var) -> Var {
        let scale = 1.0 / (self.head_dim as f32).powf(0.25);
        let xs = tape.scale(x, scale);
        let prod = tape.matmul(xs, omega_t); // N × m
        let sq = tape.mul(xs, xs);
        let half_norms = tape.row_sum(sq); // N × 1
        let half_norms = tape.scale(half_norms, 0.5);
        let shifted = tape.sub_colvec(prod, half_norms);
        let phi = tape.exp(shifted);
        // Stabilizer: add a tiny epsilon so the denominator never vanishes.
        // (Not in place: the exp output is read by its own backward.)
        let phi = tape.add_scalar(phi, 1e-6);
        tape.scale_inplace(phi, 1.0 / (self.features as f32).sqrt())
    }

    /// Linear-attention forward pass over an `N × dim` matrix (one block
    /// spanning every row; see [`PerformerAttention::forward_blocks`]).
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let n = tape.shape(x).0;
        self.forward_blocks(tape, x, Arc::new(vec![(0, n)]))
    }

    /// Taped block-diagonal linear attention over a packed batch.
    ///
    /// Same per-graph semantics as
    /// [`MultiHeadAttention::forward_blocks`]: two fused tape ops (the
    /// packed QKV GEMM plus [`Tape::performer_block_diag`]) replace the
    /// long per-head chain of generic ops. The feature maps φ(q̂)/φ(k̂)
    /// run once over the whole pack per head; the key aggregation
    /// `φ(K)ᵀ·V` and the denominators are per block. The forward shares
    /// the [`PerformerAttention::infer_blocks`] kernels, so taped and
    /// tape-free results are bitwise-equal by construction.
    pub fn forward_blocks(&self, tape: &mut Tape, x: Var, blocks: Arc<Vec<(usize, usize)>>) -> Var {
        let wq = tape.param(self.wq.weight_id());
        let wk = tape.param(self.wk.weight_id());
        let wv = tape.param(self.wv.weight_id());
        let qkv = tape.linear_qkv(x, wq, wk, wv);
        let cat = tape.performer_block_diag(
            qkv,
            self.proj,
            blocks,
            self.heads,
            self.head_dim,
            self.features,
        );
        self.wo.forward(tape, cat)
    }

    /// Tape-free block-diagonal linear attention (eval mode).
    ///
    /// Same contract as [`MultiHeadAttention::infer_blocks`]; shares its
    /// kernels with the taped [`PerformerAttention::forward_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if a block reaches outside `x`.
    pub fn infer_blocks(
        &self,
        params: &ParamStore,
        x: &Tensor,
        blocks: &[(usize, usize)],
    ) -> Tensor {
        let wcat = qkv_pack_weights(
            params.get(self.wq.weight_id()),
            params.get(self.wk.weight_id()),
            params.get(self.wv.weight_id()),
        );
        let qkv = linear_fwd(x, &wcat, None, false);
        wcat.recycle();
        let (cat, _, _) = performer_block_diag_fwd(
            &qkv,
            params.get(self.proj),
            blocks,
            self.heads,
            self.head_dim,
            self.features,
            false,
        );
        qkv.recycle();
        let y = self.wo.infer(params, &cat);
        cat.recycle();
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use crate::tensor::Tensor;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    /// Finite-difference check of every trainable parameter's gradient
    /// against the fused backward, for a scalar loss built by `build`.
    fn fd_check_all_params<F>(store: &mut ParamStore, tol: f32, build: F)
    where
        F: Fn(&mut Tape) -> Var,
    {
        let analytic: Vec<(ParamId, String, Tensor)> = {
            let mut tape = Tape::new(store, false, 0);
            let loss = build(&mut tape);
            assert_eq!(tape.shape(loss), (1, 1), "loss must be scalar");
            let mut grads = GradStore::new(store);
            tape.backward(loss, &mut grads);
            store
                .iter()
                .filter(|(id, _, _)| store.is_trainable(*id))
                .map(|(id, name, _)| {
                    (
                        id,
                        name.to_string(),
                        grads
                            .get(id)
                            .unwrap_or_else(|| panic!("no grad for {name}"))
                            .clone(),
                    )
                })
                .collect()
        };
        let eps = 1e-3f32;
        for (id, name, ga) in &analytic {
            for idx in 0..store.get(*id).len() {
                let orig = store.get(*id).as_slice()[idx];
                store.get_mut(*id).as_mut_slice()[idx] = orig + eps;
                let lp = {
                    let mut t = Tape::new(store, false, 0);
                    let l = build(&mut t);
                    t.value(l).item()
                };
                store.get_mut(*id).as_mut_slice()[idx] = orig - eps;
                let lm = {
                    let mut t = Tape::new(store, false, 0);
                    let l = build(&mut t);
                    t.value(l).item()
                };
                store.get_mut(*id).as_mut_slice()[idx] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let a = ga.as_slice()[idx];
                assert!(
                    (a - numeric).abs() < tol * (1.0 + a.abs().max(numeric.abs())),
                    "{name}[{idx}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    /// Blocks of 1 / 3 / 17 rows (incl. a single-node block) over 21 rows.
    const GRADCHECK_BLOCKS: [(usize, usize); 3] = [(0, 1), (1, 3), (4, 17)];

    #[test]
    fn mha_block_diag_gradcheck() {
        // The input is itself a parameter so the finite-difference check
        // covers the fused-QKV `gx` path and the attention op's dQ/dK/dV
        // in addition to all projection weight gradients.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let xid = store.register("x", random_input(21, 8, 4), true);
        let targets: Vec<f32> = (0..21 * 8)
            .map(|i| ((i as f32) * 0.13).sin() * 0.3)
            .collect();
        fd_check_all_params(&mut store, 3e-2, |tape| {
            let x = tape.param(xid);
            let blocks = Arc::new(GRADCHECK_BLOCKS.to_vec());
            let y = attn.forward_blocks(tape, x, blocks);
            tape.mse_loss(y, &targets)
        });
    }

    #[test]
    fn performer_block_diag_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let xid = store.register("x", random_input(21, 8, 6), true);
        let targets: Vec<f32> = (0..21 * 8)
            .map(|i| ((i as f32) * 0.07).cos() * 0.3)
            .collect();
        fd_check_all_params(&mut store, 3e-2, |tape| {
            let x = tape.param(xid);
            let blocks = Arc::new(GRADCHECK_BLOCKS.to_vec());
            let y = attn.forward_blocks(tape, x, blocks);
            tape.mse_loss(y, &targets)
        });
    }

    #[test]
    fn block_diag_taped_equals_tape_free_multi_block() {
        // Bitwise: the taped fused forward and the tape-free engine share
        // their kernels, so a multi-block pack must agree bit for bit.
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let perf = PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let x = random_input(21, 8, 9);
        let blocks = GRADCHECK_BLOCKS.to_vec();

        let taped_mha = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = mha.forward_blocks(&mut tape, xv, Arc::new(blocks.clone()));
            tape.value(y).as_slice().to_vec()
        };
        assert_eq!(taped_mha, mha.infer_blocks(&store, &x, &blocks).as_slice());

        let taped_perf = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = perf.forward_blocks(&mut tape, xv, Arc::new(blocks.clone()));
            tape.value(y).as_slice().to_vec()
        };
        assert_eq!(
            taped_perf,
            perf.infer_blocks(&store, &x, &blocks).as_slice()
        );
    }

    #[test]
    fn block_diag_equals_per_block_solo_runs() {
        // Per-graph semantics: each block's rows must equal running the
        // same attention over that block alone (bitwise).
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 4, &mut rng);
        let x = random_input(12, 8, 12);
        let blocks = vec![(0usize, 5usize), (5, 1), (6, 6)];
        let packed = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = mha.forward_blocks(&mut tape, xv, Arc::new(blocks.clone()));
            tape.value(y).clone()
        };
        for &(r0, len) in &blocks {
            let solo = {
                let mut sub = crate::pool::take_capacity(len * 8);
                for r in r0..r0 + len {
                    sub.extend_from_slice(x.row_slice(r));
                }
                let sub = Tensor::from_vec(len, 8, sub);
                let mut tape = Tape::new(&store, false, 0);
                let xv = tape.input(sub);
                let y = mha.forward(&mut tape, xv);
                tape.value(y).clone()
            };
            for (r, row) in (r0..r0 + len).zip(0..len) {
                assert_eq!(
                    packed.row_slice(r),
                    solo.row_slice(row),
                    "block ({r0},{len}) row {row} diverged"
                );
            }
        }
    }

    #[test]
    fn mha_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 16, 4, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(random_input(9, 16, 1));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (9, 16));
    }

    #[test]
    fn mha_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(5, 8, 2));
        let y = attn.forward(&mut tape, x);
        let loss = tape.mse_loss(y, &vec![0.1; 40]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5, "wq, wk, wv, wo.weight, wo.bias");
    }

    #[test]
    fn performer_output_shape_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(random_input(6, 8, 3));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (6, 8));
        let loss = tape.mse_loss(y, &vec![0.0; 48]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        // The frozen projection must NOT receive a gradient.
        let frozen: Vec<_> = store
            .iter()
            .filter(|(id, name, _)| name.ends_with(".proj") && grads.get(*id).is_some())
            .collect();
        assert!(frozen.is_empty(), "projection should be frozen");
        let touched = store
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(touched, 5);
    }

    #[test]
    fn performer_approximates_softmax_attention_loosely() {
        // With many random features, Performer output should correlate with
        // exact attention when using the SAME q/k/v projections. We test the
        // kernel property directly: φ(q)·φ(k) ≈ exp(q·k/√d) on average.
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let attn = PerformerAttention::new(&mut store, "p", 8, 1, 512, &mut rng);
        let mut tape = Tape::new(&store, false, 0);
        let q = tape.input(random_input(4, 8, 10));
        let k = tape.input(random_input(4, 8, 11));
        let omega_t = attn.omega_t(&mut tape, 0);
        let pq = attn.feature_map(&mut tape, q, omega_t);
        let pk = attn.feature_map(&mut tape, k, omega_t);
        let pk_t = tape.transpose(pk);
        let approx = tape.matmul(pq, pk_t);
        let qv = tape.value(q).clone();
        let kv = tape.value(k).clone();
        let d = 8.0f32;
        let mut max_rel = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                let dot: f32 = qv
                    .row_slice(i)
                    .iter()
                    .zip(kv.row_slice(j))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let exact = (dot / d.sqrt()).exp();
                let got = tape.value(approx).get(i, j);
                let rel = (got - exact).abs() / exact;
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 0.6, "kernel approximation too loose: {max_rel}");
    }
}
