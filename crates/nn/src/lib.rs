//! # cirgps-nn
//!
//! A minimal, dependency-light neural-network library purpose-built for the
//! CirGPS reproduction: dense 2-D tensors, a per-sample reverse-mode
//! autograd [`Tape`], the layers the paper's model needs (linear, embedding,
//! batch norm, dropout, multi-head attention, Performer linear attention and
//! GatedGCN message passing), plus Adam/SGD optimizers and LR schedules.
//!
//! Every differentiable op has a finite-difference gradient check in the
//! test suite, and the tape borrows parameters immutably so minibatch
//! samples can be processed on worker threads and their [`GradStore`]s
//! merged. The numeric core is built for speed: tensor buffers come from
//! a thread-local recycling [`pool`], the matmul kernels are cache-blocked
//! and go multi-threaded above a size threshold, and the hot model path
//! runs on fused tape ops ([`Tape::linear`], [`Tape::linear_relu`]) and
//! allocation-free in-place variants (see `docs/perf.md`).
//!
//! ## Example
//!
//! ```
//! use cirgps_nn::{Adam, Activation, GradStore, Mlp, ParamStore, Tape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "mlp", &[2, 16, 1], Activation::Relu, 0.0, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..100 {
//!     let mut grads = GradStore::new(&store);
//!     {
//!         // Inner scope: the tape borrows the store and recycles its
//!         // buffers on drop, so it must die before the optimizer step.
//!         let mut tape = Tape::new(&store, true, 0);
//!         let x = tape.input(Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]));
//!         let y = mlp.forward(&mut tape, x);
//!         let loss = tape.mse_loss(y, &[0.0, 1.0]);
//!         tape.backward(loss, &mut grads);
//!     }
//!     opt.step(&mut store, &grads);
//! }
//! ```

#![deny(missing_docs)]

mod attention;
mod gatedgcn;
pub mod infer;
mod layers;
mod optim;
mod params;
pub mod pool;
pub mod quant;
pub mod simd;
mod tape;
mod tensor;

pub use attention::{MultiHeadAttention, PerformerAttention};
pub use gatedgcn::{EdgeIndex, GatedGcn};
pub use layers::{Activation, BatchNorm1d, Embedding, Linear, Mlp};
pub use optim::{Adam, CosineSchedule, Sgd};
pub use params::{
    normal_init, xavier_uniform, BufferId, GradStore, ParamId, ParamLoadError, ParamStore,
};
pub use pool::PoolStats;
pub use quant::QuantMatrix;
pub use simd::Backend;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
