//! Forward-only kernels shared by the autograd [`crate::Tape`] and the
//! tape-free inference path.
//!
//! The batched inference engine (`Linear::infer`, `Mlp::infer`,
//! `MultiHeadAttention::infer_blocks`, …) must produce **bitwise-equal**
//! outputs to the taped forward pass, so every non-trivial forward
//! computation lives here exactly once and both paths call it: the tape
//! records an op around the result, the inference path just keeps the
//! tensor. Simple elementwise ops (`add`, `mul`, `map`) go through the
//! same [`crate::Tensor`] methods on both paths.
//!
//! All outputs are pool-backed (see [`crate::pool`]); inference callers
//! recycle intermediates explicitly, so steady-state batched inference
//! performs no per-op heap allocation — and, unlike the tape, it keeps
//! no op log, no [`crate::Var`] table and no per-op shape bookkeeping.

use crate::pool;
use crate::simd::Backend;
use crate::tensor::{fast_exp, gemm, Tensor};

/// In-place `v = max(v, 0)` on an explicit backend (bitwise-equal to the
/// scalar sweep, including `-0.0 → +0.0` and `NaN → 0.0`).
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn relu_sweep_with(backend: Backend, xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::relu_sweep(xs) };
    }
    for v in xs.iter_mut() {
        *v = v.max(0.0);
    }
}

/// In-place `v = fast_exp(v)` on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn exp_sweep_with(backend: Backend, xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::exp_sweep(xs) };
    }
    for v in xs.iter_mut() {
        *v = fast_exp(*v);
    }
}

/// In-place `v = stable_sigmoid(v)` on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn sigmoid_sweep_with(backend: Backend, xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::sigmoid_sweep(xs) };
    }
    for v in xs.iter_mut() {
        *v = stable_sigmoid(*v);
    }
}

/// In-place `v *= s` on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn scale_sweep_with(backend: Backend, xs: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        return unsafe { crate::simd::avx2::scale_sweep(xs, s) };
    }
    for v in xs.iter_mut() {
        *v *= s;
    }
}

/// Numerically stable sigmoid, written select-style (no branch) so the
/// `map` loops over whole tensors auto-vectorize.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    // σ(-|x|) is always evaluated in the stable regime (argument ≤ 0);
    // σ(x) = 1 − σ(−x) recovers the positive side via a blend.
    let e = fast_exp(-x.abs());
    let s = e / (1.0 + e);
    if x >= 0.0 {
        1.0 - s
    } else {
        s
    }
}

/// Fused linear forward `x·W (+ b)` with optional ReLU: the bias (when
/// present) seeds the output before the GEMM accumulates onto it.
///
/// # Panics
///
/// Panics on shape mismatch (`b` must be `1×n` when given).
pub(crate) fn linear_fwd(xv: &Tensor, wv: &Tensor, bias: Option<&Tensor>, relu: bool) -> Tensor {
    let (m, k) = xv.shape();
    assert_eq!(
        k,
        wv.rows(),
        "linear shape mismatch: {:?} vs {:?}",
        xv.shape(),
        wv.shape()
    );
    let n = wv.cols();
    let mut out = pool::take_capacity(m * n);
    match bias {
        Some(bv) => {
            assert_eq!(bv.shape(), (1, n), "bias must be 1x{n}");
            for _ in 0..m {
                out.extend_from_slice(bv.as_slice());
            }
        }
        None => out.resize(m * n, 0.0),
    }
    gemm(xv.as_slice(), wv.as_slice(), &mut out, m, k, n);
    if relu {
        relu_sweep_with(Backend::active(), &mut out);
    }
    Tensor::from_vec(m, n, out)
}

/// [`linear_fwd`] against an int8-quantized weight: same bias seeding
/// and ReLU epilogue, with the GEMM routed through the dequantizing
/// kernels (see [`crate::quant`]).
///
/// # Panics
///
/// Panics on shape mismatch (`b` must be `1×n` when given).
pub(crate) fn linear_fwd_quant(
    xv: &Tensor,
    qw: &crate::quant::QuantMatrix,
    bias: Option<&Tensor>,
    relu: bool,
) -> Tensor {
    let (m, k) = xv.shape();
    assert_eq!(
        k,
        qw.rows(),
        "linear shape mismatch: {:?} vs {}x{} (quant)",
        xv.shape(),
        qw.rows(),
        qw.cols()
    );
    let n = qw.cols();
    let mut out = pool::take_capacity(m * n);
    match bias {
        Some(bv) => {
            assert_eq!(bv.shape(), (1, n), "bias must be 1x{n}");
            for _ in 0..m {
                out.extend_from_slice(bv.as_slice());
            }
        }
        None => out.resize(m * n, 0.0),
    }
    crate::quant::gemm_quant(xv.as_slice(), qw, &mut out, m);
    if relu {
        relu_sweep_with(Backend::active(), &mut out);
    }
    Tensor::from_vec(m, n, out)
}

/// Row-wise softmax (append-only writes, vectorizable exp pass).
///
/// The row max and the row sum stay scalar-sequential on every backend
/// so the reduction order — hence the result — is backend-invariant;
/// only the elementwise exp and normalize passes dispatch to SIMD.
pub(crate) fn softmax_rows_fwd(x: &Tensor) -> Tensor {
    softmax_rows_impl(Backend::active(), x, 1.0)
}

/// Row-wise softmax of `scale · x` on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn softmax_rows_impl(backend: Backend, x: &Tensor, scale: f32) -> Tensor {
    let (n, d) = x.shape();
    // Rows are written append-only (no zero-fill pass): for an
    // N×N attention matrix the saved memset is a full extra sweep.
    let mut out = pool::take_capacity(n * d);
    out.reserve(n * d);
    for r in 0..n {
        let row = x.row_slice(r);
        let max = row
            .iter()
            .map(|&v| v * scale)
            .fold(f32::NEG_INFINITY, f32::max);
        let start = out.len();
        // Separate exp/sum/scale passes: the exp pass carries no
        // cross-iteration dependency, so it vectorizes. (`v · 1.0`
        // is exact, so the unscaled softmax shares this path.)
        #[cfg(target_arch = "x86_64")]
        if backend != Backend::Scalar {
            // SAFETY: backend probe succeeded; `reserve` above guarantees
            // capacity for the `d` raw writes before `set_len`.
            unsafe {
                crate::simd::avx2::softmax_exp_pass(out.as_mut_ptr().add(start), row, scale, max);
                out.set_len(start + d);
            }
        } else {
            out.extend(row.iter().map(|&v| fast_exp(v * scale - max)));
        }
        #[cfg(not(target_arch = "x86_64"))]
        out.extend(row.iter().map(|&v| fast_exp(v * scale - max)));
        let sum: f32 = out[start..].iter().sum();
        let inv = 1.0 / sum.max(1e-30);
        scale_sweep_with(backend, &mut out[start..], inv);
    }
    Tensor::from_vec(n, d, out)
}

/// Broadcast of a `N×1` column over the columns of a `N×d` matrix.
///
/// # Panics
///
/// Panics unless `v` is a column with `a.rows()` rows.
pub fn colvec_zip(a: &Tensor, v: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(v.cols(), 1, "broadcast vector must be a column");
    assert_eq!(a.rows(), v.rows(), "broadcast row mismatch");
    let (n, d) = a.shape();
    let mut out = pool::take_capacity(n * d);
    for r in 0..n {
        let s = v.get(r, 0);
        out.extend(a.row_slice(r).iter().map(|&x| f(x, s)));
    }
    Tensor::from_vec(n, d, out)
}

/// Row gather: `out[i] = x[idx[i]]`.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Tensor {
    let d = x.cols();
    let mut out = pool::take_capacity(idx.len() * d);
    for &j in idx {
        out.extend_from_slice(x.row_slice(j));
    }
    Tensor::from_vec(idx.len(), d, out)
}

/// Row scatter-add into `n_out` rows: `out[idx[i]] += x[i]`.
///
/// # Panics
///
/// Panics if `idx.len()` differs from the row count of `x` or an index
/// is out of range.
pub fn scatter_add_rows(x: &Tensor, idx: &[usize], n_out: usize) -> Tensor {
    assert_eq!(x.rows(), idx.len(), "scatter_add index length mismatch");
    let d = x.cols();
    let mut out = Tensor::zeros(n_out, d);
    for (i, &j) in idx.iter().enumerate() {
        assert!(j < n_out, "scatter index {j} out of range {n_out}");
        for (o, &v) in out.row_slice_mut(j).iter_mut().zip(x.row_slice(i)) {
            *o += v;
        }
    }
    out
}

/// Column concatenation of same-row-count parts (one append pass).
///
/// # Panics
///
/// Panics if row counts differ or `parts` is empty.
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols needs at least one input");
    let n = parts[0].rows();
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    for p in parts {
        assert_eq!(p.rows(), n, "concat_cols row mismatch");
    }
    let mut out = pool::take_capacity(n * total);
    for r in 0..n {
        for p in parts {
            out.extend_from_slice(p.row_slice(r));
        }
    }
    Tensor::from_vec(n, total, out)
}

/// `N×1` sum over the columns of each row.
pub(crate) fn row_sum_fwd(x: &Tensor) -> Tensor {
    let mut data = pool::take_capacity(x.rows());
    data.extend((0..x.rows()).map(|r| x.row_slice(r).iter().sum::<f32>()));
    Tensor::from_vec(x.rows(), 1, data)
}

/// Copies the `rows × len` sub-block at `(r0, c0)` into a fresh tensor
/// (the inference analogue of a per-graph, per-head `col_slice`).
pub(crate) fn block_slice(x: &Tensor, r0: usize, rows: usize, c0: usize, len: usize) -> Tensor {
    assert!(
        r0 + rows <= x.rows() && c0 + len <= x.cols(),
        "block_slice out of bounds"
    );
    let mut out = pool::take_capacity(rows * len);
    for r in r0..r0 + rows {
        out.extend_from_slice(&x.row_slice(r)[c0..c0 + len]);
    }
    Tensor::from_vec(rows, len, out)
}

/// [`block_slice`] with a fused scalar multiply: `out = s · block`.
/// Bitwise-equal to slicing first and scaling after (copying is exact).
pub(crate) fn block_slice_scaled(
    x: &Tensor,
    r0: usize,
    rows: usize,
    c0: usize,
    len: usize,
    s: f32,
) -> Tensor {
    assert!(
        r0 + rows <= x.rows() && c0 + len <= x.cols(),
        "block_slice out of bounds"
    );
    let mut out = pool::take_capacity(rows * len);
    for r in r0..r0 + rows {
        out.extend(x.row_slice(r)[c0..c0 + len].iter().map(|&v| v * s));
    }
    Tensor::from_vec(rows, len, out)
}

/// Writes `block` (`rows × len`) into `dst` at `(r0, c0)`.
pub(crate) fn block_write(dst: &mut Tensor, block: &Tensor, r0: usize, c0: usize) {
    let (rows, len) = block.shape();
    assert!(
        r0 + rows <= dst.rows() && c0 + len <= dst.cols(),
        "block_write out of bounds"
    );
    for r in 0..rows {
        dst.row_slice_mut(r0 + r)[c0..c0 + len].copy_from_slice(block.row_slice(r));
    }
}

/// Fused edge assembly `ce[i] += dx[dst[i]] + ex[src[i]]`, consuming
/// `ce`'s buffer: one read-modify-write sweep instead of two gather
/// writes plus two elementwise adds. Per-element arithmetic matches
/// `(ce + dx_dst) + ex_src`.
pub(crate) fn add_gathered2_inplace(
    ce: Tensor,
    dx: &Tensor,
    dst: &[usize],
    ex: &Tensor,
    src: &[usize],
) -> Tensor {
    match ce.cols() {
        16 => add_gathered2_impl::<16>(ce, dx, dst, ex, src),
        32 => add_gathered2_impl::<32>(ce, dx, dst, ex, src),
        64 => add_gathered2_impl::<64>(ce, dx, dst, ex, src),
        _ => add_gathered2_impl::<0>(ce, dx, dst, ex, src),
    }
}

/// `D = 0` means "dynamic width"; a non-zero `D` gives LLVM a constant
/// trip count for the fully-unrolled row loop.
fn add_gathered2_impl<const D: usize>(
    mut ce: Tensor,
    dx: &Tensor,
    dst: &[usize],
    ex: &Tensor,
    src: &[usize],
) -> Tensor {
    let d = if D > 0 { D } else { ce.cols() };
    debug_assert_eq!(ce.rows(), dst.len());
    debug_assert_eq!(dst.len(), src.len());
    for (i, (&j_dst, &j_src)) in dst.iter().zip(src).enumerate() {
        let dxr = &dx.row_slice(j_dst)[..d];
        let exr = &ex.row_slice(j_src)[..d];
        let cer = &mut ce.as_mut_slice()[i * d..(i + 1) * d];
        for ((c, &a), &b) in cer.iter_mut().zip(dxr).zip(exr) {
            *c = (*c + a) + b;
        }
    }
    ce
}

/// Fused GatedGCN edge projection + neighbor assembly for the dense
/// layers: `ê = (e·Cᵂ + bias) + dx[dst] + ex[src]` with the gathered
/// adds applied in the GEMM's store epilogue, so the edge stream is
/// written exactly once. Falls back to the unfused pair for widths
/// without a fixed-N microkernel. Bitwise-equal to `linear_fwd` followed
/// by [`add_gathered2_inplace`].
///
/// # Panics
///
/// Panics on shape mismatch.
pub(crate) fn linear_add_gathered2(
    e: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    dx: &Tensor,
    dst: &[usize],
    ex: &Tensor,
    src: &[usize],
) -> Tensor {
    use crate::tensor::gemm_fixed_n_epilogue;

    let (m, k) = e.shape();
    assert_eq!(k, w.rows(), "linear shape mismatch");
    let n = w.cols();
    debug_assert_eq!(m, dst.len());
    // Same dispatch conditions as the gemm fast path; other shapes take
    // the two-pass route. SIMD backends always go two-pass: the vector
    // microkernel stores the plain GEMM result and the gathered adds run
    // as a second sweep — bitwise-equal to the fused store epilogue,
    // since the epilogue applies the same per-element ops to the same
    // final accumulator values.
    if Backend::active() != Backend::Scalar || k > 256 || !matches!(n, 8 | 16 | 32 | 64) {
        let ce = linear_fwd(e, w, bias, false);
        return add_gathered2_inplace(ce, dx, dst, ex, src);
    }
    let mut out = pool::take_capacity(m * n);
    match bias {
        Some(bv) => {
            assert_eq!(bv.shape(), (1, n), "bias must be 1x{n}");
            for _ in 0..m {
                out.extend_from_slice(bv.as_slice());
            }
        }
        None => out.resize(m * n, 0.0),
    }
    macro_rules! run {
        ($N:literal) => {
            gemm_fixed_n_epilogue::<$N, _>(
                e.as_slice(),
                w.as_slice(),
                &mut out,
                m,
                k,
                |i, acc: &mut [f32; $N]| {
                    let dxr = &dx.row_slice(dst[i])[..$N];
                    let exr = &ex.row_slice(src[i])[..$N];
                    for ((c, &a), &b) in acc.iter_mut().zip(dxr).zip(exr) {
                        *c = (*c + a) + b;
                    }
                },
            )
        };
    }
    match n {
        8 => run!(8),
        16 => run!(16),
        32 => run!(32),
        64 => run!(64),
        _ => unreachable!(),
    }
    Tensor::from_vec(m, n, out)
}

/// Fused first-layer edge assembly: `ê_i = table[code_i]·C-projected +
/// dx[dst_i] + ex[src_i]` written in a single pass, with `ce_table`
/// already holding the `C`-projection of the (few) edge-type rows.
/// Bitwise-equal to gathering `ce` per edge first and then running
/// [`add_gathered2_inplace`].
pub(crate) fn assemble_edge_hat_typed(
    ce_table: &Tensor,
    codes: &[usize],
    dx: &Tensor,
    dst: &[usize],
    ex: &Tensor,
    src: &[usize],
) -> Tensor {
    let d = ce_table.cols();
    debug_assert_eq!(codes.len(), dst.len());
    let mut out = pool::take_capacity(codes.len() * d);
    for ((&code, &j_dst), &j_src) in codes.iter().zip(dst).zip(src) {
        let cer = ce_table.row_slice(code);
        let dxr = dx.row_slice(j_dst);
        let exr = ex.row_slice(j_src);
        out.extend(
            cer.iter()
                .zip(dxr)
                .zip(exr)
                .map(|((&c, &a), &b)| (c + a) + b),
        );
    }
    Tensor::from_vec(codes.len(), d, out)
}

/// Fused gated aggregation of one GatedGCN layer: for each edge `i`,
/// `η = σ(ê_i)`, `num[dst[i]] += η ⊙ bx[src[i]]`, `den[dst[i]] += η`,
/// in one pass over the edge stream instead of sigmoid + gather +
/// multiply + two scatter-adds. Per-element values and the
/// per-destination edge-order accumulation are unchanged.
pub(crate) fn gated_scatter(
    e_hat: &Tensor,
    bx: &Tensor,
    src: &[usize],
    dst: &[usize],
    n_out: usize,
) -> (Tensor, Tensor) {
    gated_scatter_with(Backend::active(), e_hat, bx, src, dst, n_out)
}

/// [`gated_scatter`] on an explicit backend.
pub(crate) fn gated_scatter_with(
    backend: Backend,
    e_hat: &Tensor,
    bx: &Tensor,
    src: &[usize],
    dst: &[usize],
    n_out: usize,
) -> (Tensor, Tensor) {
    match e_hat.cols() {
        16 => gated_scatter_impl::<16>(backend, e_hat, bx, src, dst, n_out),
        32 => gated_scatter_impl::<32>(backend, e_hat, bx, src, dst, n_out),
        64 => gated_scatter_impl::<64>(backend, e_hat, bx, src, dst, n_out),
        _ => gated_scatter_impl::<0>(backend, e_hat, bx, src, dst, n_out),
    }
}

#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn gated_scatter_impl<const D: usize>(
    backend: Backend,
    e_hat: &Tensor,
    bx: &Tensor,
    src: &[usize],
    dst: &[usize],
    n_out: usize,
) -> (Tensor, Tensor) {
    let d = if D > 0 { D } else { e_hat.cols() };
    debug_assert_eq!(e_hat.rows(), src.len());
    let mut num = Tensor::zeros(n_out, d);
    let mut den = Tensor::zeros(n_out, d);
    // SIMD backends fuse sigmoid + multiply + both accumulates per edge
    // (no η staging buffer); per-element values and the per-destination
    // edge-order accumulation are identical to the scalar loop.
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        for (i, (&j_src, &j_dst)) in src.iter().zip(dst).enumerate() {
            let er = &e_hat.row_slice(i)[..d];
            let bxr = &bx.row_slice(j_src)[..d];
            let nr = &mut num.as_mut_slice()[j_dst * d..(j_dst + 1) * d];
            let dr = &mut den.as_mut_slice()[j_dst * d..(j_dst + 1) * d];
            // SAFETY: non-scalar backends imply a successful AVX2 probe.
            unsafe {
                crate::simd::avx2::gated_edge(er, bxr, nr, dr);
            }
        }
        return (num, den);
    }
    let mut eta = pool::take_zeroed(d);
    for (i, (&j_src, &j_dst)) in src.iter().zip(dst).enumerate() {
        let er = &e_hat.row_slice(i)[..d];
        for (g, &ev) in eta[..d].iter_mut().zip(er) {
            *g = stable_sigmoid(ev);
        }
        let bxr = &bx.row_slice(j_src)[..d];
        let nr = &mut num.as_mut_slice()[j_dst * d..(j_dst + 1) * d];
        for ((o, &g), &bv) in nr.iter_mut().zip(&eta[..d]).zip(bxr) {
            *o += g * bv;
        }
        let dr = &mut den.as_mut_slice()[j_dst * d..(j_dst + 1) * d];
        for (o, &g) in dr.iter_mut().zip(&eta[..d]) {
            *o += g;
        }
    }
    pool::put(eta);
    (num, den)
}

/// Fused `x̂ = ax + num / (den + ε)`, consuming `ax`'s buffer.
pub(crate) fn add_div_inplace(ax: Tensor, num: &Tensor, den: &Tensor, eps: f32) -> Tensor {
    add_div_inplace_with(Backend::active(), ax, num, den, eps)
}

/// [`add_div_inplace`] on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn add_div_inplace_with(
    backend: Backend,
    mut ax: Tensor,
    num: &Tensor,
    den: &Tensor,
    eps: f32,
) -> Tensor {
    debug_assert_eq!(ax.shape(), num.shape());
    debug_assert_eq!(ax.shape(), den.shape());
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        // SAFETY: non-scalar backends imply a successful AVX2+FMA probe.
        unsafe {
            crate::simd::avx2::add_div_sweep(
                ax.as_mut_slice(),
                num.as_slice(),
                den.as_slice(),
                eps,
            );
        }
        return ax;
    }
    for ((a, &n), &d) in ax
        .as_mut_slice()
        .iter_mut()
        .zip(num.as_slice())
        .zip(den.as_slice())
    {
        *a += n / (d + eps);
    }
    ax
}

/// Fused eval-mode `max(BN(x), 0) + residual`, one output sweep. The
/// per-element sequence is the tape's `((x − μ)·invstd)·γ + β`, then
/// ReLU, then the residual add; zipped slice iteration keeps the sweep
/// vectorizable (indexed column access compiles scalar).
pub(crate) fn batch_norm_eval_relu_add_fwd(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
    residual: &Tensor,
) -> Tensor {
    batch_norm_eval_relu_add_with(Backend::active(), x, gamma, beta, eps, mean, var, residual)
}

/// [`batch_norm_eval_relu_add_fwd`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn batch_norm_eval_relu_add_with(
    backend: Backend,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
    residual: &Tensor,
) -> Tensor {
    let (n, d) = x.shape();
    debug_assert_eq!(residual.shape(), (n, d));
    let invstd = var.map(|v| 1.0 / (v + eps).sqrt());
    let mut out = pool::take_capacity(n * d);
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        out.reserve(n * d);
        for r in 0..n {
            let start = out.len();
            // SAFETY: backend probe succeeded; `reserve` guarantees
            // capacity for the `d` raw writes before `set_len`.
            unsafe {
                crate::simd::avx2::bn_row(
                    out.as_mut_ptr().add(start),
                    x.row_slice(r),
                    Some(residual.row_slice(r)),
                    true,
                    mean.as_slice(),
                    invstd.as_slice(),
                    gamma.as_slice(),
                    beta.as_slice(),
                    d,
                );
                out.set_len(start + d);
            }
        }
        invstd.recycle();
        return Tensor::from_vec(n, d, out);
    }
    for r in 0..n {
        out.extend(
            x.row_slice(r)
                .iter()
                .zip(residual.row_slice(r))
                .zip(mean.as_slice())
                .zip(invstd.as_slice())
                .zip(gamma.as_slice())
                .zip(beta.as_slice())
                .map(|(((((&xv, &rv), &mu), &is), &g), &b)| {
                    (((xv - mu) * is) * g + b).max(0.0) + rv
                }),
        );
    }
    invstd.recycle();
    Tensor::from_vec(n, d, out)
}

/// Fused eval-mode `BN(a + b)`, one output sweep (the GPS layer's
/// residual-then-batch-norm tail).
pub(crate) fn batch_norm_eval_of_sum_fwd(
    a: &Tensor,
    b: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
) -> Tensor {
    batch_norm_eval_of_sum_with(Backend::active(), a, b, gamma, beta, eps, mean, var)
}

/// [`batch_norm_eval_of_sum_fwd`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn batch_norm_eval_of_sum_with(
    backend: Backend,
    a: &Tensor,
    b: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
) -> Tensor {
    let (n, d) = a.shape();
    debug_assert_eq!(b.shape(), (n, d));
    let invstd = var.map(|v| 1.0 / (v + eps).sqrt());
    let mut out = pool::take_capacity(n * d);
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        out.reserve(n * d);
        for r in 0..n {
            let start = out.len();
            // SAFETY: backend probe succeeded; `reserve` guarantees
            // capacity for the `d` raw writes before `set_len`.
            unsafe {
                crate::simd::avx2::bn_of_sum_row(
                    out.as_mut_ptr().add(start),
                    a.row_slice(r),
                    b.row_slice(r),
                    mean.as_slice(),
                    invstd.as_slice(),
                    gamma.as_slice(),
                    beta.as_slice(),
                    d,
                );
                out.set_len(start + d);
            }
        }
        invstd.recycle();
        return Tensor::from_vec(n, d, out);
    }
    for r in 0..n {
        out.extend(
            a.row_slice(r)
                .iter()
                .zip(b.row_slice(r))
                .zip(mean.as_slice())
                .zip(invstd.as_slice())
                .zip(gamma.as_slice())
                .zip(beta.as_slice())
                .map(|(((((&av, &bv), &mu), &is), &g), &bb)| (((av + bv) - mu) * is) * g + bb),
        );
    }
    invstd.recycle();
    Tensor::from_vec(n, d, out)
}

/// Row-wise softmax of `scale · x` without materializing the scaled
/// matrix: each element is scaled identically to a separate scale pass
/// (`round(s·x)`), and scaling by a positive constant is monotonic, so
/// the row max is the scaled max — bitwise-equal to scale-then-softmax.
pub(crate) fn softmax_rows_scaled_fwd(x: &Tensor, scale: f32) -> Tensor {
    debug_assert!(scale > 0.0);
    softmax_rows_impl(Backend::active(), x, scale)
}

/// Packs the three attention projection weights `[Wq | Wk | Wv]`
/// (each `d_in × d_out`, row-major) into one `d_in × 3·d_out` matrix so
/// Q, K and V come out of a single GEMM.
///
/// Per output element the GEMM accumulates over `k` in the same order
/// regardless of the output width, so `x · pack(Wq, Wk, Wv)` is
/// bitwise-equal to the three separate `x·W` products column for column.
///
/// # Panics
///
/// Panics if the three weights disagree in shape.
pub(crate) fn qkv_pack_weights(wq: &Tensor, wk: &Tensor, wv: &Tensor) -> Tensor {
    let (d_in, d_out) = wq.shape();
    assert_eq!(wk.shape(), (d_in, d_out), "qkv weight shape mismatch");
    assert_eq!(wv.shape(), (d_in, d_out), "qkv weight shape mismatch");
    let mut out = pool::take_capacity(d_in * 3 * d_out);
    for r in 0..d_in {
        out.extend_from_slice(wq.row_slice(r));
        out.extend_from_slice(wk.row_slice(r));
        out.extend_from_slice(wv.row_slice(r));
    }
    Tensor::from_vec(d_in, 3 * d_out, out)
}

/// Fused block-diagonal multi-head softmax attention forward.
///
/// `qkv` is the packed `N × 3·dim` projection (`[Q | K | V]` with
/// `dim = heads · head_dim`); `blocks` lists each graph's
/// `(first_row, row_count)` — attention runs within each block only, so
/// a packed batch pays `Σnᵢ²` score cost instead of `(Σnᵢ)²` and no
/// `(ΣN)²` matrix is ever materialized. Returns the concatenated
/// per-head outputs (`N × dim`) plus, when `save` is set, the per-block
/// per-head attention probability matrices (ordered block-major:
/// `saved[b · heads + h]`) that the fused backward needs.
///
/// Shared by the taped op ([`crate::Tape::attn_block_diag`]) and the
/// tape-free [`crate::MultiHeadAttention::infer_blocks`], so both paths
/// are bitwise-equal by construction.
///
/// # Panics
///
/// Panics if `qkv` is not `N × 3·heads·head_dim` or a block reaches
/// outside it.
pub(crate) fn mha_block_diag_fwd(
    qkv: &Tensor,
    blocks: &[(usize, usize)],
    heads: usize,
    head_dim: usize,
    save: bool,
) -> (Tensor, Vec<Tensor>) {
    let dim = heads * head_dim;
    assert_eq!(qkv.cols(), 3 * dim, "qkv width must be 3·heads·head_dim");
    let n = qkv.rows();
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut cat = Tensor::zeros(n, dim);
    let mut saved = Vec::with_capacity(if save { blocks.len() * heads } else { 0 });
    for &(r0, len) in blocks {
        assert!(r0 + len <= n, "attention block out of range");
        for h in 0..heads {
            let off = h * head_dim;
            let qh = block_slice(qkv, r0, len, off, head_dim);
            let kh = block_slice(qkv, r0, len, dim + off, head_dim);
            let vh = block_slice(qkv, r0, len, 2 * dim + off, head_dim);
            let kt = kh.transpose();
            let scores = qh.matmul(&kt);
            // Scale fused into the softmax sweep (bitwise-equal: scaling
            // by a positive constant is monotone, so the row max is the
            // scaled max).
            let attn = softmax_rows_scaled_fwd(&scores, scale);
            let out = attn.matmul(&vh);
            block_write(&mut cat, &out, r0, off);
            for t in [qh, kh, vh, kt, scores, out] {
                t.recycle();
            }
            if save {
                saved.push(attn);
            } else {
                attn.recycle();
            }
        }
    }
    (cat, saved)
}

/// Performer feature map φ(x̂) over a pre-scaled input `xs = x / d^{1/4}`:
/// `φ = (exp(x̂ Ωᵀ − ‖x̂‖²/2) + ε) / √m`, with the squared-norm and
/// exp/stabilize/normalize passes fused. Per-element arithmetic matches
/// the unfused exp → +ε → ·(1/√m) sequence exactly (no reassociation),
/// and the squares are summed left-to-right like a `mul` + `row_sum`.
pub(crate) fn performer_feature_map_fwd(xs: &Tensor, omega_t: &Tensor, features: usize) -> Tensor {
    performer_feature_map_with(Backend::active(), xs, omega_t, features)
}

/// [`performer_feature_map_fwd`] on an explicit backend.
pub(crate) fn performer_feature_map_with(
    backend: Backend,
    xs: &Tensor,
    omega_t: &Tensor,
    features: usize,
) -> Tensor {
    let (rows, k) = xs.shape();
    let cols = omega_t.cols();
    let mut buf = pool::take_zeroed(rows * cols);
    crate::tensor::gemm_with(
        backend,
        xs.as_slice(),
        omega_t.as_slice(),
        &mut buf,
        rows,
        k,
        cols,
    );
    let mut prod = Tensor::from_vec(rows, cols, buf);
    let inv = 1.0 / (features as f32).sqrt();
    let (n, m) = prod.shape();
    for r in 0..n {
        // The squared-norm reduction stays scalar-sequential on every
        // backend (order-sensitive); only the elementwise sweep
        // vectorizes.
        let half: f32 = xs.row_slice(r).iter().map(|&v| v * v).sum::<f32>() * 0.5;
        let row = &mut prod.as_mut_slice()[r * m..(r + 1) * m];
        #[cfg(target_arch = "x86_64")]
        if backend != Backend::Scalar {
            // SAFETY: non-scalar backends imply a successful AVX2 probe.
            unsafe {
                crate::simd::avx2::feature_map_sweep(row, half, inv);
            }
            continue;
        }
        let _ = backend;
        for v in row.iter_mut() {
            *v = (fast_exp(*v - half) + 1e-6) * inv;
        }
    }
    prod
}

/// Fused block-diagonal Performer (FAVOR+) attention forward.
///
/// Same contract as [`mha_block_diag_fwd`], with `proj` the stacked
/// frozen random projection (`heads·features × head_dim`). The row-wise
/// feature maps φ(q̂)/φ(k̂) run once over the whole packed batch per
/// head; only the key aggregation `φ(K)ᵀ·V`, the per-block key sums and
/// the denominators are per block. When `save` is set the per-head
/// feature maps (`N × features`, needed by the fused backward) are
/// returned as `(φ_q, φ_k)` vectors indexed by head.
///
/// # Panics
///
/// Panics on shape mismatch or a block outside `qkv`.
pub(crate) fn performer_block_diag_fwd(
    qkv: &Tensor,
    proj: &Tensor,
    blocks: &[(usize, usize)],
    heads: usize,
    head_dim: usize,
    features: usize,
    save: bool,
) -> (Tensor, Vec<Tensor>, Vec<Tensor>) {
    use crate::tensor::{gemm, gemm_atb, laned_sum};

    let dim = heads * head_dim;
    let (m, dh) = (features, head_dim);
    assert_eq!(qkv.cols(), 3 * dim, "qkv width must be 3·heads·head_dim");
    assert_eq!(proj.shape(), (heads * m, dh), "projection shape mismatch");
    let n = qkv.rows();
    let mut cat = Tensor::zeros(n, dim);
    let mut saved_q = Vec::with_capacity(if save { heads } else { 0 });
    let mut saved_k = Vec::with_capacity(if save { heads } else { 0 });
    for h in 0..heads {
        // Ωᵀ once per head, shared by every block and both feature maps.
        let rows: Vec<usize> = (h * m..(h + 1) * m).collect();
        let omega = gather_rows(proj, &rows);
        let omega_t = omega.transpose();
        omega.recycle();
        let off = h * dh;
        // Head slices with the x̂ = x/d^{1/4} scale fused into the copy.
        let scale = 1.0 / (dh as f32).powf(0.25);
        let xs_q = block_slice_scaled(qkv, 0, n, off, dh, scale);
        let xs_k = block_slice_scaled(qkv, 0, n, dim + off, dh, scale);
        let vh = block_slice(qkv, 0, n, 2 * dim + off, dh);
        let phi_q = performer_feature_map_fwd(&xs_q, &omega_t, m);
        let phi_k = performer_feature_map_fwd(&xs_k, &omega_t, m);
        for &(r0, len) in blocks {
            assert!(r0 + len <= n, "attention block out of range");
            let pq = &phi_q.as_slice()[r0 * m..(r0 + len) * m];
            let pk = &phi_k.as_slice()[r0 * m..(r0 + len) * m];
            let vb = &vh.as_slice()[r0 * dh..(r0 + len) * dh];
            // kv = φ(K)ᵀ·V over this block's rows (the transposing
            // kernel reads the same values in the same order as the
            // taped transpose-then-matmul).
            let mut kv = pool::take_zeroed(m * dh);
            gemm_atb(pk, vb, &mut kv, m, len, dh);
            let mut num = pool::take_zeroed(len * dh);
            gemm(pq, &kv, &mut num, len, m, dh);
            // k_sum = φ(K)ᵀ·1: a laned column sum with exactly the dot
            // kernel's summation tree (see `laned_sum`).
            let mut k_sum = pool::take_zeroed(m);
            let mut col = pool::take_zeroed(len);
            for (f, ks) in k_sum.iter_mut().enumerate() {
                for (r, c) in col.iter_mut().enumerate() {
                    *c = pk[r * m + f];
                }
                *ks = laned_sum(&col);
            }
            pool::put(col);
            // den = φ(Q)·k_sum (the n == 1 dot path), then the divide
            // writes straight into the output block.
            let mut den = pool::take_zeroed(len);
            gemm(pq, &k_sum, &mut den, len, m, 1);
            for r in 0..len {
                let drow = &mut cat.row_slice_mut(r0 + r)[off..off + dh];
                let s = den[r];
                for (o, &nv) in drow.iter_mut().zip(&num[r * dh..(r + 1) * dh]) {
                    *o = nv / s;
                }
            }
            for buf in [kv, num, k_sum, den] {
                pool::put(buf);
            }
        }
        for t in [xs_q, xs_k, vh, omega_t] {
            t.recycle();
        }
        if save {
            saved_q.push(phi_q);
            saved_k.push(phi_k);
        } else {
            phi_q.recycle();
            phi_k.recycle();
        }
    }
    (cat, saved_q, saved_k)
}

/// Eval-mode batch norm: normalizes by the given (running) statistics,
/// then applies the affine transform. Matches the tape's eval-mode
/// `batch_norm` arithmetic element for element: the inverse standard
/// deviation is materialized per column first, then each element runs
/// `((x − μ)·invstd)·γ + β`.
pub(crate) fn batch_norm_eval_fwd(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
) -> Tensor {
    batch_norm_eval_with(Backend::active(), x, gamma, beta, eps, mean, var)
}

/// [`batch_norm_eval_fwd`] on an explicit backend.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(crate) fn batch_norm_eval_with(
    backend: Backend,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    mean: &Tensor,
    var: &Tensor,
) -> Tensor {
    let (n, d) = x.shape();
    let invstd = var.map(|v| 1.0 / (v + eps).sqrt());
    let mut out = pool::take_capacity(n * d);
    #[cfg(target_arch = "x86_64")]
    if backend != Backend::Scalar {
        out.reserve(n * d);
        for r in 0..n {
            let start = out.len();
            // SAFETY: backend probe succeeded; `reserve` guarantees
            // capacity for the `d` raw writes before `set_len`.
            unsafe {
                crate::simd::avx2::bn_row(
                    out.as_mut_ptr().add(start),
                    x.row_slice(r),
                    None,
                    false,
                    mean.as_slice(),
                    invstd.as_slice(),
                    gamma.as_slice(),
                    beta.as_slice(),
                    d,
                );
                out.set_len(start + d);
            }
        }
        invstd.recycle();
        return Tensor::from_vec(n, d, out);
    }
    for r in 0..n {
        out.extend(
            x.row_slice(r)
                .iter()
                .zip(mean.as_slice())
                .zip(invstd.as_slice())
                .zip(gamma.as_slice())
                .zip(beta.as_slice())
                .map(|((((&xv, &mu), &is), &g), &b)| ((xv - mu) * is) * g + b),
        );
    }
    invstd.recycle();
    Tensor::from_vec(n, d, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_slice_and_write_round_trip() {
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let b = block_slice(&x, 1, 2, 1, 2);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
        let mut dst = Tensor::zeros(4, 3);
        block_write(&mut dst, &b, 1, 1);
        assert_eq!(dst.get(1, 1), 4.0);
        assert_eq!(dst.get(2, 2), 8.0);
        assert_eq!(dst.get(0, 0), 0.0);
    }

    #[test]
    fn scatter_gather_round_trip() {
        let x = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = gather_rows(&x, &[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = scatter_add_rows(&g, &[0, 0, 1], 2);
        assert_eq!(s.as_slice(), &[6.0, 8.0, 5.0, 6.0]);
    }

    #[test]
    fn batch_norm_eval_identity_stats() {
        // mean 0 / var 1 / γ 1 / β 0 ⇒ output ≈ input (up to the ε term).
        let x = Tensor::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let out = batch_norm_eval_fwd(
            &x,
            &Tensor::ones(1, 2),
            &Tensor::zeros(1, 2),
            1e-5,
            &Tensor::zeros(1, 2),
            &Tensor::ones(1, 2),
        );
        for (o, i) in out.as_slice().iter().zip(x.as_slice()) {
            assert!((o - i).abs() < 1e-4, "{o} vs {i}");
        }
    }
}

/// Re-export of the vectorizable exponential for probes and benches.
pub use crate::tensor::fast_exp as fast_exp_pub;
