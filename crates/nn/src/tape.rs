//! Reverse-mode automatic differentiation on a per-sample tape.
//!
//! A [`Tape`] is a flat arena of operations built during a forward pass.
//! Variables are plain indices ([`Var`]), so there are no reference cycles
//! and no interior mutability during the forward pass; a tape borrows the
//! [`ParamStore`] immutably, which lets minibatch samples run on worker
//! threads in parallel. Calling [`Tape::backward`] walks the arena in
//! reverse and accumulates parameter gradients into a [`GradStore`].

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::{GradStore, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Val {
    Owned(Tensor),
    Param(ParamId),
}

// `Gather.1` and `ScatterAdd.2` are recorded for Debug/audit but not read
// on the backward path (gradients re-derive them from the output shape).
#[allow(dead_code)]
#[derive(Debug)]
enum Op {
    /// Constant input; gradient is not propagated past it.
    Input,
    /// Reference to a model parameter; backward accumulates into the grad store.
    Param(ParamId),
    Matmul(Var, Var),
    Add(Var, Var),
    /// `N×d` matrix plus a `1×d` row vector broadcast over rows.
    AddBias(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    SoftmaxRows(Var),
    Transpose(Var),
    ConcatCols(Vec<Var>),
    ColSlice(Var, usize, usize),
    /// `out[i] = x[idx[i]]` (row gather).
    Gather(Var, Arc<Vec<usize>>),
    /// `out[idx[i]] += x[i]` into `n_out` rows (row scatter-add).
    ScatterAdd(Var, Arc<Vec<usize>>, usize),
    /// `1×d` mean over rows.
    MeanRows(Var),
    /// `1×d` sum over rows.
    SumRows(Var),
    /// `N×1` sum over columns of each row.
    RowSum(Var),
    /// `N×d ⊙ N×1` broadcast across columns.
    MulColVec(Var, Var),
    /// `N×d / N×1` broadcast across columns.
    DivColVec(Var, Var),
    /// `N×d − N×1` broadcast across columns.
    SubColVec(Var, Var),
    Dropout(Var, Arc<Vec<f32>>),
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Tensor,
        invstd: Tensor,
    },
    BceWithLogits(Var, Arc<Vec<f32>>),
    MseLoss(Var, Arc<Vec<f32>>),
    L1Loss(Var, Arc<Vec<f32>>),
    HuberLoss(Var, Arc<Vec<f32>>, f32),
    CrossEntropy {
        logits: Var,
        labels: Arc<Vec<usize>>,
        softmax: Tensor,
    },
}

/// Forward-pass recorder and reverse-mode differentiator.
///
/// # Examples
///
/// ```
/// use cirgps_nn::{GradStore, ParamStore, Tape, Tensor, xavier_uniform};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let w = store.register("w", xavier_uniform(2, 1, &mut rng), true);
///
/// let mut tape = Tape::new(&store, true, 0);
/// let x = tape.input(Tensor::from_rows(&[&[1.0, 2.0]]));
/// let wv = tape.param(w);
/// let y = tape.matmul(x, wv);
/// let loss = tape.mse_loss(y, &[0.5]);
///
/// let mut grads = GradStore::new(&store);
/// tape.backward(loss, &mut grads);
/// assert!(grads.get(w).is_some());
/// ```
#[derive(Debug)]
pub struct Tape<'p> {
    params: &'p ParamStore,
    vals: Vec<Val>,
    ops: Vec<Op>,
    training: bool,
    rng: StdRng,
}

impl<'p> Tape<'p> {
    /// Creates a tape over `params`. `training` controls dropout and
    /// batch-norm statistics; `seed` makes dropout masks reproducible.
    pub fn new(params: &'p ParamStore, training: bool, seed: u64) -> Self {
        Tape { params, vals: Vec::new(), ops: Vec::new(), training, rng: StdRng::seed_from_u64(seed) }
    }

    /// Whether the tape is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The parameter store the tape reads from.
    pub fn params(&self) -> &ParamStore {
        self.params
    }

    /// Value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        match &self.vals[v.0] {
            Val::Owned(t) => t,
            Val::Param(id) => self.params.get(*id),
        }
    }

    /// Shape of a variable.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.value(v).shape()
    }

    fn push(&mut self, val: Tensor, op: Op) -> Var {
        self.vals.push(Val::Owned(val));
        self.ops.push(op);
        Var(self.vals.len() - 1)
    }

    /// Registers a constant input tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.vals.push(Val::Owned(t));
        self.ops.push(Op::Input);
        Var(self.vals.len() - 1)
    }

    /// Brings a model parameter onto the tape (no copy).
    pub fn param(&mut self, id: ParamId) -> Var {
        self.vals.push(Val::Param(id));
        self.ops.push(Op::Param(id));
        Var(self.vals.len() - 1)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `N×d` matrix plus `1×d` bias row, broadcast over rows.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1×d` with matching `d`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let (n, d) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (1, d), "bias must be 1x{d}");
        let bv = self.value(b).as_slice().to_vec();
        let mut out = self.value(a).clone();
        for r in 0..n {
            for (o, &x) in out.row_slice_mut(r).iter_mut().zip(&bv) {
                *o += x;
            }
        }
        self.push(out, Op::AddBias(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape(), bv.shape(), "div shape mismatch");
        let data = av.as_slice().iter().zip(bv.as_slice()).map(|(&x, &y)| x / y).collect();
        let v = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(v, Op::Div(a, b))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a, s))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(stable_sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let (n, d) = x.shape();
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            softmax_into(x.row_slice(r), out.row_slice_mut(r));
        }
        self.push(out, Op::SoftmaxRows(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Concatenates along columns (all inputs must share a row count).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `vars` is empty.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_cols needs at least one input");
        let n = self.shape(vars[0]).0;
        let total: usize = vars.iter().map(|&v| self.shape(v).1).sum();
        let mut out = Tensor::zeros(n, total);
        let mut off = 0;
        for &v in vars {
            let t = self.value(v);
            assert_eq!(t.rows(), n, "concat_cols row mismatch");
            let c = t.cols();
            for r in 0..n {
                out.row_slice_mut(r)[off..off + c].copy_from_slice(t.row_slice(r));
            }
            off += c;
        }
        self.push(out, Op::ConcatCols(vars.to_vec()))
    }

    /// Slices columns `[start, start+len)`.
    pub fn col_slice(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = self.value(a);
        let (n, d) = t.shape();
        assert!(start + len <= d, "col_slice out of bounds");
        let mut out = Tensor::zeros(n, len);
        for r in 0..n {
            out.row_slice_mut(r).copy_from_slice(&t.row_slice(r)[start..start + len]);
        }
        self.push(out, Op::ColSlice(a, start, len))
    }

    /// Row gather: `out[i] = a[idx[i]]`.
    pub fn gather(&mut self, a: Var, idx: Arc<Vec<usize>>) -> Var {
        let t = self.value(a);
        let d = t.cols();
        let mut out = Tensor::zeros(idx.len(), d);
        for (i, &j) in idx.iter().enumerate() {
            out.row_slice_mut(i).copy_from_slice(t.row_slice(j));
        }
        self.push(out, Op::Gather(a, idx))
    }

    /// Row scatter-add into `n_out` rows: `out[idx[i]] += a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the row count of `a` or an index
    /// is out of range.
    pub fn scatter_add(&mut self, a: Var, idx: Arc<Vec<usize>>, n_out: usize) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows(), idx.len(), "scatter_add index length mismatch");
        let d = t.cols();
        let mut out = Tensor::zeros(n_out, d);
        for (i, &j) in idx.iter().enumerate() {
            assert!(j < n_out, "scatter index {j} out of range {n_out}");
            for (o, &x) in out.row_slice_mut(j).iter_mut().zip(t.row_slice(i)) {
                *o += x;
            }
        }
        self.push(out, Op::ScatterAdd(a, idx, n_out))
    }

    /// Mean over rows, producing a `1×d` row vector.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).col_mean();
        self.push(v, Op::MeanRows(a))
    }

    /// Sum over rows, producing a `1×d` row vector.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let v = t.col_mean().scale(t.rows() as f32);
        self.push(v, Op::SumRows(a))
    }

    /// Sum over columns of each row, producing an `N×1` column vector.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let data: Vec<f32> = (0..t.rows()).map(|r| t.row_slice(r).iter().sum()).collect();
        let v = Tensor::col(&data);
        self.push(v, Op::RowSum(a))
    }

    /// Broadcast multiply: `N×d ⊙ N×1` across columns.
    pub fn mul_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x * s);
        self.push(out, Op::MulColVec(a, v))
    }

    /// Broadcast divide: `N×d / N×1` across columns.
    pub fn div_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x / s);
        self.push(out, Op::DivColVec(a, v))
    }

    /// Broadcast subtract: `N×d − N×1` across columns.
    pub fn sub_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x - s);
        self.push(out, Op::SubColVec(a, v))
    }

    /// Inverted dropout with keep-probability `1 - p`. Identity in eval mode.
    pub fn dropout(&mut self, a: Var, p: f32) -> Var {
        if !self.training || p <= 0.0 {
            return a;
        }
        let n = self.value(a).len();
        let keep = 1.0 - p;
        let mask: Vec<f32> = (0..n)
            .map(|_| if self.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mask = Arc::new(mask);
        let t = self.value(a);
        let data = t.as_slice().iter().zip(mask.iter()).map(|(&x, &m)| x * m).collect();
        let v = Tensor::from_vec(t.rows(), t.cols(), data);
        self.push(v, Op::Dropout(a, mask))
    }

    /// Batch normalization over the row dimension.
    ///
    /// In training mode, normalizes by batch statistics and returns the
    /// `(mean, var)` actually used so the caller (the layer) can update its
    /// running estimates. In eval mode, the caller passes the running
    /// statistics via `running`.
    pub fn batch_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
        running: Option<(&Tensor, &Tensor)>,
    ) -> (Var, Tensor, Tensor) {
        let t = self.value(x);
        let (n, d) = t.shape();
        let (mean, var) = match (self.training, running) {
            (false, Some((m, v))) => (m.clone(), v.clone()),
            _ => {
                let mean = t.col_mean();
                let mut var = Tensor::zeros(1, d);
                for r in 0..n {
                    for c in 0..d {
                        let diff = t.get(r, c) - mean.get(0, c);
                        var.set(0, c, var.get(0, c) + diff * diff);
                    }
                }
                let inv_n = if n == 0 { 0.0 } else { 1.0 / n as f32 };
                for c in 0..d {
                    var.set(0, c, var.get(0, c) * inv_n);
                }
                (mean, var)
            }
        };
        let invstd = var.map(|v| 1.0 / (v + eps).sqrt());
        let mut xhat = Tensor::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                xhat.set(r, c, (t.get(r, c) - mean.get(0, c)) * invstd.get(0, c));
            }
        }
        let g = self.value(gamma).as_slice().to_vec();
        let b = self.value(beta).as_slice().to_vec();
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                out.set(r, c, xhat.get(r, c) * g[c] + b[c]);
            }
        }
        let var_out = var.clone();
        let v = self.push(
            out,
            Op::BatchNorm { x, gamma, beta, xhat, invstd },
        );
        (v, mean, var_out)
    }

    /// Mean binary-cross-entropy with logits (numerically stable).
    ///
    /// `a` must be a column of logits (`N×1`); `targets` are 0/1 labels.
    pub fn bce_with_logits(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "bce target length mismatch");
        let mut loss = 0.0f64;
        for (&z, &y) in t.as_slice().iter().zip(targets) {
            loss += (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) as f64;
        }
        let v = Tensor::scalar((loss / targets.len().max(1) as f64) as f32);
        self.push(v, Op::BceWithLogits(a, Arc::new(targets.to_vec())))
    }

    /// Mean squared error against `targets`.
    pub fn mse_loss(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "mse target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 =
            t.as_slice().iter().zip(targets).map(|(&p, &y)| (p - y) * (p - y)).sum::<f32>() / n;
        self.push(Tensor::scalar(loss), Op::MseLoss(a, Arc::new(targets.to_vec())))
    }

    /// Mean absolute error against `targets`.
    pub fn l1_loss(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "l1 target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 = t.as_slice().iter().zip(targets).map(|(&p, &y)| (p - y).abs()).sum::<f32>() / n;
        self.push(Tensor::scalar(loss), Op::L1Loss(a, Arc::new(targets.to_vec())))
    }

    /// Huber (smooth-L1) loss with threshold `delta`.
    pub fn huber_loss(&mut self, a: Var, targets: &[f32], delta: f32) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "huber target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 = t
            .as_slice()
            .iter()
            .zip(targets)
            .map(|(&p, &y)| {
                let r = (p - y).abs();
                if r < delta {
                    0.5 * r * r
                } else {
                    delta * (r - 0.5 * delta)
                }
            })
            .sum::<f32>()
            / n;
        self.push(Tensor::scalar(loss), Op::HuberLoss(a, Arc::new(targets.to_vec()), delta))
    }

    /// Mean cross-entropy between row-wise logits and integer class labels.
    pub fn cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let t = self.value(logits);
        let (n, c) = t.shape();
        assert_eq!(n, labels.len(), "cross_entropy label length mismatch");
        let mut softmax = Tensor::zeros(n, c);
        let mut loss = 0.0f64;
        for r in 0..n {
            softmax_into(t.row_slice(r), softmax.row_slice_mut(r));
            let p = softmax.get(r, labels[r]).max(1e-12);
            loss -= (p as f64).ln();
        }
        let v = Tensor::scalar((loss / n.max(1) as f64) as f32);
        self.push(v, Op::CrossEntropy { logits, labels: Arc::new(labels.to_vec()), softmax })
    }

    /// Runs reverse-mode differentiation from `loss`, accumulating parameter
    /// gradients into `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not on this tape.
    pub fn backward(&self, loss: Var, grads: &mut GradStore) {
        let mut local: Vec<Option<Tensor>> = (0..self.vals.len()).map(|_| None).collect();
        let (lr, lc) = self.shape(loss);
        local[loss.0] = Some(Tensor::ones(lr, lc));

        for i in (0..=loss.0).rev() {
            let g = match local[i].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.ops[i] {
                Op::Input => {}
                Op::Param(id) => {
                    if self.params.is_trainable(*id) {
                        grads.accumulate(*id, &g);
                    }
                }
                Op::Matmul(a, b) => {
                    let ga = g.matmul_t(self.value(*b));
                    let gb = self.value(*a).t_matmul(&g);
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                }
                Op::Add(a, b) => {
                    acc(&mut local, *a, g.clone());
                    acc(&mut local, *b, g);
                }
                Op::AddBias(a, b) => {
                    let gb = g.col_mean().scale(g.rows() as f32);
                    acc(&mut local, *a, g);
                    acc(&mut local, *b, gb);
                }
                Op::Sub(a, b) => {
                    acc(&mut local, *a, g.clone());
                    acc(&mut local, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(*b));
                    let gb = g.mul(self.value(*a));
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                }
                Op::Div(a, b) => {
                    let bv = self.value(*b);
                    let cv = self.value(Var(i));
                    let ga = g.zip3(bv, |gi, bi| gi / bi);
                    let gb = g.zip3_2(cv, bv, |gi, ci, bi| -gi * ci / bi);
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                }
                Op::Scale(a, s) => acc(&mut local, *a, g.scale(*s)),
                Op::AddScalar(a, _) => acc(&mut local, *a, g),
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let data = g
                        .as_slice()
                        .iter()
                        .zip(x.as_slice())
                        .map(|(&gi, &xi)| if xi > 0.0 { gi } else { 0.0 })
                        .collect();
                    acc(&mut local, *a, Tensor::from_vec(g.rows(), g.cols(), data));
                }
                Op::Sigmoid(a) => {
                    let y = self.value(Var(i));
                    let ga = g.zip3(y, |gi, yi| gi * yi * (1.0 - yi));
                    acc(&mut local, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = self.value(Var(i));
                    let ga = g.zip3(y, |gi, yi| gi * (1.0 - yi * yi));
                    acc(&mut local, *a, ga);
                }
                Op::Exp(a) => {
                    let y = self.value(Var(i));
                    acc(&mut local, *a, g.mul(y));
                }
                Op::SoftmaxRows(a) => {
                    let y = self.value(Var(i));
                    let (n, d) = y.shape();
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        let dot: f32 =
                            g.row_slice(r).iter().zip(y.row_slice(r)).map(|(&a, &b)| a * b).sum();
                        for c in 0..d {
                            ga.set(r, c, (g.get(r, c) - dot) * y.get(r, c));
                        }
                    }
                    acc(&mut local, *a, ga);
                }
                Op::Transpose(a) => acc(&mut local, *a, g.transpose()),
                Op::ConcatCols(vars) => {
                    let mut off = 0;
                    for &v in vars {
                        let c = self.shape(v).1;
                        let mut gv = Tensor::zeros(g.rows(), c);
                        for r in 0..g.rows() {
                            gv.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[off..off + c]);
                        }
                        acc(&mut local, v, gv);
                        off += c;
                    }
                }
                Op::ColSlice(a, start, len) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        ga.row_slice_mut(r)[*start..*start + *len].copy_from_slice(g.row_slice(r));
                    }
                    acc(&mut local, *a, ga);
                }
                Op::Gather(a, idx) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for (i2, &j) in idx.iter().enumerate() {
                        for (o, &x) in ga.row_slice_mut(j).iter_mut().zip(g.row_slice(i2)) {
                            *o += x;
                        }
                    }
                    acc(&mut local, *a, ga);
                }
                Op::ScatterAdd(a, idx, _) => {
                    let d = g.cols();
                    let mut ga = Tensor::zeros(idx.len(), d);
                    for (i2, &j) in idx.iter().enumerate() {
                        ga.row_slice_mut(i2).copy_from_slice(g.row_slice(j));
                    }
                    acc(&mut local, *a, ga);
                }
                Op::MeanRows(a) => {
                    let (n, d) = self.shape(*a);
                    let inv = 1.0 / n.max(1) as f32;
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        for c in 0..d {
                            ga.set(r, c, g.get(0, c) * inv);
                        }
                    }
                    acc(&mut local, *a, ga);
                }
                Op::SumRows(a) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        ga.row_slice_mut(r).copy_from_slice(g.row_slice(0));
                    }
                    acc(&mut local, *a, ga);
                }
                Op::RowSum(a) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        let gv = g.get(r, 0);
                        for c in 0..d {
                            ga.set(r, c, gv);
                        }
                    }
                    acc(&mut local, *a, ga);
                }
                Op::MulColVec(a, v) => {
                    let av = self.value(*a);
                    let vv = self.value(*v);
                    let ga = colvec_zip(&g, vv, |gi, s| gi * s);
                    let mut gv = Tensor::zeros(vv.rows(), 1);
                    for r in 0..g.rows() {
                        let s: f32 =
                            g.row_slice(r).iter().zip(av.row_slice(r)).map(|(&x, &y)| x * y).sum();
                        gv.set(r, 0, s);
                    }
                    acc(&mut local, *a, ga);
                    acc(&mut local, *v, gv);
                }
                Op::DivColVec(a, v) => {
                    let vv = self.value(*v);
                    let cv = self.value(Var(i));
                    let ga = colvec_zip(&g, vv, |gi, s| gi / s);
                    let mut gv = Tensor::zeros(vv.rows(), 1);
                    for r in 0..g.rows() {
                        let s: f32 =
                            g.row_slice(r).iter().zip(cv.row_slice(r)).map(|(&x, &y)| x * y).sum();
                        gv.set(r, 0, -s / vv.get(r, 0));
                    }
                    acc(&mut local, *a, ga);
                    acc(&mut local, *v, gv);
                }
                Op::SubColVec(a, v) => {
                    let mut gv = Tensor::zeros(g.rows(), 1);
                    for r in 0..g.rows() {
                        gv.set(r, 0, -g.row_slice(r).iter().sum::<f32>());
                    }
                    acc(&mut local, *a, g);
                    acc(&mut local, *v, gv);
                }
                Op::Dropout(a, mask) => {
                    let data =
                        g.as_slice().iter().zip(mask.iter()).map(|(&gi, &m)| gi * m).collect();
                    acc(&mut local, *a, Tensor::from_vec(g.rows(), g.cols(), data));
                }
                Op::BatchNorm { x, gamma, beta, xhat, invstd } => {
                    let (n, d) = xhat.shape();
                    let gv = self.value(*gamma);
                    // dgamma, dbeta
                    let mut dgamma = Tensor::zeros(1, d);
                    let mut dbeta = Tensor::zeros(1, d);
                    for r in 0..n {
                        for c in 0..d {
                            dgamma.set(0, c, dgamma.get(0, c) + g.get(r, c) * xhat.get(r, c));
                            dbeta.set(0, c, dbeta.get(0, c) + g.get(r, c));
                        }
                    }
                    // dx via standard BN backward (per column)
                    let mut gx = Tensor::zeros(n, d);
                    let nf = n.max(1) as f32;
                    for c in 0..d {
                        let gam = gv.get(0, c);
                        let istd = invstd.get(0, c);
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for r in 0..n {
                            let dxh = g.get(r, c) * gam;
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * xhat.get(r, c);
                        }
                        for r in 0..n {
                            let dxh = g.get(r, c) * gam;
                            let val = (istd / nf)
                                * (nf * dxh - sum_dxhat - xhat.get(r, c) * sum_dxhat_xhat);
                            gx.set(r, c, val);
                        }
                    }
                    acc(&mut local, *x, gx);
                    acc(&mut local, *gamma, dgamma);
                    acc(&mut local, *beta, dbeta);
                }
                Op::BceWithLogits(a, y) => {
                    let z = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let data = z
                        .as_slice()
                        .iter()
                        .zip(y.iter())
                        .map(|(&zi, &yi)| (stable_sigmoid(zi) - yi) * gscale)
                        .collect();
                    acc(&mut local, *a, Tensor::from_vec(z.rows(), z.cols(), data));
                }
                Op::MseLoss(a, y) => {
                    let p = self.value(*a);
                    let gscale = 2.0 * g.item() / y.len().max(1) as f32;
                    let data =
                        p.as_slice().iter().zip(y.iter()).map(|(&pi, &yi)| (pi - yi) * gscale).collect();
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                }
                Op::L1Loss(a, y) => {
                    let p = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let data = p
                        .as_slice()
                        .iter()
                        .zip(y.iter())
                        .map(|(&pi, &yi)| (pi - yi).signum() * gscale)
                        .collect();
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                }
                Op::HuberLoss(a, y, delta) => {
                    let p = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let data = p
                        .as_slice()
                        .iter()
                        .zip(y.iter())
                        .map(|(&pi, &yi)| (pi - yi).clamp(-delta, *delta) * gscale)
                        .collect();
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                }
                Op::CrossEntropy { logits, labels, softmax } => {
                    let (n, c) = softmax.shape();
                    let gscale = g.item() / n.max(1) as f32;
                    let mut ga = softmax.scale(gscale);
                    for (r, &lab) in labels.iter().enumerate() {
                        ga.set(r, lab, ga.get(r, lab) - gscale);
                    }
                    let _ = c;
                    acc(&mut local, *logits, ga);
                }
            }
        }
    }
}

fn acc(local: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut local[v.0] {
        Some(t) => t.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

fn colvec_zip(a: &Tensor, v: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(v.cols(), 1, "broadcast vector must be a column");
    assert_eq!(a.rows(), v.rows(), "broadcast row mismatch");
    let (n, d) = a.shape();
    let mut out = Tensor::zeros(n, d);
    for r in 0..n {
        let s = v.get(r, 0);
        for (o, &x) in out.row_slice_mut(r).iter_mut().zip(a.row_slice(r)) {
            *o = f(x, s);
        }
    }
    out
}

fn softmax_into(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &x) in out.iter_mut().zip(row) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum.max(1e-30);
    for o in out.iter_mut() {
        *o *= inv;
    }
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Tensor {
    fn zip3(&self, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f(x, y)).collect();
        Tensor::from_vec(self.rows(), self.cols(), data)
    }

    fn zip3_2(&self, b: &Tensor, c: &Tensor, f: impl Fn(f32, f32, f32) -> f32) -> Tensor {
        let data = self
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .zip(c.as_slice())
            .map(|((&x, &y), &z)| f(x, y, z))
            .collect();
        Tensor::from_vec(self.rows(), self.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xavier_uniform;

    /// Finite-difference gradient check for a scalar-valued function of one
    /// parameter.
    fn grad_check<F>(shape: (usize, usize), build: F)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let init = xavier_uniform(shape.0, shape.1, &mut rng);
        let w = store.register("w", init, true);

        // analytic gradient
        let mut tape = Tape::new(&store, false, 0);
        let wv = tape.param(w);
        let loss = build(&mut tape, wv);
        assert_eq!(tape.shape(loss), (1, 1), "grad_check requires a scalar loss");
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let analytic = grads.get(w).expect("missing gradient").clone();

        // numeric gradient
        let eps = 1e-3f32;
        for idx in 0..shape.0 * shape.1 {
            let orig = store.get(w).as_slice()[idx];
            store.get_mut(w).as_mut_slice()[idx] = orig + eps;
            let mut tp = Tape::new(&store, false, 0);
            let wv = tp.param(w);
            let vp = build(&mut tp, wv);
            let lp = tp.value(vp).item();
            store.get_mut(w).as_mut_slice()[idx] = orig - eps;
            let mut tm = Tape::new(&store, false, 0);
            let wv = tm.param(w);
            let vm = build(&mut tm, wv);
            let lm = tm.value(vm).item();
            store.get_mut(w).as_mut_slice()[idx] = orig;

            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mse() {
        grad_check((3, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[0.5, -1.0, 2.0]]));
            let y = t.matmul(x, w);
            t.mse_loss(y, &[0.3, -0.7])
        });
    }

    #[test]
    fn grad_sigmoid_bce() {
        grad_check((4, 1), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, -0.5, 0.2, 0.9], &[0.1, 0.4, -1.2, 0.0]]));
            let z = t.matmul(x, w);
            t.bce_with_logits(z, &[1.0, 0.0])
        });
    }

    #[test]
    fn grad_relu_tanh_chain() {
        grad_check((2, 3), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]));
            let h = t.matmul(x, w);
            let h = t.relu(h);
            let h = t.tanh(h);
            t.mse_loss(h, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        });
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check((2, 4), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.3], &[0.0, 1.0]]));
            let h = t.matmul(x, w);
            let s = t.softmax_rows(h);
            t.mse_loss(s, &[0.1, 0.2, 0.3, 0.4, 0.25, 0.25, 0.25, 0.25, 0.7, 0.1, 0.1, 0.1])
        });
    }

    #[test]
    fn grad_gather_scatter() {
        grad_check((4, 2), |t, w| {
            let idx = Arc::new(vec![0usize, 2, 2, 3, 1]);
            let gathered = t.gather(w, idx.clone());
            let back = t.scatter_add(gathered, Arc::new(vec![0usize, 1, 1, 0, 2]), 3);
            t.mse_loss(back, &[0.1; 6])
        });
    }

    #[test]
    fn grad_colvec_broadcasts() {
        grad_check((3, 3), |t, w| {
            let s = t.row_sum(w);
            let s = t.add_scalar(s, 2.0);
            let d = t.div_colvec(w, s);
            let m = t.mul_colvec(d, s);
            let sub = t.sub_colvec(m, s);
            t.mse_loss(sub, &[0.0; 9])
        });
    }

    #[test]
    fn grad_batch_norm() {
        grad_check((3, 2), |t, w| {
            let gamma = t.input(Tensor::row(&[1.3, 0.7]));
            let beta = t.input(Tensor::row(&[0.1, -0.2]));
            let x = t.input(Tensor::from_rows(&[
                &[1.0, 2.0, 3.0],
                &[-1.0, 0.5, 1.5],
                &[2.0, -0.3, 0.7],
                &[0.2, 0.9, -1.1],
            ]));
            let h = t.matmul(x, w);
            let (y, _, _) = t.batch_norm(h, gamma, beta, 1e-5, None);
            t.mse_loss(y, &[0.1; 8])
        });
    }

    #[test]
    fn grad_concat_slice() {
        grad_check((2, 4), |t, w| {
            let left = t.col_slice(w, 0, 2);
            let right = t.col_slice(w, 2, 2);
            let swapped = t.concat_cols(&[right, left]);
            let act = t.sigmoid(swapped);
            t.l1_loss(act, &[0.5; 8])
        });
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check((3, 3), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, 0.0, -1.0], &[0.2, 0.4, 0.8]]));
            let logits = t.matmul(x, w);
            t.cross_entropy(logits, &[2, 0])
        });
    }

    #[test]
    fn grad_huber() {
        grad_check((2, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[3.0, -2.0]]));
            let y = t.matmul(x, w);
            t.huber_loss(y, &[0.0, 10.0], 1.0)
        });
    }

    #[test]
    fn grad_exp_div() {
        grad_check((2, 2), |t, w| {
            let e = t.exp(w);
            let one = t.input(Tensor::ones(2, 2));
            let s = t.add(e, one);
            let d = t.div(e, s);
            t.mse_loss(d, &[0.3, 0.4, 0.5, 0.6])
        });
    }

    #[test]
    fn grad_mean_sum_rows() {
        grad_check((3, 2), |t, w| {
            let m = t.mean_rows(w);
            let s = t.sum_rows(w);
            let both = t.concat_cols(&[m, s]);
            t.mse_loss(both, &[0.1, 0.2, 0.3, 0.4])
        });
    }

    #[test]
    fn grad_transpose_matmul() {
        grad_check((3, 2), |t, w| {
            let wt = t.transpose(w);
            let prod = t.matmul(w, wt);
            t.mse_loss(prod, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0])
        });
    }

    #[test]
    fn dropout_eval_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::row(&[1.0, 2.0, 3.0]));
        let y = tape.dropout(x, 0.5);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_scales_by_keep() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, true, 7);
        let x = tape.input(Tensor::ones(100, 10));
        let y = tape.dropout(x, 0.4);
        let m = tape.value(y).mean();
        // Inverted dropout preserves the expectation.
        assert!((m - 1.0).abs() < 0.15, "dropout mean {m}");
    }

    #[test]
    fn frozen_params_receive_no_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(2, 2, &mut rng), false);
        let mut tape = Tape::new(&store, true, 0);
        let wv = tape.param(w);
        let loss = tape.mse_loss(wv, &[0.0; 4]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        assert!(grads.get(w).is_none());
    }
}
