//! Reverse-mode automatic differentiation on a per-sample tape.
//!
//! A [`Tape`] is a flat arena of operations built during a forward pass.
//! Variables are plain indices ([`Var`]), so there are no reference cycles
//! and no interior mutability during the forward pass; a tape borrows the
//! [`ParamStore`] immutably, which lets minibatch samples run on worker
//! threads in parallel. Calling [`Tape::backward`] walks the arena in
//! reverse and accumulates parameter gradients into a [`GradStore`].
//!
//! ## Buffer recycling
//!
//! Every tensor the tape creates draws its backing store from the
//! thread-local pool ([`crate::pool`]). Dropping (or [`Tape::reset`]ing)
//! the tape returns all of those buffers, so in steady-state training —
//! same model, same batch shapes — forward and backward passes perform
//! zero heap allocation per op. The backward pass recycles each upstream
//! gradient as soon as it has been consumed.
//!
//! ## Fused and in-place ops
//!
//! [`Tape::linear`] and [`Tape::linear_relu`] fuse matmul + bias
//! (+ activation) into one op, halving tape traffic on the model's hot
//! path. The `*_inplace` variants (e.g. [`Tape::add_inplace`],
//! [`Tape::relu_inplace`]) *consume* the buffer of their first operand
//! instead of allocating: the consumed [`Var`]'s value becomes
//! unreadable (reading it panics), so they must only be used when the
//! operand is not referenced again — which the layer implementations in
//! this crate guarantee.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::infer::{
    block_slice, block_write, colvec_zip, concat_cols as concat_cols_fwd, gather_rows, linear_fwd,
    mha_block_diag_fwd, performer_block_diag_fwd, qkv_pack_weights, row_sum_fwd, scatter_add_rows,
    softmax_rows_fwd, stable_sigmoid,
};
use crate::params::{GradStore, ParamId, ParamStore};
use crate::pool;
use crate::tensor::{fast_exp, gemm_abt, gemm_atb, Tensor};

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Val {
    Owned(Tensor),
    Param(ParamId),
    /// Buffer taken by an in-place op; reading the value panics.
    Consumed,
}

// `Gather.1` and `ScatterAdd.2` are recorded for Debug/audit but not read
// on the backward path (gradients re-derive them from the output shape).
#[allow(dead_code)]
#[derive(Debug)]
enum Op {
    /// Constant input; gradient is not propagated past it.
    Input,
    /// Reference to a model parameter; backward accumulates into the grad store.
    Param(ParamId),
    Matmul(Var, Var),
    /// Fused `x·W (+ b)` — one op instead of matmul + add_bias.
    Linear {
        x: Var,
        w: Var,
        b: Option<Var>,
    },
    /// Fused `relu(x·W (+ b))`.
    LinearRelu {
        x: Var,
        w: Var,
        b: Option<Var>,
    },
    Add(Var, Var),
    /// `N×d` matrix plus a `1×d` row vector broadcast over rows.
    AddBias(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    SoftmaxRows(Var),
    Transpose(Var),
    ConcatCols(Vec<Var>),
    ColSlice(Var, usize, usize),
    /// `out[i] = x[idx[i]]` (row gather).
    Gather(Var, Arc<Vec<usize>>),
    /// `out[idx[i]] += x[i]` into `n_out` rows (row scatter-add).
    ScatterAdd(Var, Arc<Vec<usize>>, usize),
    /// `1×d` mean over rows.
    MeanRows(Var),
    /// `1×d` sum over rows.
    SumRows(Var),
    /// `N×1` sum over columns of each row.
    RowSum(Var),
    /// `N×d ⊙ N×1` broadcast across columns.
    MulColVec(Var, Var),
    /// `N×d / N×1` broadcast across columns.
    DivColVec(Var, Var),
    /// `N×d − N×1` broadcast across columns.
    SubColVec(Var, Var),
    Dropout(Var, Arc<Vec<f32>>),
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Tensor,
        invstd: Tensor,
    },
    BceWithLogits(Var, Arc<Vec<f32>>),
    MseLoss(Var, Arc<Vec<f32>>),
    L1Loss(Var, Arc<Vec<f32>>),
    HuberLoss(Var, Arc<Vec<f32>>, f32),
    CrossEntropy {
        logits: Var,
        labels: Arc<Vec<usize>>,
        softmax: Tensor,
    },
    /// Fused QKV projection: one GEMM against the packed `[Wq|Wk|Wv]`
    /// weight (stored for the backward) producing an `N × 3d` output.
    LinearQkv {
        x: Var,
        wq: Var,
        wk: Var,
        wv: Var,
        wcat: Tensor,
    },
    /// Fused block-diagonal multi-head softmax attention over a packed
    /// `N × 3d` QKV matrix. `attn` holds the per-block per-head
    /// attention probabilities (block-major) for the fused backward.
    AttnBlockDiag {
        qkv: Var,
        blocks: Arc<Vec<(usize, usize)>>,
        heads: usize,
        head_dim: usize,
        attn: Vec<Tensor>,
    },
    /// Fused block-diagonal Performer (FAVOR+) attention over a packed
    /// `N × 3d` QKV matrix. `phi_q`/`phi_k` hold the per-head feature
    /// maps (`N × features`) for the fused backward; the random
    /// projection `proj` is frozen by construction, so no gradient is
    /// propagated to it.
    PerformerBlockDiag {
        qkv: Var,
        proj: ParamId,
        blocks: Arc<Vec<(usize, usize)>>,
        heads: usize,
        head_dim: usize,
        features: usize,
        phi_q: Vec<Tensor>,
        phi_k: Vec<Tensor>,
    },
}

/// Forward-pass recorder and reverse-mode differentiator.
///
/// # Examples
///
/// ```
/// use cirgps_nn::{GradStore, ParamStore, Tape, Tensor, xavier_uniform};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let w = store.register("w", xavier_uniform(2, 1, &mut rng), true);
///
/// let mut tape = Tape::new(&store, true, 0);
/// let x = tape.input(Tensor::from_rows(&[&[1.0, 2.0]]));
/// let wv = tape.param(w);
/// let y = tape.matmul(x, wv);
/// let loss = tape.mse_loss(y, &[0.5]);
///
/// let mut grads = GradStore::new(&store);
/// tape.backward(loss, &mut grads);
/// assert!(grads.get(w).is_some());
/// ```
#[derive(Debug)]
pub struct Tape<'p> {
    params: &'p ParamStore,
    vals: Vec<Val>,
    ops: Vec<Op>,
    /// Shape per var, recorded at push time so [`Tape::shape`] works even
    /// for values consumed by in-place ops.
    shapes: Vec<(usize, usize)>,
    training: bool,
    rng: StdRng,
}

impl<'p> Tape<'p> {
    /// Creates a tape over `params`. `training` controls dropout and
    /// batch-norm statistics; `seed` makes dropout masks reproducible.
    pub fn new(params: &'p ParamStore, training: bool, seed: u64) -> Self {
        Tape {
            params,
            vals: Vec::new(),
            ops: Vec::new(),
            shapes: Vec::new(),
            training,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether the tape is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The parameter store the tape reads from.
    pub fn params(&self) -> &ParamStore {
        self.params
    }

    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable's buffer was consumed by an in-place op.
    pub fn value(&self, v: Var) -> &Tensor {
        match &self.vals[v.0] {
            Val::Owned(t) => t,
            Val::Param(id) => self.params.get(*id),
            Val::Consumed => panic!(
                "value of var {} was consumed by an in-place op and can no longer be read",
                v.0
            ),
        }
    }

    /// Shape of a variable (available even for consumed values).
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.shapes[v.0]
    }

    /// Clears the tape for reuse, returning every buffer it owns to the
    /// thread-local pool. The training flag and RNG state are kept.
    pub fn reset(&mut self) {
        self.recycle_storage();
    }

    fn recycle_storage(&mut self) {
        for v in self.vals.drain(..) {
            if let Val::Owned(t) = v {
                t.recycle();
            }
        }
        for op in self.ops.drain(..) {
            match op {
                Op::BatchNorm { xhat, invstd, .. } => {
                    xhat.recycle();
                    invstd.recycle();
                }
                Op::CrossEntropy { softmax, .. } => softmax.recycle(),
                Op::LinearQkv { wcat, .. } => wcat.recycle(),
                Op::AttnBlockDiag { attn, .. } => {
                    for a in attn {
                        a.recycle();
                    }
                }
                Op::PerformerBlockDiag { phi_q, phi_k, .. } => {
                    for t in phi_q.into_iter().chain(phi_k) {
                        t.recycle();
                    }
                }
                // The mask is pool-backed; reclaim it unless a clone of the
                // Arc escaped the tape.
                Op::Dropout(_, mask) => {
                    if let Ok(m) = Arc::try_unwrap(mask) {
                        pool::put(m);
                    }
                }
                _ => {}
            }
        }
        self.shapes.clear();
    }

    fn push(&mut self, val: Tensor, op: Op) -> Var {
        self.shapes.push(val.shape());
        self.vals.push(Val::Owned(val));
        self.ops.push(op);
        Var(self.vals.len() - 1)
    }

    /// Takes the owned buffer of `v` (for in-place ops), leaving the var
    /// unreadable. Returns `None` for params and already-consumed vars.
    fn take_owned(&mut self, v: Var) -> Option<Tensor> {
        match &mut self.vals[v.0] {
            slot @ Val::Owned(_) => match std::mem::replace(slot, Val::Consumed) {
                Val::Owned(t) => Some(t),
                _ => unreachable!(),
            },
            _ => None,
        }
    }

    /// Registers a constant input tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Brings a model parameter onto the tape (no copy).
    pub fn param(&mut self, id: ParamId) -> Var {
        self.shapes.push(self.params.get(id).shape());
        self.vals.push(Val::Param(id));
        self.ops.push(Op::Param(id));
        Var(self.vals.len() - 1)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Fused linear layer `x·W (+ b)`: one tape op, one output buffer.
    ///
    /// The bias (when present) seeds the output before the GEMM
    /// accumulates onto it, so no separate broadcast op is recorded.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (`b` must be `1×n` when given).
    pub fn linear(&mut self, x: Var, w: Var, b: Option<Var>) -> Var {
        let out = self.linear_forward(x, w, b, false);
        self.push(out, Op::Linear { x, w, b })
    }

    /// Fused `relu(x·W (+ b))`.
    pub fn linear_relu(&mut self, x: Var, w: Var, b: Option<Var>) -> Var {
        let out = self.linear_forward(x, w, b, true);
        self.push(out, Op::LinearRelu { x, w, b })
    }

    fn linear_forward(&self, x: Var, w: Var, b: Option<Var>, relu: bool) -> Tensor {
        // Shared with the tape-free inference path (bitwise-equal by
        // construction; see crate::infer).
        linear_fwd(
            self.value(x),
            self.value(w),
            b.map(|bvar| self.value(bvar)),
            relu,
        )
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise sum that consumes `a`'s buffer (no allocation).
    ///
    /// After this call, `value(a)` panics — use only when `a` is not
    /// referenced again. Falls back to [`Tape::add`] when `a` is a
    /// parameter or aliases `b`.
    pub fn add_inplace(&mut self, a: Var, b: Var) -> Var {
        if a == b {
            return self.add(a, b);
        }
        match self.take_owned(a) {
            Some(mut t) => {
                t.add_assign(self.value(b));
                self.push(t, Op::Add(a, b))
            }
            None => self.add(a, b),
        }
    }

    /// `N×d` matrix plus `1×d` bias row, broadcast over rows.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1×d` with matching `d`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let av = self.value(a);
            let (n, d) = av.shape();
            let bv = self.value(b);
            assert_eq!(bv.shape(), (1, d), "bias must be 1x{d}");
            let mut out = pool::take_capacity(n * d);
            for r in 0..n {
                out.extend(
                    av.row_slice(r)
                        .iter()
                        .zip(bv.as_slice())
                        .map(|(&x, &y)| x + y),
                );
            }
            Tensor::from_vec(n, d, out)
        };
        self.push(out, Op::AddBias(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = {
            let av = self.value(a);
            let bv = self.value(b);
            assert_eq!(av.shape(), bv.shape(), "div shape mismatch");
            let mut data = pool::take_capacity(av.len());
            data.extend(
                av.as_slice()
                    .iter()
                    .zip(bv.as_slice())
                    .map(|(&x, &y)| x / y),
            );
            Tensor::from_vec(av.rows(), av.cols(), data)
        };
        self.push(v, Op::Div(a, b))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Scalar multiply that consumes `a`'s buffer (no allocation).
    ///
    /// Same aliasing contract as [`Tape::add_inplace`].
    pub fn scale_inplace(&mut self, a: Var, s: f32) -> Var {
        match self.take_owned(a) {
            Some(mut t) => {
                for v in t.as_mut_slice() {
                    *v *= s;
                }
                self.push(t, Op::Scale(a, s))
            }
            None => self.scale(a, s),
        }
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a, s))
    }

    /// Scalar add that consumes `a`'s buffer (no allocation).
    ///
    /// Same aliasing contract as [`Tape::add_inplace`].
    pub fn add_scalar_inplace(&mut self, a: Var, s: f32) -> Var {
        match self.take_owned(a) {
            Some(mut t) => {
                for v in t.as_mut_slice() {
                    *v += s;
                }
                self.push(t, Op::AddScalar(a, s))
            }
            None => self.add_scalar(a, s),
        }
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// ReLU that consumes `a`'s buffer (no allocation). The backward pass
    /// masks by the *output* sign, which is equivalent to masking by the
    /// input sign, so no input copy is needed.
    ///
    /// Same aliasing contract as [`Tape::add_inplace`].
    pub fn relu_inplace(&mut self, a: Var) -> Var {
        match self.take_owned(a) {
            Some(mut t) => {
                for v in t.as_mut_slice() {
                    *v = v.max(0.0);
                }
                self.push(t, Op::Relu(a))
            }
            None => self.relu(a),
        }
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(stable_sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise exponential (vectorized polynomial, rel. error < 1e-6).
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(fast_exp);
        self.push(v, Op::Exp(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let out = softmax_rows_fwd(self.value(a));
        self.push(out, Op::SoftmaxRows(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Concatenates along columns (all inputs must share a row count).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `vars` is empty.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        let out = {
            let parts: Vec<&Tensor> = vars.iter().map(|&v| self.value(v)).collect();
            concat_cols_fwd(&parts)
        };
        self.push(out, Op::ConcatCols(vars.to_vec()))
    }

    /// Slices columns `[start, start+len)`.
    pub fn col_slice(&mut self, a: Var, start: usize, len: usize) -> Var {
        let out = {
            let t = self.value(a);
            let (n, d) = t.shape();
            assert!(start + len <= d, "col_slice out of bounds");
            let mut out = pool::take_capacity(n * len);
            for r in 0..n {
                out.extend_from_slice(&t.row_slice(r)[start..start + len]);
            }
            Tensor::from_vec(n, len, out)
        };
        self.push(out, Op::ColSlice(a, start, len))
    }

    /// Row gather: `out[i] = a[idx[i]]`.
    pub fn gather(&mut self, a: Var, idx: Arc<Vec<usize>>) -> Var {
        let out = gather_rows(self.value(a), &idx);
        self.push(out, Op::Gather(a, idx))
    }

    /// Row scatter-add into `n_out` rows: `out[idx[i]] += a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the row count of `a` or an index
    /// is out of range.
    pub fn scatter_add(&mut self, a: Var, idx: Arc<Vec<usize>>, n_out: usize) -> Var {
        let out = scatter_add_rows(self.value(a), &idx, n_out);
        self.push(out, Op::ScatterAdd(a, idx, n_out))
    }

    /// Mean over rows, producing a `1×d` row vector.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).col_mean();
        self.push(v, Op::MeanRows(a))
    }

    /// Sum over rows, producing a `1×d` row vector.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).col_sum();
        self.push(v, Op::SumRows(a))
    }

    /// Sum over columns of each row, producing an `N×1` column vector.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let v = row_sum_fwd(self.value(a));
        self.push(v, Op::RowSum(a))
    }

    /// Broadcast multiply: `N×d ⊙ N×1` across columns.
    pub fn mul_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x * s);
        self.push(out, Op::MulColVec(a, v))
    }

    /// Broadcast divide: `N×d / N×1` across columns.
    pub fn div_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x / s);
        self.push(out, Op::DivColVec(a, v))
    }

    /// Broadcast subtract: `N×d − N×1` across columns.
    pub fn sub_colvec(&mut self, a: Var, v: Var) -> Var {
        let out = colvec_zip(self.value(a), self.value(v), |x, s| x - s);
        self.push(out, Op::SubColVec(a, v))
    }

    /// Inverted dropout with keep-probability `1 - p`. Identity in eval mode.
    pub fn dropout(&mut self, a: Var, p: f32) -> Var {
        if !self.training || p <= 0.0 {
            return a;
        }
        let n = self.value(a).len();
        let keep = 1.0 - p;
        // Pool-backed mask and output (the RNG needs `&mut self`, so the
        // mask is drawn before the input value is borrowed). Each u64
        // draw yields two 24-bit uniforms, halving time spent in the
        // serially-dependent generator.
        let inv_keep = 1.0 / keep;
        let mut mask = pool::take_capacity(n);
        let to_unit = |bits: u32| (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        while mask.len() + 2 <= n {
            let r = self.rng.gen::<u64>();
            mask.push(if to_unit(r as u32) < keep {
                inv_keep
            } else {
                0.0
            });
            mask.push(if to_unit((r >> 32) as u32) < keep {
                inv_keep
            } else {
                0.0
            });
        }
        if mask.len() < n {
            mask.push(if self.rng.gen::<f32>() < keep {
                inv_keep
            } else {
                0.0
            });
        }
        let mut data = pool::take_capacity(n);
        data.extend(
            self.value(a)
                .as_slice()
                .iter()
                .zip(&mask)
                .map(|(&x, &m)| x * m),
        );
        let (rows, cols) = self.shape(a);
        let v = Tensor::from_vec(rows, cols, data);
        self.push(v, Op::Dropout(a, Arc::new(mask)))
    }

    /// Batch normalization over the row dimension.
    ///
    /// In training mode, normalizes by batch statistics and returns the
    /// `(mean, var)` actually used so the caller (the layer) can update its
    /// running estimates. In eval mode, the caller passes the running
    /// statistics via `running`.
    pub fn batch_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
        running: Option<(&Tensor, &Tensor)>,
    ) -> (Var, Tensor, Tensor) {
        let (out, xhat, invstd, mean, var) = {
            let t = self.value(x);
            let (n, d) = t.shape();
            let (mean, var) = match (self.training, running) {
                (false, Some((m, v))) => (m.clone(), v.clone()),
                _ => {
                    let mean = t.col_mean();
                    let mut var = pool::take_zeroed(d);
                    for r in 0..n {
                        for ((v, &xv), &mu) in
                            var.iter_mut().zip(t.row_slice(r)).zip(mean.as_slice())
                        {
                            let diff = xv - mu;
                            *v += diff * diff;
                        }
                    }
                    let inv_n = if n == 0 { 0.0 } else { 1.0 / n as f32 };
                    for v in var.iter_mut() {
                        *v *= inv_n;
                    }
                    (mean, Tensor::from_vec(1, d, var))
                }
            };
            let invstd = var.map(|v| 1.0 / (v + eps).sqrt());
            let mut xhat = pool::take_capacity(n * d);
            for r in 0..n {
                xhat.extend(
                    t.row_slice(r)
                        .iter()
                        .zip(mean.as_slice())
                        .zip(invstd.as_slice())
                        .map(|((&xv, &mu), &is)| (xv - mu) * is),
                );
            }
            let gv = self.value(gamma);
            let bv = self.value(beta);
            let mut out = pool::take_capacity(n * d);
            for r in 0..n {
                out.extend(
                    xhat[r * d..(r + 1) * d]
                        .iter()
                        .zip(gv.as_slice())
                        .zip(bv.as_slice())
                        .map(|((&xh, &g), &b)| xh * g + b),
                );
            }
            (
                Tensor::from_vec(n, d, out),
                Tensor::from_vec(n, d, xhat),
                invstd,
                mean,
                var,
            )
        };
        let v = self.push(
            out,
            Op::BatchNorm {
                x,
                gamma,
                beta,
                xhat,
                invstd,
            },
        );
        (v, mean, var)
    }

    /// Mean binary-cross-entropy with logits (numerically stable).
    ///
    /// `a` must be a column of logits (`N×1`); `targets` are 0/1 labels.
    pub fn bce_with_logits(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "bce target length mismatch");
        let mut loss = 0.0f64;
        for (&z, &y) in t.as_slice().iter().zip(targets) {
            loss += (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) as f64;
        }
        let v = Tensor::scalar((loss / targets.len().max(1) as f64) as f32);
        self.push(v, Op::BceWithLogits(a, Arc::new(targets.to_vec())))
    }

    /// Mean squared error against `targets`.
    pub fn mse_loss(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "mse target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 = t
            .as_slice()
            .iter()
            .zip(targets)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / n;
        self.push(
            Tensor::scalar(loss),
            Op::MseLoss(a, Arc::new(targets.to_vec())),
        )
    }

    /// Mean absolute error against `targets`.
    pub fn l1_loss(&mut self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "l1 target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 = t
            .as_slice()
            .iter()
            .zip(targets)
            .map(|(&p, &y)| (p - y).abs())
            .sum::<f32>()
            / n;
        self.push(
            Tensor::scalar(loss),
            Op::L1Loss(a, Arc::new(targets.to_vec())),
        )
    }

    /// Huber (smooth-L1) loss with threshold `delta`.
    pub fn huber_loss(&mut self, a: Var, targets: &[f32], delta: f32) -> Var {
        let t = self.value(a);
        assert_eq!(t.len(), targets.len(), "huber target length mismatch");
        let n = targets.len().max(1) as f32;
        let loss: f32 = t
            .as_slice()
            .iter()
            .zip(targets)
            .map(|(&p, &y)| {
                let r = (p - y).abs();
                if r < delta {
                    0.5 * r * r
                } else {
                    delta * (r - 0.5 * delta)
                }
            })
            .sum::<f32>()
            / n;
        self.push(
            Tensor::scalar(loss),
            Op::HuberLoss(a, Arc::new(targets.to_vec()), delta),
        )
    }

    /// Mean cross-entropy between row-wise logits and integer class labels.
    pub fn cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let (v, softmax) = {
            let t = self.value(logits);
            let (n, c) = t.shape();
            assert_eq!(n, labels.len(), "cross_entropy label length mismatch");
            let mut softmax = Tensor::zeros(n, c);
            let mut loss = 0.0f64;
            for (r, &label) in labels.iter().enumerate() {
                softmax_into(t.row_slice(r), softmax.row_slice_mut(r));
                let p = softmax.get(r, label).max(1e-12);
                loss -= (p as f64).ln();
            }
            (Tensor::scalar((loss / n.max(1) as f64) as f32), softmax)
        };
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                labels: Arc::new(labels.to_vec()),
                softmax,
            },
        )
    }

    /// Fused QKV projection: `x·[Wq|Wk|Wv]` as **one** GEMM producing an
    /// `N × 3d` output (`[Q|K|V]`), with a matching fused backward that
    /// computes `gx` and all three weight gradients from a single pair
    /// of GEMMs. Column-for-column bitwise-equal to the three separate
    /// `x·W` products (the per-element accumulation order over `k` does
    /// not depend on the output width).
    ///
    /// # Panics
    ///
    /// Panics if the three weights disagree in shape or `x`'s width does
    /// not match them.
    pub fn linear_qkv(&mut self, x: Var, wq: Var, wk: Var, wv: Var) -> Var {
        let (out, wcat) = {
            let wcat = qkv_pack_weights(self.value(wq), self.value(wk), self.value(wv));
            let out = linear_fwd(self.value(x), &wcat, None, false);
            (out, wcat)
        };
        self.push(
            out,
            Op::LinearQkv {
                x,
                wq,
                wk,
                wv,
                wcat,
            },
        )
    }

    /// Fused block-diagonal multi-head softmax attention over a packed
    /// `N × 3d` QKV matrix (see [`Tape::linear_qkv`]): per-head softmax
    /// attention within each `(first_row, row_count)` block, one tape op
    /// for the whole pack. Forward work and memory are `Σnᵢ²` per head
    /// instead of `(Σnᵢ)²`; the backward applies the fused
    /// softmax-attention gradient `dS = A ⊙ (dP − rowsum(dP ⊙ A))` per
    /// block, so no `(ΣN)²` matrix exists on either pass. Forward
    /// kernels are shared with
    /// [`crate::MultiHeadAttention::infer_blocks`], hence bitwise-equal
    /// to it by construction.
    ///
    /// # Panics
    ///
    /// Panics if `qkv` is not `N × 3·heads·head_dim` or a block reaches
    /// outside it.
    pub fn attn_block_diag(
        &mut self,
        qkv: Var,
        blocks: Arc<Vec<(usize, usize)>>,
        heads: usize,
        head_dim: usize,
    ) -> Var {
        let (out, attn) = mha_block_diag_fwd(self.value(qkv), &blocks, heads, head_dim, true);
        self.push(
            out,
            Op::AttnBlockDiag {
                qkv,
                blocks,
                heads,
                head_dim,
                attn,
            },
        )
    }

    /// Fused block-diagonal Performer (FAVOR+) attention over a packed
    /// `N × 3d` QKV matrix: the per-head feature maps run once over the
    /// whole pack, the key aggregation `φ(K)ᵀ·V` and denominators per
    /// block. One tape op for the whole pack; the backward
    /// differentiates through the per-block linear attention and the
    /// exp feature map analytically. `proj` (the stacked random
    /// projection) must be frozen — no gradient is propagated to it,
    /// matching the reference implementation's non-redrawn features.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a block outside `qkv`, or (debug) a
    /// trainable `proj`.
    pub fn performer_block_diag(
        &mut self,
        qkv: Var,
        proj: ParamId,
        blocks: Arc<Vec<(usize, usize)>>,
        heads: usize,
        head_dim: usize,
        features: usize,
    ) -> Var {
        debug_assert!(
            !self.params.is_trainable(proj),
            "performer projection must be frozen: its gradient is never computed"
        );
        let (out, phi_q, phi_k) = performer_block_diag_fwd(
            self.value(qkv),
            self.params.get(proj),
            &blocks,
            heads,
            head_dim,
            features,
            true,
        );
        self.push(
            out,
            Op::PerformerBlockDiag {
                qkv,
                proj,
                blocks,
                heads,
                head_dim,
                features,
                phi_q,
                phi_k,
            },
        )
    }

    /// Runs reverse-mode differentiation from `loss`, accumulating parameter
    /// gradients into `grads`.
    ///
    /// Each upstream gradient buffer is returned to the thread-local pool
    /// as soon as it has been consumed, so repeated backward passes over
    /// same-shaped tapes allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not on this tape.
    pub fn backward(&self, loss: Var, grads: &mut GradStore) {
        let mut local: Vec<Option<Tensor>> = (0..self.vals.len()).map(|_| None).collect();
        let (lr, lc) = self.shape(loss);
        local[loss.0] = Some(Tensor::ones(lr, lc));

        for i in (0..=loss.0).rev() {
            let g = match local[i].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.ops[i] {
                Op::Input => g.recycle(),
                Op::Param(id) => {
                    if self.params.is_trainable(*id) {
                        grads.accumulate(*id, &g);
                    }
                    g.recycle();
                }
                Op::Matmul(a, b) => {
                    let ga = g.matmul_t(self.value(*b));
                    let gb = self.value(*a).t_matmul(&g);
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                    g.recycle();
                }
                Op::Linear { x, w, b } => {
                    self.linear_backward(*x, *w, *b, &g, &mut local);
                    g.recycle();
                }
                Op::LinearRelu { x, w, b } => {
                    // Mask by the output sign (y > 0 ⇔ pre-activation > 0).
                    let y = self.value(Var(i));
                    let mut gm = pool::take_capacity(g.len());
                    gm.extend(g.as_slice().iter().zip(y.as_slice()).map(|(&gi, &yi)| {
                        if yi > 0.0 {
                            gi
                        } else {
                            0.0
                        }
                    }));
                    let gm = Tensor::from_vec(g.rows(), g.cols(), gm);
                    self.linear_backward(*x, *w, *b, &gm, &mut local);
                    gm.recycle();
                    g.recycle();
                }
                Op::Add(a, b) => {
                    acc(&mut local, *a, g.clone());
                    acc(&mut local, *b, g);
                }
                Op::AddBias(a, b) => {
                    let gb = g.col_sum();
                    acc(&mut local, *a, g);
                    acc(&mut local, *b, gb);
                }
                Op::Sub(a, b) => {
                    let gb = g.scale(-1.0);
                    acc(&mut local, *a, g);
                    acc(&mut local, *b, gb);
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(*b));
                    let gb = g.mul(self.value(*a));
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                    g.recycle();
                }
                Op::Div(a, b) => {
                    let bv = self.value(*b);
                    let cv = self.value(Var(i));
                    let ga = g.zip3(bv, |gi, bi| gi / bi);
                    let gb = g.zip3_2(cv, bv, |gi, ci, bi| -gi * ci / bi);
                    acc(&mut local, *a, ga);
                    acc(&mut local, *b, gb);
                    g.recycle();
                }
                Op::Scale(a, s) => {
                    let mut g = g;
                    for v in g.as_mut_slice() {
                        *v *= s;
                    }
                    acc(&mut local, *a, g);
                }
                Op::AddScalar(a, _) => acc(&mut local, *a, g),
                Op::Relu(a) => {
                    // Mask by the output sign so in-place ReLU (which
                    // overwrites its input) differentiates identically.
                    let y = self.value(Var(i));
                    let mut g = g;
                    for (gi, &yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        if yi <= 0.0 {
                            *gi = 0.0;
                        }
                    }
                    acc(&mut local, *a, g);
                }
                Op::Sigmoid(a) => {
                    let y = self.value(Var(i));
                    let mut g = g;
                    for (gi, &yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gi *= yi * (1.0 - yi);
                    }
                    acc(&mut local, *a, g);
                }
                Op::Tanh(a) => {
                    let y = self.value(Var(i));
                    let mut g = g;
                    for (gi, &yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gi *= 1.0 - yi * yi;
                    }
                    acc(&mut local, *a, g);
                }
                Op::Exp(a) => {
                    let y = self.value(Var(i));
                    let mut g = g;
                    for (gi, &yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gi *= yi;
                    }
                    acc(&mut local, *a, g);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.value(Var(i));
                    let mut g = g;
                    for r in 0..y.rows() {
                        let yr = y.row_slice(r);
                        let gr = g.row_slice_mut(r);
                        let dot: f32 = gr.iter().zip(yr).map(|(&x, &y2)| x * y2).sum();
                        for (gi, &yi) in gr.iter_mut().zip(yr) {
                            *gi = (*gi - dot) * yi;
                        }
                    }
                    acc(&mut local, *a, g);
                }
                Op::Transpose(a) => {
                    let ga = g.transpose();
                    acc(&mut local, *a, ga);
                    g.recycle();
                }
                Op::ConcatCols(vars) => {
                    let mut off = 0;
                    for &v in vars {
                        let c = self.shape(v).1;
                        let mut gv = pool::take_capacity(g.rows() * c);
                        for r in 0..g.rows() {
                            gv.extend_from_slice(&g.row_slice(r)[off..off + c]);
                        }
                        acc(&mut local, v, Tensor::from_vec(g.rows(), c, gv));
                        off += c;
                    }
                    g.recycle();
                }
                Op::ColSlice(a, start, len) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for r in 0..n {
                        ga.row_slice_mut(r)[*start..*start + *len].copy_from_slice(g.row_slice(r));
                    }
                    acc(&mut local, *a, ga);
                    g.recycle();
                }
                Op::Gather(a, idx) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = Tensor::zeros(n, d);
                    for (i2, &j) in idx.iter().enumerate() {
                        for (o, &x) in ga.row_slice_mut(j).iter_mut().zip(g.row_slice(i2)) {
                            *o += x;
                        }
                    }
                    acc(&mut local, *a, ga);
                    g.recycle();
                }
                Op::ScatterAdd(a, idx, _) => {
                    let d = g.cols();
                    let mut ga = pool::take_capacity(idx.len() * d);
                    for &j in idx.iter() {
                        ga.extend_from_slice(g.row_slice(j));
                    }
                    acc(&mut local, *a, Tensor::from_vec(idx.len(), d, ga));
                    g.recycle();
                }
                Op::MeanRows(a) => {
                    let (n, d) = self.shape(*a);
                    let inv = 1.0 / n.max(1) as f32;
                    let mut ga = pool::take_capacity(n * d);
                    for _ in 0..n {
                        ga.extend(g.row_slice(0).iter().map(|&x| x * inv));
                    }
                    acc(&mut local, *a, Tensor::from_vec(n, d, ga));
                    g.recycle();
                }
                Op::SumRows(a) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = pool::take_capacity(n * d);
                    for _ in 0..n {
                        ga.extend_from_slice(g.row_slice(0));
                    }
                    acc(&mut local, *a, Tensor::from_vec(n, d, ga));
                    g.recycle();
                }
                Op::RowSum(a) => {
                    let (n, d) = self.shape(*a);
                    let mut ga = pool::take_capacity(n * d);
                    for r in 0..n {
                        let gv = g.get(r, 0);
                        ga.extend(std::iter::repeat_n(gv, d));
                    }
                    acc(&mut local, *a, Tensor::from_vec(n, d, ga));
                    g.recycle();
                }
                Op::MulColVec(a, v) => {
                    let av = self.value(*a);
                    let vv = self.value(*v);
                    let ga = colvec_zip(&g, vv, |gi, s| gi * s);
                    let mut gv = pool::take_capacity(vv.rows());
                    gv.extend((0..g.rows()).map(|r| {
                        g.row_slice(r)
                            .iter()
                            .zip(av.row_slice(r))
                            .map(|(&x, &y)| x * y)
                            .sum::<f32>()
                    }));
                    acc(&mut local, *a, ga);
                    acc(&mut local, *v, Tensor::from_vec(vv.rows(), 1, gv));
                    g.recycle();
                }
                Op::DivColVec(a, v) => {
                    let vv = self.value(*v);
                    let cv = self.value(Var(i));
                    let ga = colvec_zip(&g, vv, |gi, s| gi / s);
                    let mut gv = pool::take_capacity(vv.rows());
                    gv.extend((0..g.rows()).map(|r| {
                        let s: f32 = g
                            .row_slice(r)
                            .iter()
                            .zip(cv.row_slice(r))
                            .map(|(&x, &y)| x * y)
                            .sum();
                        -s / vv.get(r, 0)
                    }));
                    acc(&mut local, *a, ga);
                    acc(&mut local, *v, Tensor::from_vec(vv.rows(), 1, gv));
                    g.recycle();
                }
                Op::SubColVec(a, v) => {
                    let mut gv = pool::take_capacity(g.rows());
                    gv.extend((0..g.rows()).map(|r| -g.row_slice(r).iter().sum::<f32>()));
                    let gv = Tensor::from_vec(g.rows(), 1, gv);
                    acc(&mut local, *a, g);
                    acc(&mut local, *v, gv);
                }
                Op::Dropout(a, mask) => {
                    let mut g = g;
                    for (gi, &m) in g.as_mut_slice().iter_mut().zip(mask.iter()) {
                        *gi *= m;
                    }
                    acc(&mut local, *a, g);
                }
                Op::BatchNorm {
                    x,
                    gamma,
                    beta,
                    xhat,
                    invstd,
                } => {
                    let (n, d) = xhat.shape();
                    let gv = self.value(*gamma);
                    let mut dgamma = pool::take_zeroed(d);
                    let mut dbeta = pool::take_zeroed(d);
                    let mut sum_dxhat = pool::take_zeroed(d);
                    let mut sum_dxhat_xhat = pool::take_zeroed(d);
                    for r in 0..n {
                        let gr = g.row_slice(r);
                        let xr = xhat.row_slice(r);
                        for c in 0..d {
                            dgamma[c] += gr[c] * xr[c];
                            dbeta[c] += gr[c];
                            let dxh = gr[c] * gv.as_slice()[c];
                            sum_dxhat[c] += dxh;
                            sum_dxhat_xhat[c] += dxh * xr[c];
                        }
                    }
                    let nf = n.max(1) as f32;
                    let mut gx = pool::take_capacity(n * d);
                    for r in 0..n {
                        let gr = g.row_slice(r);
                        let xr = xhat.row_slice(r);
                        gx.extend((0..d).map(|c| {
                            let dxh = gr[c] * gv.as_slice()[c];
                            (invstd.as_slice()[c] / nf)
                                * (nf * dxh - sum_dxhat[c] - xr[c] * sum_dxhat_xhat[c])
                        }));
                    }
                    pool::put(sum_dxhat);
                    pool::put(sum_dxhat_xhat);
                    acc(&mut local, *x, Tensor::from_vec(n, d, gx));
                    acc(&mut local, *gamma, Tensor::from_vec(1, d, dgamma));
                    acc(&mut local, *beta, Tensor::from_vec(1, d, dbeta));
                    g.recycle();
                }
                Op::BceWithLogits(a, y) => {
                    let z = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let mut data = pool::take_capacity(z.len());
                    data.extend(
                        z.as_slice()
                            .iter()
                            .zip(y.iter())
                            .map(|(&zi, &yi)| (stable_sigmoid(zi) - yi) * gscale),
                    );
                    acc(&mut local, *a, Tensor::from_vec(z.rows(), z.cols(), data));
                    g.recycle();
                }
                Op::MseLoss(a, y) => {
                    let p = self.value(*a);
                    let gscale = 2.0 * g.item() / y.len().max(1) as f32;
                    let mut data = pool::take_capacity(p.len());
                    data.extend(
                        p.as_slice()
                            .iter()
                            .zip(y.iter())
                            .map(|(&pi, &yi)| (pi - yi) * gscale),
                    );
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                    g.recycle();
                }
                Op::L1Loss(a, y) => {
                    let p = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let mut data = pool::take_capacity(p.len());
                    data.extend(
                        p.as_slice()
                            .iter()
                            .zip(y.iter())
                            .map(|(&pi, &yi)| (pi - yi).signum() * gscale),
                    );
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                    g.recycle();
                }
                Op::HuberLoss(a, y, delta) => {
                    let p = self.value(*a);
                    let gscale = g.item() / y.len().max(1) as f32;
                    let mut data = pool::take_capacity(p.len());
                    data.extend(
                        p.as_slice()
                            .iter()
                            .zip(y.iter())
                            .map(|(&pi, &yi)| (pi - yi).clamp(-delta, *delta) * gscale),
                    );
                    acc(&mut local, *a, Tensor::from_vec(p.rows(), p.cols(), data));
                    g.recycle();
                }
                Op::CrossEntropy {
                    logits,
                    labels,
                    softmax,
                } => {
                    let n = softmax.rows();
                    let gscale = g.item() / n.max(1) as f32;
                    let mut ga = softmax.scale(gscale);
                    for (r, &lab) in labels.iter().enumerate() {
                        ga.set(r, lab, ga.get(r, lab) - gscale);
                    }
                    acc(&mut local, *logits, ga);
                    g.recycle();
                }
                Op::LinearQkv {
                    x,
                    wq,
                    wk,
                    wv,
                    wcat,
                } => {
                    let xv = self.value(*x);
                    let (n, d_in) = xv.shape();
                    let d3 = g.cols();
                    let d_out = d3 / 3;
                    // gx = g · Wcatᵀ: one GEMM over the packed weight.
                    let mut gx = pool::take_zeroed(n * d_in);
                    gemm_abt(g.as_slice(), wcat.as_slice(), &mut gx, n, d3, d_in);
                    // gWcat = xᵀ · g, then split into the three
                    // projection gradients (column blocks of the pack).
                    let mut gw = pool::take_zeroed(d_in * d3);
                    gemm_atb(xv.as_slice(), g.as_slice(), &mut gw, d_in, n, d3);
                    for (slot, var) in [(0usize, *wq), (1, *wk), (2, *wv)] {
                        let mut part = pool::take_capacity(d_in * d_out);
                        for r in 0..d_in {
                            let base = r * d3 + slot * d_out;
                            part.extend_from_slice(&gw[base..base + d_out]);
                        }
                        acc(&mut local, var, Tensor::from_vec(d_in, d_out, part));
                    }
                    pool::put(gw);
                    acc(&mut local, *x, Tensor::from_vec(n, d_in, gx));
                    g.recycle();
                }
                Op::AttnBlockDiag {
                    qkv,
                    blocks,
                    heads,
                    head_dim,
                    attn,
                } => {
                    let qkv_v = self.value(*qkv);
                    let (heads, dh) = (*heads, *head_dim);
                    let dim = heads * dh;
                    let scale = 1.0 / (dh as f32).sqrt();
                    let mut gq = Tensor::zeros(qkv_v.rows(), 3 * dim);
                    for (bi, &(r0, len)) in blocks.iter().enumerate() {
                        for h in 0..heads {
                            let off = h * dh;
                            let a = &attn[bi * heads + h]; // len×len probs
                            let gh = block_slice(&g, r0, len, off, dh);
                            let vh = block_slice(qkv_v, r0, len, 2 * dim + off, dh);
                            // dV = Aᵀ·gO
                            let dv = a.t_matmul(&gh);
                            // dP = gO·Vᵀ — len×len, per block only: the
                            // score-gradient matrix never exceeds one
                            // graph's quadratic footprint.
                            let mut ds = gh.matmul_t(&vh);
                            // dS = scale · A ⊙ (dP − rowsum(dP ⊙ A)):
                            // the softmax backward fused with the score
                            // scaling, in place on dP.
                            for r in 0..len {
                                let ar = a.row_slice(r);
                                let dr = ds.row_slice_mut(r);
                                let dot: f32 = dr.iter().zip(ar).map(|(&x, &y)| x * y).sum();
                                for (dsv, &av) in dr.iter_mut().zip(ar) {
                                    *dsv = (*dsv - dot) * av * scale;
                                }
                            }
                            let qh = block_slice(qkv_v, r0, len, off, dh);
                            let kh = block_slice(qkv_v, r0, len, dim + off, dh);
                            // dQ = dS·K and dK = dSᵀ·Q, written straight
                            // into the packed QKV gradient (head column
                            // ranges and blocks are disjoint).
                            let dq = ds.matmul(&kh);
                            let dk = ds.t_matmul(&qh);
                            block_write(&mut gq, &dq, r0, off);
                            block_write(&mut gq, &dk, r0, dim + off);
                            block_write(&mut gq, &dv, r0, 2 * dim + off);
                            for t in [gh, vh, qh, kh, dv, ds, dq, dk] {
                                t.recycle();
                            }
                        }
                    }
                    acc(&mut local, *qkv, gq);
                    g.recycle();
                }
                Op::PerformerBlockDiag {
                    qkv,
                    proj,
                    blocks,
                    heads,
                    head_dim,
                    features,
                    phi_q,
                    phi_k,
                } => {
                    let qkv_v = self.value(*qkv);
                    let y = self.value(Var(i));
                    let (heads, dh, m) = (*heads, *head_dim, *features);
                    let dim = heads * dh;
                    let n = qkv_v.rows();
                    let inv_sqrt_m = 1.0 / (m as f32).sqrt();
                    let xscale = 1.0 / (dh as f32).powf(0.25);
                    let mut gq = Tensor::zeros(n, 3 * dim);
                    for h in 0..heads {
                        let off = h * dh;
                        let pq_all = &phi_q[h];
                        let pk_all = &phi_k[h];
                        let mut dphi_q = Tensor::zeros(n, m);
                        let mut dphi_k = Tensor::zeros(n, m);
                        for &(r0, len) in blocks.iter() {
                            let pq = block_slice(pq_all, r0, len, 0, m);
                            let pk = block_slice(pk_all, r0, len, 0, m);
                            let vh = block_slice(qkv_v, r0, len, 2 * dim + off, dh);
                            let gh = block_slice(&g, r0, len, off, dh);
                            let yb = block_slice(y, r0, len, off, dh);
                            // Cheap forward intermediates, recomputed per
                            // block: kv = φ(K)ᵀ·V, ksum = φ(K)ᵀ·1,
                            // den = φ(Q)·ksum.
                            let kv = pk.t_matmul(&vh); // m×dh
                            let mut ksum = pool::take_zeroed(m);
                            for r in 0..len {
                                for (s, &v) in ksum.iter_mut().zip(pk.row_slice(r)) {
                                    *s += v;
                                }
                            }
                            let ksum = Tensor::from_vec(m, 1, ksum);
                            let den = pq.matmul(&ksum); // len×1
                                                        // out = num/den ⇒ dnum = gO/den,
                                                        // dden = −rowsum(gO ⊙ out)/den.
                            let mut dnum = pool::take_capacity(len * dh);
                            let mut dden = pool::take_capacity(len);
                            for r in 0..len {
                                let dval = den.get(r, 0);
                                let mut s = 0.0f32;
                                for (&gv, &yv) in gh.row_slice(r).iter().zip(yb.row_slice(r)) {
                                    s += gv * yv;
                                    dnum.push(gv / dval);
                                }
                                dden.push(-s / dval);
                            }
                            let dnum = Tensor::from_vec(len, dh, dnum);
                            let dden = Tensor::from_vec(len, 1, dden);
                            // dφ(Q) = dnum·kvᵀ + dden·ksumᵀ
                            let mut dp = dnum.matmul_t(&kv); // len×m
                            for r in 0..len {
                                let dd = dden.get(r, 0);
                                for (o, &ks) in dp.row_slice_mut(r).iter_mut().zip(ksum.as_slice())
                                {
                                    *o += dd * ks;
                                }
                            }
                            // dkv = φ(Q)ᵀ·dnum, dksum = φ(Q)ᵀ·dden
                            let dkv = pq.t_matmul(&dnum); // m×dh
                            let dksum = pq.t_matmul(&dden); // m×1
                                                            // dφ(K) = V·dkvᵀ + 1·dksumᵀ
                            let mut dpk = vh.matmul_t(&dkv); // len×m
                            for r in 0..len {
                                for (o, &dks) in
                                    dpk.row_slice_mut(r).iter_mut().zip(dksum.as_slice())
                                {
                                    *o += dks;
                                }
                            }
                            // dV = φ(K)·dkv, straight into the packed
                            // QKV gradient.
                            let dvh = pk.matmul(&dkv); // len×dh
                            block_write(&mut gq, &dvh, r0, 2 * dim + off);
                            block_write(&mut dphi_q, &dp, r0, 0);
                            block_write(&mut dphi_k, &dpk, r0, 0);
                            for t in [
                                pq, pk, vh, gh, yb, kv, ksum, den, dnum, dden, dp, dkv, dksum, dpk,
                                dvh,
                            ] {
                                t.recycle();
                            }
                        }
                        // Feature-map backward, once over the whole pack
                        // per head (mirrors the forward structure):
                        // φ = (exp(z) + ε)/√m ⇒ dz = dφ ⊙ (φ − ε/√m);
                        // z = x̂Ωᵀ − ‖x̂‖²/2 ⇒ dx̂ = dz·Ω − x̂·rowsum(dz);
                        // x̂ = x/d^{1/4} ⇒ dx = dx̂/d^{1/4}.
                        let rows: Vec<usize> = (h * m..(h + 1) * m).collect();
                        let omega = gather_rows(self.params.get(*proj), &rows); // m×dh
                        for (dphi, phi, col0) in
                            [(dphi_q, pq_all, off), (dphi_k, pk_all, dim + off)]
                        {
                            let mut dz = dphi;
                            for (dzv, &pv) in dz.as_mut_slice().iter_mut().zip(phi.as_slice()) {
                                *dzv *= pv - 1e-6 * inv_sqrt_m;
                            }
                            let dxs = dz.matmul(&omega); // N×dh
                            for r in 0..n {
                                let rs: f32 = dz.row_slice(r).iter().sum();
                                let xrow = &qkv_v.row_slice(r)[col0..col0 + dh];
                                let grow = &mut gq.row_slice_mut(r)[col0..col0 + dh];
                                for ((o, &dxv), &xv) in
                                    grow.iter_mut().zip(dxs.row_slice(r)).zip(xrow)
                                {
                                    *o = xscale * (dxv - (xscale * xv) * rs);
                                }
                            }
                            dz.recycle();
                            dxs.recycle();
                        }
                        omega.recycle();
                    }
                    acc(&mut local, *qkv, gq);
                    g.recycle();
                }
            }
        }
    }

    /// Shared backward for `Linear`/`LinearRelu`: `g` is the (possibly
    /// relu-masked) output gradient.
    fn linear_backward(
        &self,
        x: Var,
        w: Var,
        b: Option<Var>,
        g: &Tensor,
        local: &mut [Option<Tensor>],
    ) {
        let (gx, gw) = {
            let xv = self.value(x);
            let wv = self.value(w);
            // gx = g · Wᵀ
            let mut gx = pool::take_zeroed(xv.len());
            gemm_abt(
                g.as_slice(),
                wv.as_slice(),
                &mut gx,
                g.rows(),
                g.cols(),
                wv.rows(),
            );
            // gW = xᵀ · g
            let mut gw = pool::take_zeroed(wv.len());
            gemm_atb(
                xv.as_slice(),
                g.as_slice(),
                &mut gw,
                wv.rows(),
                xv.rows(),
                g.cols(),
            );
            (
                Tensor::from_vec(xv.rows(), xv.cols(), gx),
                Tensor::from_vec(wv.rows(), wv.cols(), gw),
            )
        };
        if let Some(bv) = b {
            acc(local, bv, g.col_sum());
        }
        acc(local, x, gx);
        acc(local, w, gw);
    }
}

impl Drop for Tape<'_> {
    fn drop(&mut self) {
        self.recycle_storage();
    }
}

/// Accumulates `g` into the local gradient slot for `v`; when the slot is
/// already occupied the incoming buffer is recycled after the add.
fn acc(local: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut local[v.0] {
        Some(t) => {
            t.add_assign(&g);
            g.recycle();
        }
        slot @ None => *slot = Some(g),
    }
}

fn softmax_into(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for (o, &x) in out.iter_mut().zip(row) {
        *o = fast_exp(x - max);
    }
    let sum: f32 = out.iter().sum();
    let inv = 1.0 / sum.max(1e-30);
    for o in out.iter_mut() {
        *o *= inv;
    }
}

impl Tensor {
    fn zip3(&self, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut data = pool::take_capacity(self.len());
        data.extend(
            self.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(&x, &y)| f(x, y)),
        );
        Tensor::from_vec(self.rows(), self.cols(), data)
    }

    fn zip3_2(&self, b: &Tensor, c: &Tensor, f: impl Fn(f32, f32, f32) -> f32) -> Tensor {
        let mut data = pool::take_capacity(self.len());
        data.extend(
            self.as_slice()
                .iter()
                .zip(b.as_slice())
                .zip(c.as_slice())
                .map(|((&x, &y), &z)| f(x, y, z)),
        );
        Tensor::from_vec(self.rows(), self.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xavier_uniform;

    /// Finite-difference gradient check for a scalar-valued function of one
    /// parameter.
    fn grad_check<F>(shape: (usize, usize), build: F)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let init = xavier_uniform(shape.0, shape.1, &mut rng);
        let w = store.register("w", init, true);

        // analytic gradient (inner scope: Tape's Drop recycles buffers, so
        // the tape must die before the store is mutated below)
        let analytic = {
            let mut tape = Tape::new(&store, false, 0);
            let wv = tape.param(w);
            let loss = build(&mut tape, wv);
            assert_eq!(
                tape.shape(loss),
                (1, 1),
                "grad_check requires a scalar loss"
            );
            let mut grads = GradStore::new(&store);
            tape.backward(loss, &mut grads);
            grads.get(w).expect("missing gradient").clone()
        };

        // numeric gradient
        let eps = 1e-3f32;
        for idx in 0..shape.0 * shape.1 {
            let orig = store.get(w).as_slice()[idx];
            store.get_mut(w).as_mut_slice()[idx] = orig + eps;
            let lp = {
                let mut tp = Tape::new(&store, false, 0);
                let wv = tp.param(w);
                let vp = build(&mut tp, wv);
                tp.value(vp).item()
            };
            store.get_mut(w).as_mut_slice()[idx] = orig - eps;
            let lm = {
                let mut tm = Tape::new(&store, false, 0);
                let wv = tm.param(w);
                let vm = build(&mut tm, wv);
                tm.value(vm).item()
            };
            store.get_mut(w).as_mut_slice()[idx] = orig;

            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mse() {
        grad_check((3, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[0.5, -1.0, 2.0]]));
            let y = t.matmul(x, w);
            t.mse_loss(y, &[0.3, -0.7])
        });
    }

    #[test]
    fn grad_fused_linear() {
        grad_check((3, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.8]]));
            let b = t.input(Tensor::row(&[0.2, -0.4]));
            let y = t.linear(x, w, Some(b));
            t.mse_loss(y, &[0.3, -0.7, 0.1, 0.9])
        });
    }

    #[test]
    fn grad_fused_linear_relu() {
        grad_check((3, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.8]]));
            let b = t.input(Tensor::row(&[0.2, -0.4]));
            let y = t.linear_relu(x, w, Some(b));
            t.mse_loss(y, &[0.3, -0.7, 0.1, 0.9])
        });
    }

    #[test]
    fn fused_linear_matches_unfused() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(4, 3, &mut rng), true);
        let b = store.register("b", xavier_uniform(1, 3, &mut rng), true);
        let x = Tensor::from_vec(5, 4, (0..20).map(|i| (i as f32 * 0.3).sin()).collect());

        let mut t1 = Tape::new(&store, false, 0);
        let (xv, wv, bv) = (t1.input(x.clone()), t1.param(w), t1.param(b));
        let y1 = t1.linear(xv, wv, Some(bv));

        let mut t2 = Tape::new(&store, false, 0);
        let (xv2, wv2, bv2) = (t2.input(x), t2.param(w), t2.param(b));
        let mm = t2.matmul(xv2, wv2);
        let y2 = t2.add_bias(mm, bv2);

        for (a, bb) in t1.value(y1).as_slice().iter().zip(t2.value(y2).as_slice()) {
            assert!((a - bb).abs() < 1e-5, "{a} vs {bb}");
        }
    }

    #[test]
    fn inplace_ops_match_plain_ops_bitwise() {
        let store = ParamStore::new();
        let x = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 - 6.0) * 0.5).collect());
        let y = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 * 0.7).cos()).collect());

        let mut t1 = Tape::new(&store, false, 0);
        let (a1, b1) = (t1.input(x.clone()), t1.input(y.clone()));
        let s1 = t1.add(a1, b1);
        let s1 = t1.scale(s1, 1.7);
        let s1 = t1.add_scalar(s1, -0.3);
        let s1 = t1.relu(s1);
        let out1 = t1.value(s1).clone();

        let mut t2 = Tape::new(&store, false, 0);
        let (a2, b2) = (t2.input(x), t2.input(y));
        let s2 = t2.add_inplace(a2, b2);
        let s2 = t2.scale_inplace(s2, 1.7);
        let s2 = t2.add_scalar_inplace(s2, -0.3);
        let s2 = t2.relu_inplace(s2);
        assert_eq!(out1.as_slice(), t2.value(s2).as_slice());
    }

    #[test]
    fn inplace_grads_match_plain_grads() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(2, 3, &mut rng), true);
        let run = |inplace: bool| {
            let mut t = Tape::new(&store, false, 0);
            let wv = t.param(w);
            let x = t.input(Tensor::from_rows(&[&[1.0, -0.5], &[0.3, 2.0]]));
            let h = t.matmul(x, wv);
            let c = t.input(Tensor::from_rows(&[&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6]]));
            let s = if inplace {
                t.add_inplace(h, c)
            } else {
                t.add(h, c)
            };
            let s = if inplace {
                t.scale_inplace(s, 0.9)
            } else {
                t.scale(s, 0.9)
            };
            let s = if inplace {
                t.relu_inplace(s)
            } else {
                t.relu(s)
            };
            let loss = t.mse_loss(s, &[0.0; 6]);
            let mut grads = GradStore::new(&store);
            t.backward(loss, &mut grads);
            grads.get(w).unwrap().clone()
        };
        assert_eq!(run(false).as_slice(), run(true).as_slice());
    }

    #[test]
    #[should_panic(expected = "consumed by an in-place op")]
    fn reading_consumed_value_panics() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store, false, 0);
        let a = t.input(Tensor::row(&[1.0, 2.0]));
        let b = t.input(Tensor::row(&[3.0, 4.0]));
        let _ = t.add_inplace(a, b);
        let _ = t.value(a);
    }

    #[test]
    fn shape_survives_inplace_consumption() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store, false, 0);
        let a = t.input(Tensor::zeros(3, 5));
        let b = t.input(Tensor::zeros(3, 5));
        let _ = t.add_inplace(a, b);
        assert_eq!(t.shape(a), (3, 5));
    }

    #[test]
    fn tape_reuse_after_reset_is_bitwise_stable() {
        crate::pool::reset();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(4, 4, &mut rng), true);
        let run_once = |tape: &mut Tape| -> Vec<f32> {
            let wv = tape.param(w);
            let x = tape.input(Tensor::from_vec(
                6,
                4,
                (0..24).map(|i| (i as f32 * 0.21).sin()).collect(),
            ));
            let h = tape.matmul(x, wv);
            let h = tape.relu(h);
            let s = tape.softmax_rows(h);
            tape.value(s).as_slice().to_vec()
        };
        let mut tape = Tape::new(&store, false, 0);
        let first = run_once(&mut tape);
        tape.reset();
        let second = run_once(&mut tape);
        assert_eq!(
            first, second,
            "pool-recycled rerun must be bitwise identical"
        );
        let stats = crate::pool::stats();
        assert!(stats.hits > 0, "second run should be served from the pool");
    }

    #[test]
    fn grad_sigmoid_bce() {
        grad_check((4, 1), |t, w| {
            let x = t.input(Tensor::from_rows(&[
                &[1.0, -0.5, 0.2, 0.9],
                &[0.1, 0.4, -1.2, 0.0],
            ]));
            let z = t.matmul(x, w);
            t.bce_with_logits(z, &[1.0, 0.0])
        });
    }

    #[test]
    fn grad_relu_tanh_chain() {
        grad_check((2, 3), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]));
            let h = t.matmul(x, w);
            let h = t.relu(h);
            let h = t.tanh(h);
            t.mse_loss(h, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        });
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check((2, 4), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.3], &[0.0, 1.0]]));
            let h = t.matmul(x, w);
            let s = t.softmax_rows(h);
            t.mse_loss(
                s,
                &[
                    0.1, 0.2, 0.3, 0.4, 0.25, 0.25, 0.25, 0.25, 0.7, 0.1, 0.1, 0.1,
                ],
            )
        });
    }

    #[test]
    fn grad_gather_scatter() {
        grad_check((4, 2), |t, w| {
            let idx = Arc::new(vec![0usize, 2, 2, 3, 1]);
            let gathered = t.gather(w, idx.clone());
            let back = t.scatter_add(gathered, Arc::new(vec![0usize, 1, 1, 0, 2]), 3);
            t.mse_loss(back, &[0.1; 6])
        });
    }

    #[test]
    fn grad_colvec_broadcasts() {
        grad_check((3, 3), |t, w| {
            let s = t.row_sum(w);
            let s = t.add_scalar(s, 2.0);
            let d = t.div_colvec(w, s);
            let m = t.mul_colvec(d, s);
            let sub = t.sub_colvec(m, s);
            t.mse_loss(sub, &[0.0; 9])
        });
    }

    #[test]
    fn grad_batch_norm() {
        grad_check((3, 2), |t, w| {
            let gamma = t.input(Tensor::row(&[1.3, 0.7]));
            let beta = t.input(Tensor::row(&[0.1, -0.2]));
            let x = t.input(Tensor::from_rows(&[
                &[1.0, 2.0, 3.0],
                &[-1.0, 0.5, 1.5],
                &[2.0, -0.3, 0.7],
                &[0.2, 0.9, -1.1],
            ]));
            let h = t.matmul(x, w);
            let (y, _, _) = t.batch_norm(h, gamma, beta, 1e-5, None);
            t.mse_loss(y, &[0.1; 8])
        });
    }

    #[test]
    fn grad_concat_slice() {
        grad_check((2, 4), |t, w| {
            let left = t.col_slice(w, 0, 2);
            let right = t.col_slice(w, 2, 2);
            let swapped = t.concat_cols(&[right, left]);
            let act = t.sigmoid(swapped);
            t.l1_loss(act, &[0.5; 8])
        });
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check((3, 3), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[1.0, 0.0, -1.0], &[0.2, 0.4, 0.8]]));
            let logits = t.matmul(x, w);
            t.cross_entropy(logits, &[2, 0])
        });
    }

    #[test]
    fn grad_huber() {
        grad_check((2, 2), |t, w| {
            let x = t.input(Tensor::from_rows(&[&[3.0, -2.0]]));
            let y = t.matmul(x, w);
            t.huber_loss(y, &[0.0, 10.0], 1.0)
        });
    }

    #[test]
    fn grad_exp_div() {
        grad_check((2, 2), |t, w| {
            let e = t.exp(w);
            let one = t.input(Tensor::ones(2, 2));
            let s = t.add(e, one);
            let d = t.div(e, s);
            t.mse_loss(d, &[0.3, 0.4, 0.5, 0.6])
        });
    }

    #[test]
    fn grad_mean_sum_rows() {
        grad_check((3, 2), |t, w| {
            let m = t.mean_rows(w);
            let s = t.sum_rows(w);
            let both = t.concat_cols(&[m, s]);
            t.mse_loss(both, &[0.1, 0.2, 0.3, 0.4])
        });
    }

    #[test]
    fn grad_transpose_matmul() {
        grad_check((3, 2), |t, w| {
            let wt = t.transpose(w);
            let prod = t.matmul(w, wt);
            t.mse_loss(prod, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0])
        });
    }

    #[test]
    fn dropout_eval_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(Tensor::row(&[1.0, 2.0, 3.0]));
        let y = tape.dropout(x, 0.5);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_scales_by_keep() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, true, 7);
        let x = tape.input(Tensor::ones(100, 10));
        let y = tape.dropout(x, 0.4);
        let m = tape.value(y).mean();
        // Inverted dropout preserves the expectation.
        assert!((m - 1.0).abs() < 0.15, "dropout mean {m}");
    }

    #[test]
    fn frozen_params_receive_no_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.register("w", xavier_uniform(2, 2, &mut rng), false);
        let mut tape = Tape::new(&store, true, 0);
        let wv = tape.param(w);
        let loss = tape.mse_loss(wv, &[0.0; 4]);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        assert!(grads.get(w).is_none());
    }
}
