//! Runtime-dispatched SIMD backends for the hot inference kernels.
//!
//! The release binary is no longer compiled with `-C target-cpu=native`:
//! instead, every hot kernel (the fixed-width GEMM microkernels, the
//! generic blocked GEMM, the `fast_exp`/sigmoid/softmax sweeps and the
//! fused infer epilogues) has explicit `std::arch` implementations for
//! AVX2+FMA and AVX-512F, selected **once per process** by
//! [`Backend::active`] from runtime CPU-feature detection. The same
//! binary runs at full speed on machines it was not compiled on, and
//! falls back to the portable scalar kernels everywhere else.
//!
//! # Bitwise parity contract
//!
//! Every SIMD kernel is **bitwise-equal** to its scalar counterpart, not
//! merely close. This works because the scalar kernels were already
//! written with vectorization in mind:
//!
//! * GEMM accumulation chains are per-output-element (column `j` of a
//!   row never mixes with column `j+1`), so vectorizing **across
//!   columns** with per-lane FMA preserves the exact sequential k-order
//!   of every element's chain. Scalar `f32::mul_add` and `vfmaddps` are
//!   both correctly-rounded fused multiply-adds, hence identical.
//! * [`crate::tensor::fast_exp`] and the fused epilogues are pure
//!   elementwise dataflow (no cross-lane reduction), transcribed op for
//!   op: where the scalar source uses separate `*`/`+`, the SIMD kernel
//!   uses `mul_ps`/`add_ps` — never a contracting FMA.
//! * Order-sensitive reductions (softmax row sums, row-max folds) stay
//!   scalar on every backend; only the elementwise passes vectorize.
//! * The `dot`/`laned_sum` kernels keep their fixed 8-lane reduction
//!   tree on every backend (AVX-512 reuses the 8-lane kernel), so the
//!   summation order never depends on the vector width.
//!
//! The cross-backend parity test matrix (`crates/nn/tests/simd_parity.rs`
//! plus this module's unit tests) enforces the contract for every
//! microkernel width and fused op, including ragged shapes.
//!
//! # Selecting a backend
//!
//! * Default: best available, probed once (`Avx512` → `Avx2` → `Scalar`).
//! * `CIRGPS_FORCE_BACKEND=scalar|avx2|avx512` forces one; an
//!   unavailable forced backend **panics** at first kernel use rather
//!   than silently falling back (CI relies on this to keep its matrix
//!   legs honest).
//! * [`Backend::force`] does the same programmatically (the CLI's
//!   `--backend` flag) with a `Result` instead of a panic.
//!
//! See `docs/simd-quant.md` for the dispatch table and measurements.

use std::sync::OnceLock;

/// Which kernel implementation set a process uses. Selected once, used
/// by every subsequent tensor/infer kernel call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels (the reference semantics). `f32::mul_add`
    /// lowers to a correctly-rounded libm call on CPUs without FMA, so
    /// results are identical everywhere — only speed differs.
    Scalar,
    /// 8-lane AVX2 + FMA kernels.
    Avx2,
    /// 16-lane AVX-512F kernels for the wide GEMM microkernels; narrower
    /// and reduction-order-sensitive kernels reuse the AVX2 set (an
    /// AVX-512 machine always has AVX2+FMA).
    Avx512,
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

impl Backend {
    /// All backends, best-first (used by tests and probes).
    pub const ALL: [Backend; 3] = [Backend::Avx512, Backend::Avx2, Backend::Scalar];

    /// The backend's lowercase name (`scalar` / `avx2` / `avx512`), as
    /// accepted by [`Backend::parse`] and `CIRGPS_FORCE_BACKEND`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Parses a backend name (the `CIRGPS_FORCE_BACKEND` /
    /// `--backend` vocabulary).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values on unknown input.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "avx2" => Ok(Backend::Avx2),
            "avx512" => Ok(Backend::Avx512),
            other => Err(format!(
                "unknown backend {other:?} (expected scalar, avx2 or avx512)"
            )),
        }
    }

    /// Whether this CPU can run the backend's kernels.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx2")
                    && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Best backend this CPU supports (ignores the env override).
    pub fn detect() -> Backend {
        *Backend::ALL
            .iter()
            .find(|b| b.available())
            .unwrap_or(&Backend::Scalar)
    }

    /// The process-wide backend every kernel dispatches on.
    ///
    /// First call wins: probes the CPU, honoring `CIRGPS_FORCE_BACKEND`
    /// if set; later calls return the cached choice.
    ///
    /// # Panics
    ///
    /// Panics if `CIRGPS_FORCE_BACKEND` names an unknown backend or one
    /// this CPU cannot run — a forced backend must never silently
    /// degrade to another implementation.
    pub fn active() -> Backend {
        *ACTIVE.get_or_init(|| match std::env::var("CIRGPS_FORCE_BACKEND") {
            Ok(name) if !name.is_empty() => {
                let b =
                    Backend::parse(&name).unwrap_or_else(|e| panic!("CIRGPS_FORCE_BACKEND: {e}"));
                assert!(
                    b.available(),
                    "CIRGPS_FORCE_BACKEND={} but this CPU does not support it \
                     (refusing to silently fall back)",
                    b.name()
                );
                b
            }
            _ => Backend::detect(),
        })
    }

    /// Selects the process-wide backend programmatically (the CLI's
    /// `--backend` flag). Must run before the first kernel dispatch.
    ///
    /// # Errors
    ///
    /// Fails if the backend is unavailable on this CPU, or if dispatch
    /// already latched a different backend (first selection wins).
    pub fn force(b: Backend) -> Result<(), String> {
        if !b.available() {
            return Err(format!(
                "backend {} is not available on this CPU (best: {})",
                b.name(),
                Backend::detect().name()
            ));
        }
        let got = *ACTIVE.get_or_init(|| b);
        if got != b {
            return Err(format!(
                "backend already selected as {} (a process picks its backend once)",
                got.name()
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels (8 lanes).
//
// Safety convention: every function in this module is `unsafe fn` with
// `#[target_feature(enable = "avx2,fma")]`; callers must have verified
// `Backend::Avx2.available()` (the dispatchers in `tensor`/`infer` only
// reach these arms when `Backend::active()` is Avx2/Avx512, which
// implies the probe succeeded).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
// Register-accumulator arrays are indexed by vector lane on purpose: the
// `acc[v]` form mirrors the pointer arithmetic around it.
#[allow(clippy::needless_range_loop)]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// `out += a · b` for compile-time width `N` (multiple of 8): the
    /// SIMD twin of `tensor::gemm_fixed_n`. Per-element k-order matches
    /// the scalar kernel: groups of four sequential FMAs, then single
    /// FMAs for the k tail.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gemm_fixed<const N: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
    ) {
        debug_assert_eq!(N % 8, 0);
        debug_assert!(a.len() >= m * k && b.len() >= k * N && out.len() >= m * N);
        let nv = N / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        // Two output rows per pass while the accumulators fit the
        // register file (nv ≤ 4 ⇒ ≤ 8 live accumulators); rows are
        // independent so per-row arithmetic is unchanged.
        while nv <= 4 && i + 2 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let o0 = op.add(i * N);
            let o1 = op.add((i + 1) * N);
            let mut acc0 = [_mm256_setzero_ps(); 4];
            let mut acc1 = [_mm256_setzero_ps(); 4];
            for v in 0..nv {
                acc0[v] = _mm256_loadu_ps(o0.add(v * 8));
                acc1[v] = _mm256_loadu_ps(o1.add(v * 8));
            }
            let mut p = 0;
            while p + 4 <= k {
                let x0 = _mm256_set1_ps(*ar0.add(p));
                let x1 = _mm256_set1_ps(*ar0.add(p + 1));
                let x2 = _mm256_set1_ps(*ar0.add(p + 2));
                let x3 = _mm256_set1_ps(*ar0.add(p + 3));
                let y0 = _mm256_set1_ps(*ar1.add(p));
                let y1 = _mm256_set1_ps(*ar1.add(p + 1));
                let y2 = _mm256_set1_ps(*ar1.add(p + 2));
                let y3 = _mm256_set1_ps(*ar1.add(p + 3));
                for v in 0..nv {
                    let b0 = _mm256_loadu_ps(bp.add(p * N + v * 8));
                    let b1 = _mm256_loadu_ps(bp.add((p + 1) * N + v * 8));
                    let b2 = _mm256_loadu_ps(bp.add((p + 2) * N + v * 8));
                    let b3 = _mm256_loadu_ps(bp.add((p + 3) * N + v * 8));
                    let t0 = _mm256_fmadd_ps(x1, b1, _mm256_fmadd_ps(x0, b0, acc0[v]));
                    acc0[v] = _mm256_fmadd_ps(x3, b3, _mm256_fmadd_ps(x2, b2, t0));
                    let t1 = _mm256_fmadd_ps(y1, b1, _mm256_fmadd_ps(y0, b0, acc1[v]));
                    acc1[v] = _mm256_fmadd_ps(y3, b3, _mm256_fmadd_ps(y2, b2, t1));
                }
                p += 4;
            }
            while p < k {
                let x = _mm256_set1_ps(*ar0.add(p));
                let y = _mm256_set1_ps(*ar1.add(p));
                for v in 0..nv {
                    let bv = _mm256_loadu_ps(bp.add(p * N + v * 8));
                    acc0[v] = _mm256_fmadd_ps(x, bv, acc0[v]);
                    acc1[v] = _mm256_fmadd_ps(y, bv, acc1[v]);
                }
                p += 1;
            }
            for v in 0..nv {
                _mm256_storeu_ps(o0.add(v * 8), acc0[v]);
                _mm256_storeu_ps(o1.add(v * 8), acc1[v]);
            }
            i += 2;
        }
        while i < m {
            let ar = ap.add(i * k);
            let o = op.add(i * N);
            let mut acc = [_mm256_setzero_ps(); 8];
            for v in 0..nv {
                acc[v] = _mm256_loadu_ps(o.add(v * 8));
            }
            let mut p = 0;
            while p + 4 <= k {
                let x0 = _mm256_set1_ps(*ar.add(p));
                let x1 = _mm256_set1_ps(*ar.add(p + 1));
                let x2 = _mm256_set1_ps(*ar.add(p + 2));
                let x3 = _mm256_set1_ps(*ar.add(p + 3));
                for v in 0..nv {
                    let b0 = _mm256_loadu_ps(bp.add(p * N + v * 8));
                    let b1 = _mm256_loadu_ps(bp.add((p + 1) * N + v * 8));
                    let b2 = _mm256_loadu_ps(bp.add((p + 2) * N + v * 8));
                    let b3 = _mm256_loadu_ps(bp.add((p + 3) * N + v * 8));
                    let t = _mm256_fmadd_ps(x1, b1, _mm256_fmadd_ps(x0, b0, acc[v]));
                    acc[v] = _mm256_fmadd_ps(x3, b3, _mm256_fmadd_ps(x2, b2, t));
                }
                p += 4;
            }
            while p < k {
                let x = _mm256_set1_ps(*ar.add(p));
                for v in 0..nv {
                    let bv = _mm256_loadu_ps(bp.add(p * N + v * 8));
                    acc[v] = _mm256_fmadd_ps(x, bv, acc[v]);
                }
                p += 1;
            }
            for v in 0..nv {
                _mm256_storeu_ps(o.add(v * 8), acc[v]);
            }
            i += 1;
        }
    }

    /// Generic `out += a · b` (any `n`): SIMD twin of the k-panelled
    /// AXPY loop in `tensor::gemm_serial`. The vector body and the
    /// scalar `mul_add` column tail use the same per-element chain.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gemm_generic(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        kc: usize,
    ) {
        let bp = b.as_ptr();
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + kc).min(k);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..i * n + n];
                let op = orow.as_mut_ptr();
                let mut p = p0;
                while p + 4 <= p1 {
                    let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                    let va0 = _mm256_set1_ps(a0);
                    let va1 = _mm256_set1_ps(a1);
                    let va2 = _mm256_set1_ps(a2);
                    let va3 = _mm256_set1_ps(a3);
                    let b0 = bp.add(p * n);
                    let b1 = bp.add((p + 1) * n);
                    let b2 = bp.add((p + 2) * n);
                    let b3 = bp.add((p + 3) * n);
                    let mut j = 0;
                    while j + 8 <= n {
                        let o = _mm256_loadu_ps(op.add(j));
                        let t = _mm256_fmadd_ps(
                            va1,
                            _mm256_loadu_ps(b1.add(j)),
                            _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0.add(j)), o),
                        );
                        let r = _mm256_fmadd_ps(
                            va3,
                            _mm256_loadu_ps(b3.add(j)),
                            _mm256_fmadd_ps(va2, _mm256_loadu_ps(b2.add(j)), t),
                        );
                        _mm256_storeu_ps(op.add(j), r);
                        j += 8;
                    }
                    while j < n {
                        let o = orow[j];
                        let t = a1.mul_add(*b1.add(j), a0.mul_add(*b0.add(j), o));
                        orow[j] = a3.mul_add(*b3.add(j), a2.mul_add(*b2.add(j), t));
                        j += 1;
                    }
                    p += 4;
                }
                while p < p1 {
                    let av = arow[p];
                    let va = _mm256_set1_ps(av);
                    let br = bp.add(p * n);
                    let mut j = 0;
                    while j + 8 <= n {
                        let o = _mm256_loadu_ps(op.add(j));
                        _mm256_storeu_ps(
                            op.add(j),
                            _mm256_fmadd_ps(va, _mm256_loadu_ps(br.add(j)), o),
                        );
                        j += 8;
                    }
                    while j < n {
                        orow[j] = av.mul_add(*br.add(j), orow[j]);
                        j += 1;
                    }
                    p += 1;
                }
            }
            p0 = p1;
        }
    }

    /// Band kernel for `out += aᵀ · b`: SIMD twin of `tensor::atb_band`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn atb_band(
        a: &[f32],
        b: &[f32],
        oband: &mut [f32],
        i0: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let rows = oband.len().checked_div(n).unwrap_or(0);
        let bp = b.as_ptr();
        let mut p = 0;
        while p + 4 <= k {
            let b0 = bp.add(p * n);
            let b1 = bp.add((p + 1) * n);
            let b2 = bp.add((p + 2) * n);
            let b3 = bp.add((p + 3) * n);
            for i in 0..rows {
                let a0 = a[p * m + i0 + i];
                let a1 = a[(p + 1) * m + i0 + i];
                let a2 = a[(p + 2) * m + i0 + i];
                let a3 = a[(p + 3) * m + i0 + i];
                let va0 = _mm256_set1_ps(a0);
                let va1 = _mm256_set1_ps(a1);
                let va2 = _mm256_set1_ps(a2);
                let va3 = _mm256_set1_ps(a3);
                let orow = &mut oband[i * n..i * n + n];
                let op = orow.as_mut_ptr();
                let mut j = 0;
                while j + 8 <= n {
                    let o = _mm256_loadu_ps(op.add(j));
                    let t = _mm256_fmadd_ps(
                        va1,
                        _mm256_loadu_ps(b1.add(j)),
                        _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0.add(j)), o),
                    );
                    let r = _mm256_fmadd_ps(
                        va3,
                        _mm256_loadu_ps(b3.add(j)),
                        _mm256_fmadd_ps(va2, _mm256_loadu_ps(b2.add(j)), t),
                    );
                    _mm256_storeu_ps(op.add(j), r);
                    j += 8;
                }
                while j < n {
                    let o = orow[j];
                    let t = a1.mul_add(*b1.add(j), a0.mul_add(*b0.add(j), o));
                    orow[j] = a3.mul_add(*b3.add(j), a2.mul_add(*b2.add(j), t));
                    j += 1;
                }
            }
            p += 4;
        }
        while p < k {
            let br = bp.add(p * n);
            for i in 0..rows {
                let av = a[p * m + i0 + i];
                let va = _mm256_set1_ps(av);
                let orow = &mut oband[i * n..i * n + n];
                let op = orow.as_mut_ptr();
                let mut j = 0;
                while j + 8 <= n {
                    let o = _mm256_loadu_ps(op.add(j));
                    _mm256_storeu_ps(
                        op.add(j),
                        _mm256_fmadd_ps(va, _mm256_loadu_ps(br.add(j)), o),
                    );
                    j += 8;
                }
                while j < n {
                    orow[j] = av.mul_add(*br.add(j), orow[j]);
                    j += 1;
                }
            }
            p += 1;
        }
    }

    /// Eight-lane dot product with exactly `tensor::dot`'s reduction
    /// tree: one vector FMA chain is the eight scalar lanes, the
    /// 128-bit half-add produces `[l0+l4, l1+l5, l2+l6, l3+l7]`, and the
    /// final scalar adds replay `(s0 + s1) + tail`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let len = x.len().min(y.len());
        let chunks = len / 8;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(xp.add(c * 8)),
                _mm256_loadu_ps(yp.add(c * 8)),
                acc,
            );
        }
        let mut tail = 0.0f32;
        for idx in chunks * 8..len {
            tail = (*xp.add(idx)).mul_add(*yp.add(idx), tail);
        }
        let q = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), q);
        let s0 = lanes[0] + lanes[1];
        let s1 = lanes[2] + lanes[3];
        (s0 + s1) + tail
    }

    /// Eight-lane sum with `tensor::laned_sum`'s exact tree.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn laned_sum(x: &[f32]) -> f32 {
        let len = x.len();
        let chunks = len / 8;
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            acc = _mm256_add_ps(_mm256_loadu_ps(xp.add(c * 8)), acc);
        }
        let mut tail = 0.0f32;
        for idx in chunks * 8..len {
            tail += *xp.add(idx);
        }
        let q = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), q);
        let s0 = lanes[0] + lanes[1];
        let s1 = lanes[2] + lanes[3];
        (s0 + s1) + tail
    }

    /// Vector transcription of [`crate::tensor::fast_exp`], op for op:
    /// the clamp's operand order preserves NaN propagation, and every
    /// multiply/add stays separate (the scalar source has no `mul_add`).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::excessive_precision)] // coefficients transcribed from the scalar source
    pub(crate) unsafe fn fast_exp_v(x: __m256) -> __m256 {
        let x = _mm256_min_ps(
            _mm256_set1_ps(88.0),
            _mm256_max_ps(_mm256_set1_ps(-87.0), x),
        );
        let magic = _mm256_set1_ps(12_582_912.0);
        let zf = _mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            magic,
        );
        let n = _mm256_sub_ps(zf, magic);
        #[allow(clippy::excessive_precision)]
        const C1: f32 = 0.693_359_375;
        #[allow(clippy::excessive_precision)]
        const C2: f32 = -2.121_944_4e-4;
        let r = _mm256_sub_ps(
            _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(C1))),
            _mm256_mul_ps(n, _mm256_set1_ps(C2)),
        );
        let z = _mm256_mul_ps(r, r);
        let mut p = _mm256_set1_ps(1.987_569_2e-4);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.398_200_0e-3));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.333_452_0e-3));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.166_579_6e-2));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.666_666_5e-1));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.000_000_1e-1));
        let y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, z), r), _mm256_set1_ps(1.0));
        let n_i = _mm256_sub_epi32(_mm256_castps_si256(zf), _mm256_set1_epi32(0x4B40_0000));
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(n_i, _mm256_set1_epi32(127)),
            23,
        ));
        _mm256_mul_ps(y, scale)
    }

    /// Vector `stable_sigmoid`: `e = fast_exp(-|x|)`, `s = e/(1+e)`,
    /// blended by `x ≥ 0` exactly like the scalar select.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn sigmoid_v(x: __m256) -> __m256 {
        let sign = _mm256_set1_ps(-0.0);
        let nabs = _mm256_or_ps(_mm256_andnot_ps(sign, x), sign);
        let e = fast_exp_v(nabs);
        let one = _mm256_set1_ps(1.0);
        let s = _mm256_div_ps(e, _mm256_add_ps(one, e));
        let ge = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GE_OQ);
        _mm256_blendv_ps(s, _mm256_sub_ps(one, s), ge)
    }

    /// In-place `v = fast_exp(v)` sweep; ragged tail runs the scalar fn.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn exp_sweep(xs: &mut [f32]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(p.add(j), fast_exp_v(_mm256_loadu_ps(p.add(j))));
            j += 8;
        }
        while j < n {
            xs[j] = crate::tensor::fast_exp(xs[j]);
            j += 1;
        }
    }

    /// In-place `v = stable_sigmoid(v)` sweep.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn sigmoid_sweep(xs: &mut [f32]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(p.add(j), sigmoid_v(_mm256_loadu_ps(p.add(j))));
            j += 8;
        }
        while j < n {
            xs[j] = crate::infer::stable_sigmoid(xs[j]);
            j += 1;
        }
    }

    /// In-place `v = v.max(0.0)` sweep. `max_ps(v, 0)` matches the
    /// scalar `f32::max` bit for bit here: `-0.0 → +0.0`, `NaN → 0.0`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn relu_sweep(xs: &mut [f32]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(p.add(j), _mm256_max_ps(_mm256_loadu_ps(p.add(j)), zero));
            j += 8;
        }
        while j < n {
            xs[j] = xs[j].max(0.0);
            j += 1;
        }
    }

    /// In-place `v *= s` sweep (softmax's normalize pass).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn scale_sweep(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(p.add(j), _mm256_mul_ps(_mm256_loadu_ps(p.add(j)), vs));
            j += 8;
        }
        while j < n {
            xs[j] *= s;
            j += 1;
        }
    }

    /// Softmax exp pass: writes `fast_exp(row[j]·scale − max)` to the
    /// (uninitialized) destination. `scale = 1.0` reproduces the
    /// unscaled pass (`v·1.0` is exact).
    ///
    /// # Safety
    ///
    /// Besides the CPU-feature contract, `dst` must be valid for
    /// `row.len()` writes.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn softmax_exp_pass(dst: *mut f32, row: &[f32], scale: f32, max: f32) {
        let n = row.len();
        let rp = row.as_ptr();
        let vs = _mm256_set1_ps(scale);
        let vm = _mm256_set1_ps(max);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_sub_ps(_mm256_mul_ps(_mm256_loadu_ps(rp.add(j)), vs), vm);
            _mm256_storeu_ps(dst.add(j), fast_exp_v(v));
            j += 8;
        }
        while j < n {
            dst.add(j)
                .write(crate::tensor::fast_exp(row[j] * scale - max));
            j += 1;
        }
    }

    /// Performer feature-map sweep: `v = (fast_exp(v − half) + 1e-6)·inv`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn feature_map_sweep(xs: &mut [f32], half: f32, inv: f32) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let vh = _mm256_set1_ps(half);
        let veps = _mm256_set1_ps(1e-6);
        let vi = _mm256_set1_ps(inv);
        let mut j = 0;
        while j + 8 <= n {
            let e = fast_exp_v(_mm256_sub_ps(_mm256_loadu_ps(p.add(j)), vh));
            _mm256_storeu_ps(p.add(j), _mm256_mul_ps(_mm256_add_ps(e, veps), vi));
            j += 8;
        }
        while j < n {
            xs[j] = (crate::tensor::fast_exp(xs[j] - half) + 1e-6) * inv;
            j += 1;
        }
    }

    /// Fused BN(+ReLU)+residual row: writes
    /// `((x−μ)·is)·γ + β` (+ optional ReLU, + optional residual) to the
    /// (uninitialized) destination row, matching the scalar sweeps in
    /// `infer.rs` op for op.
    ///
    /// # Safety
    ///
    /// Besides the CPU-feature contract, `dst` must be valid for `d`
    /// writes, and all row slices must hold at least `d` elements.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn bn_row(
        dst: *mut f32,
        x: &[f32],
        res: Option<&[f32]>,
        relu: bool,
        mean: &[f32],
        invstd: &[f32],
        gamma: &[f32],
        beta: &[f32],
        d: usize,
    ) {
        let xp = x.as_ptr();
        let mp = mean.as_ptr();
        let ip = invstd.as_ptr();
        let gp = gamma.as_ptr();
        let bp = beta.as_ptr();
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= d {
            let xv = _mm256_loadu_ps(xp.add(j));
            let t = _mm256_mul_ps(
                _mm256_mul_ps(
                    _mm256_sub_ps(xv, _mm256_loadu_ps(mp.add(j))),
                    _mm256_loadu_ps(ip.add(j)),
                ),
                _mm256_loadu_ps(gp.add(j)),
            );
            let mut t = _mm256_add_ps(t, _mm256_loadu_ps(bp.add(j)));
            if relu {
                t = _mm256_max_ps(t, zero);
            }
            if let Some(r) = res {
                t = _mm256_add_ps(t, _mm256_loadu_ps(r.as_ptr().add(j)));
            }
            _mm256_storeu_ps(dst.add(j), t);
            j += 8;
        }
        while j < d {
            let mut t = ((x[j] - mean[j]) * invstd[j]) * gamma[j] + beta[j];
            if relu {
                t = t.max(0.0);
            }
            if let Some(r) = res {
                t += r[j];
            }
            dst.add(j).write(t);
            j += 1;
        }
    }

    /// Fused BN-of-sum row: `(((a+b)−μ)·is)·γ + β` into `dst`.
    ///
    /// # Safety
    ///
    /// Besides the CPU-feature contract, `dst` must be valid for `d`
    /// writes, and all row slices must hold at least `d` elements.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn bn_of_sum_row(
        dst: *mut f32,
        a: &[f32],
        b: &[f32],
        mean: &[f32],
        invstd: &[f32],
        gamma: &[f32],
        beta: &[f32],
        d: usize,
    ) {
        let ap = a.as_ptr();
        let b2p = b.as_ptr();
        let mp = mean.as_ptr();
        let ip = invstd.as_ptr();
        let gp = gamma.as_ptr();
        let bp = beta.as_ptr();
        let mut j = 0;
        while j + 8 <= d {
            let s = _mm256_add_ps(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(b2p.add(j)));
            let t = _mm256_mul_ps(
                _mm256_mul_ps(
                    _mm256_sub_ps(s, _mm256_loadu_ps(mp.add(j))),
                    _mm256_loadu_ps(ip.add(j)),
                ),
                _mm256_loadu_ps(gp.add(j)),
            );
            _mm256_storeu_ps(dst.add(j), _mm256_add_ps(t, _mm256_loadu_ps(bp.add(j))));
            j += 8;
        }
        while j < d {
            dst.add(j)
                .write((((a[j] + b[j]) - mean[j]) * invstd[j]) * gamma[j] + beta[j]);
            j += 1;
        }
    }

    /// Fused `ax += num / (den + eps)` sweep.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn add_div_sweep(ax: &mut [f32], num: &[f32], den: &[f32], eps: f32) {
        let n = ax.len();
        let ap = ax.as_mut_ptr();
        let np = num.as_ptr();
        let dp = den.as_ptr();
        let ve = _mm256_set1_ps(eps);
        let mut j = 0;
        while j + 8 <= n {
            let q = _mm256_div_ps(
                _mm256_loadu_ps(np.add(j)),
                _mm256_add_ps(_mm256_loadu_ps(dp.add(j)), ve),
            );
            _mm256_storeu_ps(ap.add(j), _mm256_add_ps(_mm256_loadu_ps(ap.add(j)), q));
            j += 8;
        }
        while j < n {
            ax[j] += num[j] / (den[j] + eps);
            j += 1;
        }
    }

    /// One gated-scatter edge: `η = σ(e)`, `num += η ⊙ bx`, `den += η`,
    /// with the scalar kernel's separate multiply-then-add (no FMA).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gated_edge(er: &[f32], bxr: &[f32], nr: &mut [f32], dr: &mut [f32]) {
        let d = er.len();
        let ep = er.as_ptr();
        let bp = bxr.as_ptr();
        let np = nr.as_mut_ptr();
        let dp = dr.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= d {
            let g = sigmoid_v(_mm256_loadu_ps(ep.add(j)));
            let prod = _mm256_mul_ps(g, _mm256_loadu_ps(bp.add(j)));
            _mm256_storeu_ps(np.add(j), _mm256_add_ps(_mm256_loadu_ps(np.add(j)), prod));
            _mm256_storeu_ps(dp.add(j), _mm256_add_ps(_mm256_loadu_ps(dp.add(j)), g));
            j += 8;
        }
        while j < d {
            let g = crate::infer::stable_sigmoid(er[j]);
            nr[j] += g * bxr[j];
            dr[j] += g;
            j += 1;
        }
    }

    /// Dequantizing `out += a · (q·scale)` for compile-time width `N`
    /// (multiple of 8). Same per-element chain as the scalar quant
    /// kernel: one FMA per k-step onto each column's accumulator, with
    /// the weight dequantized as `(q as f32) * scale` (both exact ops).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gemm_quant_fixed<const N: usize>(
        a: &[f32],
        q: &[i8],
        scale: f32,
        out: &mut [f32],
        m: usize,
        k: usize,
    ) {
        debug_assert_eq!(N % 8, 0);
        let nv = N / 8;
        let ap = a.as_ptr();
        let qp = q.as_ptr();
        let op = out.as_mut_ptr();
        let vs = _mm256_set1_ps(scale);
        let mut i = 0;
        while nv <= 4 && i + 2 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let o0 = op.add(i * N);
            let o1 = op.add((i + 1) * N);
            let mut acc0 = [_mm256_setzero_ps(); 4];
            let mut acc1 = [_mm256_setzero_ps(); 4];
            for v in 0..nv {
                acc0[v] = _mm256_loadu_ps(o0.add(v * 8));
                acc1[v] = _mm256_loadu_ps(o1.add(v * 8));
            }
            for p in 0..k {
                let x = _mm256_set1_ps(*ar0.add(p));
                let y = _mm256_set1_ps(*ar1.add(p));
                for v in 0..nv {
                    let qv = _mm_loadl_epi64(qp.add(p * N + v * 8) as *const __m128i);
                    let w = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qv)), vs);
                    acc0[v] = _mm256_fmadd_ps(x, w, acc0[v]);
                    acc1[v] = _mm256_fmadd_ps(y, w, acc1[v]);
                }
            }
            for v in 0..nv {
                _mm256_storeu_ps(o0.add(v * 8), acc0[v]);
                _mm256_storeu_ps(o1.add(v * 8), acc1[v]);
            }
            i += 2;
        }
        while i < m {
            let ar = ap.add(i * k);
            let o = op.add(i * N);
            let mut acc = [_mm256_setzero_ps(); 8];
            for v in 0..nv {
                acc[v] = _mm256_loadu_ps(o.add(v * 8));
            }
            for p in 0..k {
                let x = _mm256_set1_ps(*ar.add(p));
                for v in 0..nv {
                    let qv = _mm_loadl_epi64(qp.add(p * N + v * 8) as *const __m128i);
                    let w = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qv)), vs);
                    acc[v] = _mm256_fmadd_ps(x, w, acc[v]);
                }
            }
            for v in 0..nv {
                _mm256_storeu_ps(o.add(v * 8), acc[v]);
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512F kernels (16 lanes) for the wide GEMM microkernels and the
// elementwise exp sweeps. Narrow widths and order-sensitive reductions
// delegate to the AVX2 set (see the dispatchers in `tensor`/`infer`).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(clippy::needless_range_loop)] // same `acc[v]` idiom as `avx2`
pub(crate) mod avx512 {
    use std::arch::x86_64::*;

    /// `out += a · b` for compile-time width `N` (multiple of 16):
    /// 16-lane twin of [`super::avx2::gemm_fixed`]; per-element k-order
    /// is identical (lanes are independent columns).
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn gemm_fixed<const N: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
    ) {
        debug_assert_eq!(N % 16, 0);
        let nv = N / 16;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while nv <= 2 && i + 2 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let o0 = op.add(i * N);
            let o1 = op.add((i + 1) * N);
            let mut acc0 = [_mm512_setzero_ps(); 2];
            let mut acc1 = [_mm512_setzero_ps(); 2];
            for v in 0..nv {
                acc0[v] = _mm512_loadu_ps(o0.add(v * 16));
                acc1[v] = _mm512_loadu_ps(o1.add(v * 16));
            }
            let mut p = 0;
            while p + 4 <= k {
                let x0 = _mm512_set1_ps(*ar0.add(p));
                let x1 = _mm512_set1_ps(*ar0.add(p + 1));
                let x2 = _mm512_set1_ps(*ar0.add(p + 2));
                let x3 = _mm512_set1_ps(*ar0.add(p + 3));
                let y0 = _mm512_set1_ps(*ar1.add(p));
                let y1 = _mm512_set1_ps(*ar1.add(p + 1));
                let y2 = _mm512_set1_ps(*ar1.add(p + 2));
                let y3 = _mm512_set1_ps(*ar1.add(p + 3));
                for v in 0..nv {
                    let b0 = _mm512_loadu_ps(bp.add(p * N + v * 16));
                    let b1 = _mm512_loadu_ps(bp.add((p + 1) * N + v * 16));
                    let b2 = _mm512_loadu_ps(bp.add((p + 2) * N + v * 16));
                    let b3 = _mm512_loadu_ps(bp.add((p + 3) * N + v * 16));
                    let t0 = _mm512_fmadd_ps(x1, b1, _mm512_fmadd_ps(x0, b0, acc0[v]));
                    acc0[v] = _mm512_fmadd_ps(x3, b3, _mm512_fmadd_ps(x2, b2, t0));
                    let t1 = _mm512_fmadd_ps(y1, b1, _mm512_fmadd_ps(y0, b0, acc1[v]));
                    acc1[v] = _mm512_fmadd_ps(y3, b3, _mm512_fmadd_ps(y2, b2, t1));
                }
                p += 4;
            }
            while p < k {
                let x = _mm512_set1_ps(*ar0.add(p));
                let y = _mm512_set1_ps(*ar1.add(p));
                for v in 0..nv {
                    let bv = _mm512_loadu_ps(bp.add(p * N + v * 16));
                    acc0[v] = _mm512_fmadd_ps(x, bv, acc0[v]);
                    acc1[v] = _mm512_fmadd_ps(y, bv, acc1[v]);
                }
                p += 1;
            }
            for v in 0..nv {
                _mm512_storeu_ps(o0.add(v * 16), acc0[v]);
                _mm512_storeu_ps(o1.add(v * 16), acc1[v]);
            }
            i += 2;
        }
        while i < m {
            let ar = ap.add(i * k);
            let o = op.add(i * N);
            let mut acc = [_mm512_setzero_ps(); 4];
            for v in 0..nv {
                acc[v] = _mm512_loadu_ps(o.add(v * 16));
            }
            let mut p = 0;
            while p + 4 <= k {
                let x0 = _mm512_set1_ps(*ar.add(p));
                let x1 = _mm512_set1_ps(*ar.add(p + 1));
                let x2 = _mm512_set1_ps(*ar.add(p + 2));
                let x3 = _mm512_set1_ps(*ar.add(p + 3));
                for v in 0..nv {
                    let b0 = _mm512_loadu_ps(bp.add(p * N + v * 16));
                    let b1 = _mm512_loadu_ps(bp.add((p + 1) * N + v * 16));
                    let b2 = _mm512_loadu_ps(bp.add((p + 2) * N + v * 16));
                    let b3 = _mm512_loadu_ps(bp.add((p + 3) * N + v * 16));
                    let t = _mm512_fmadd_ps(x1, b1, _mm512_fmadd_ps(x0, b0, acc[v]));
                    acc[v] = _mm512_fmadd_ps(x3, b3, _mm512_fmadd_ps(x2, b2, t));
                }
                p += 4;
            }
            while p < k {
                let x = _mm512_set1_ps(*ar.add(p));
                for v in 0..nv {
                    let bv = _mm512_loadu_ps(bp.add(p * N + v * 16));
                    acc[v] = _mm512_fmadd_ps(x, bv, acc[v]);
                }
                p += 1;
            }
            for v in 0..nv {
                _mm512_storeu_ps(o.add(v * 16), acc[v]);
            }
            i += 1;
        }
    }

    /// Dequantizing `out += a · (q·scale)` for compile-time width `N`
    /// (multiple of 16); 16-lane twin of
    /// [`super::avx2::gemm_quant_fixed`].
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn gemm_quant_fixed<const N: usize>(
        a: &[f32],
        q: &[i8],
        scale: f32,
        out: &mut [f32],
        m: usize,
        k: usize,
    ) {
        debug_assert_eq!(N % 16, 0);
        let nv = N / 16;
        let ap = a.as_ptr();
        let qp = q.as_ptr();
        let op = out.as_mut_ptr();
        let vs = _mm512_set1_ps(scale);
        let mut i = 0;
        while nv <= 2 && i + 2 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let o0 = op.add(i * N);
            let o1 = op.add((i + 1) * N);
            let mut acc0 = [_mm512_setzero_ps(); 2];
            let mut acc1 = [_mm512_setzero_ps(); 2];
            for v in 0..nv {
                acc0[v] = _mm512_loadu_ps(o0.add(v * 16));
                acc1[v] = _mm512_loadu_ps(o1.add(v * 16));
            }
            for p in 0..k {
                let x = _mm512_set1_ps(*ar0.add(p));
                let y = _mm512_set1_ps(*ar1.add(p));
                for v in 0..nv {
                    let qv = _mm_loadu_si128(qp.add(p * N + v * 16) as *const __m128i);
                    let w = _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qv)), vs);
                    acc0[v] = _mm512_fmadd_ps(x, w, acc0[v]);
                    acc1[v] = _mm512_fmadd_ps(y, w, acc1[v]);
                }
            }
            for v in 0..nv {
                _mm512_storeu_ps(o0.add(v * 16), acc0[v]);
                _mm512_storeu_ps(o1.add(v * 16), acc1[v]);
            }
            i += 2;
        }
        while i < m {
            let ar = ap.add(i * k);
            let o = op.add(i * N);
            let mut acc = [_mm512_setzero_ps(); 4];
            for v in 0..nv {
                acc[v] = _mm512_loadu_ps(o.add(v * 16));
            }
            for p in 0..k {
                let x = _mm512_set1_ps(*ar.add(p));
                for v in 0..nv {
                    let qv = _mm_loadu_si128(qp.add(p * N + v * 16) as *const __m128i);
                    let w = _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qv)), vs);
                    acc[v] = _mm512_fmadd_ps(x, w, acc[v]);
                }
            }
            for v in 0..nv {
                _mm512_storeu_ps(o.add(v * 16), acc[v]);
            }
            i += 1;
        }
    }
}

/// Explicit-backend entry points for the cross-backend parity test
/// matrix and the kernel benchmarks.
///
/// Each function asserts the requested backend is available on this CPU
/// (a parity run must never silently compare a backend against itself)
/// and then runs the exact kernel the inference path would run with that
/// backend active. Production code should use the model/layer APIs,
/// which dispatch on [`Backend::active`] instead.
pub mod ops {
    use super::Backend;
    use crate::quant::QuantMatrix;
    use crate::tensor::Tensor;

    fn check(backend: Backend) {
        assert!(
            backend.available(),
            "backend {backend} is not available on this CPU"
        );
    }

    /// `out += a · b` for row-major `a (m×k)`, `b (k×n)`, `out (m×n)`
    /// (auto serial/parallel; the parallel banding is bitwise-equal).
    pub fn gemm(
        backend: Backend,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check(backend);
        assert_eq!(a.len(), m * k, "a length");
        assert_eq!(b.len(), k * n, "b length");
        assert_eq!(out.len(), m * n, "out length");
        crate::tensor::gemm_with(backend, a, b, out, m, k, n);
    }

    /// `out += aᵀ · b` for row-major `a (k×m)`, `b (k×n)`, `out (m×n)`.
    pub fn gemm_atb(
        backend: Backend,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check(backend);
        assert_eq!(a.len(), k * m, "a length");
        assert_eq!(b.len(), k * n, "b length");
        assert_eq!(out.len(), m * n, "out length");
        crate::tensor::gemm_atb_with(backend, a, b, out, m, k, n);
    }

    /// `out += a · bᵀ` for row-major `a (m×k)`, `b (n×k)`, `out (m×n)`.
    pub fn gemm_abt(
        backend: Backend,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check(backend);
        assert_eq!(a.len(), m * k, "a length");
        assert_eq!(b.len(), n * k, "b length");
        assert_eq!(out.len(), m * n, "out length");
        crate::tensor::gemm_abt_with(backend, a, b, out, m, k, n);
    }

    /// Dequantizing `out += a · (q·s)` against an int8 weight.
    pub fn gemm_quant(backend: Backend, a: &[f32], q: &QuantMatrix, out: &mut [f32], m: usize) {
        check(backend);
        assert_eq!(a.len(), m * q.rows(), "a length");
        assert_eq!(out.len(), m * q.cols(), "out length");
        crate::quant::gemm_quant_with(backend, a, q, out, m);
    }

    /// Eight-lane dot product (same reduction tree on every backend).
    pub fn dot(backend: Backend, x: &[f32], y: &[f32]) -> f32 {
        check(backend);
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        crate::tensor::dot_with(backend, x, y)
    }

    /// Eight-lane sum with the dot kernel's reduction tree.
    pub fn laned_sum(backend: Backend, x: &[f32]) -> f32 {
        check(backend);
        crate::tensor::laned_sum_with(backend, x)
    }

    /// In-place `v = max(v, 0)`.
    pub fn relu_sweep(backend: Backend, xs: &mut [f32]) {
        check(backend);
        crate::infer::relu_sweep_with(backend, xs);
    }

    /// In-place `v = fast_exp(v)`.
    pub fn exp_sweep(backend: Backend, xs: &mut [f32]) {
        check(backend);
        crate::infer::exp_sweep_with(backend, xs);
    }

    /// In-place stable sigmoid.
    pub fn sigmoid_sweep(backend: Backend, xs: &mut [f32]) {
        check(backend);
        crate::infer::sigmoid_sweep_with(backend, xs);
    }

    /// In-place `v *= s`.
    pub fn scale_sweep(backend: Backend, xs: &mut [f32], s: f32) {
        check(backend);
        crate::infer::scale_sweep_with(backend, xs, s);
    }

    /// Row-wise softmax of `scale · x` (`scale` must be positive).
    pub fn softmax_rows(backend: Backend, x: &Tensor, scale: f32) -> Tensor {
        check(backend);
        assert!(scale > 0.0, "softmax scale must be positive");
        crate::infer::softmax_rows_impl(backend, x, scale)
    }

    /// Fused eval-mode batch norm `((x − μ)·invstd)·γ + β`.
    pub fn batch_norm(
        backend: Backend,
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
        mean: &Tensor,
        var: &Tensor,
    ) -> Tensor {
        check(backend);
        crate::infer::batch_norm_eval_with(backend, x, gamma, beta, eps, mean, var)
    }

    /// Fused eval-mode `max(BN(x), 0) + residual`.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm_relu_add(
        backend: Backend,
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
        mean: &Tensor,
        var: &Tensor,
        residual: &Tensor,
    ) -> Tensor {
        check(backend);
        crate::infer::batch_norm_eval_relu_add_with(
            backend, x, gamma, beta, eps, mean, var, residual,
        )
    }

    /// Fused eval-mode `BN(a + b)`.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm_of_sum(
        backend: Backend,
        a: &Tensor,
        b: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
        mean: &Tensor,
        var: &Tensor,
    ) -> Tensor {
        check(backend);
        crate::infer::batch_norm_eval_of_sum_with(backend, a, b, gamma, beta, eps, mean, var)
    }

    /// Fused gated aggregation: per edge `η = σ(ê)`, scatter-adds
    /// `η ⊙ Bx[src]` into `num[dst]` and `η` into `den[dst]`.
    pub fn gated_scatter(
        backend: Backend,
        e_hat: &Tensor,
        bx: &Tensor,
        src: &[usize],
        dst: &[usize],
        n_out: usize,
    ) -> (Tensor, Tensor) {
        check(backend);
        assert_eq!(e_hat.rows(), src.len(), "one e_hat row per edge");
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert!(src.iter().all(|&j| j < bx.rows()), "src index out of range");
        assert!(dst.iter().all(|&j| j < n_out), "dst index out of range");
        crate::infer::gated_scatter_with(backend, e_hat, bx, src, dst, n_out)
    }

    /// Fused `x̂ = ax + num / (den + ε)`, consuming `ax`.
    pub fn add_div(backend: Backend, ax: Tensor, num: &Tensor, den: &Tensor, eps: f32) -> Tensor {
        check(backend);
        assert_eq!(ax.shape(), num.shape(), "num shape mismatch");
        assert_eq!(ax.shape(), den.shape(), "den shape mismatch");
        crate::infer::add_div_inplace_with(backend, ax, num, den, eps)
    }

    /// Performer feature map `φ(x̂) = (exp(x̂Ωᵀ − ‖x̂‖²/2) + ε)/√m` over a
    /// pre-scaled input.
    pub fn performer_feature_map(
        backend: Backend,
        xs: &Tensor,
        omega_t: &Tensor,
        features: usize,
    ) -> Tensor {
        check(backend);
        assert_eq!(xs.cols(), omega_t.rows(), "projection shape mismatch");
        crate::infer::performer_feature_map_with(backend, xs, omega_t, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()).unwrap(), b);
        }
        assert!(Backend::parse("neon").is_err());
    }

    #[test]
    fn detect_is_available_and_scalar_always_is() {
        assert!(Backend::detect().available());
        assert!(Backend::Scalar.available());
    }

    #[test]
    fn active_is_stable_and_honors_env() {
        let a = Backend::active();
        assert_eq!(a, Backend::active());
        if let Ok(name) = std::env::var("CIRGPS_FORCE_BACKEND") {
            if !name.is_empty() {
                assert_eq!(a, Backend::parse(&name).unwrap());
            }
        }
        assert!(a.available());
    }
}
