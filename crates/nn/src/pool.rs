//! Thread-local recycling pool for `Vec<f32>` tensor backing stores.
//!
//! Training runs millions of short tapes, and every tape op needs an
//! output buffer. Allocating those from the global heap dominates the
//! cost of small/medium ops, so the tensor layer takes buffers from a
//! per-thread free list instead and the tape returns them when it is
//! dropped. In steady state (same model, same batch shapes) every op is
//! served from the pool and the forward/backward pass performs **zero**
//! heap allocation for tensor data.
//!
//! Buffers are keyed by *capacity class* (power of two): an allocation
//! request for `len` elements is rounded up to the next power of two, so
//! a recycled buffer of class `k` (capacity in `[2^k, 2^{k+1})`) always
//! fits any request with `len ≤ 2^k`. Each class keeps at most
//! [`MAX_PER_CLASS`] buffers and buffers above [`MAX_POOLED_LEN`]
//! elements bypass the pool entirely, bounding worst-case memory held.
//!
//! The pool is thread-local: minibatch workers each get their own free
//! list, so there is no locking on the hot path and buffers never cross
//! threads through the pool.

use std::cell::RefCell;

/// Ceiling on recycled buffers kept per capacity class; small classes use
/// this, large classes are bounded by [`CLASS_BYTE_BUDGET`] instead.
pub const MAX_PER_CLASS: usize = 512;

/// Per-class retention budget in bytes. A deep tape holds hundreds of
/// same-shaped activations at once, so each class must retain enough
/// buffers to serve a whole forward+backward pass; bounding by bytes
/// keeps the worst case sane while letting small classes keep
/// [`MAX_PER_CLASS`] entries. Classes whose single buffer exceeds the
/// budget retain at most one buffer, so per-class retention never
/// exceeds `max(CLASS_BYTE_BUDGET, one buffer)`.
pub const CLASS_BYTE_BUDGET: usize = 32 << 20;

/// Largest buffer length (elements) the pool will retain.
pub const MAX_POOLED_LEN: usize = 1 << 24;

const NUM_CLASSES: usize = 25; // classes 2^0 ..= 2^24

/// Retention cap for class `k` (buffers of capacity `2^k`).
#[inline]
fn cap_for_class(k: usize) -> usize {
    ((CLASS_BYTE_BUDGET / 4) >> k).clamp(1, MAX_PER_CLASS)
}

#[derive(Default)]
struct PoolInner {
    classes: Vec<Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::new(PoolInner {
        classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
        ..Default::default()
    });
}

/// Counters describing pool effectiveness on the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Requests served from the free list.
    pub hits: u64,
    /// Requests that had to allocate.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Returned buffers dropped because their class was full or too big.
    pub dropped: u64,
}

/// Capacity class that can serve a request of `len` elements.
#[inline]
fn class_for_len(len: usize) -> usize {
    (usize::BITS - (len.max(1) - 1).leading_zeros()) as usize
}

/// Capacity class a buffer of capacity `cap` belongs to.
#[inline]
fn class_for_cap(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Takes a zero-filled buffer of exactly `len` elements.
#[inline]
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let mut v = take_capacity(len);
    v.resize(len, 0.0);
    v
}

/// Takes an *empty* buffer with capacity for at least `len` elements
/// (for extend/`copy_from_slice`-style fills that overwrite everything).
#[inline]
pub fn take_capacity(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let class = class_for_len(len);
    if class >= NUM_CLASSES {
        return Vec::with_capacity(len);
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.classes[class].pop() {
            Some(mut v) => {
                p.hits += 1;
                v.clear();
                v
            }
            None => {
                p.misses += 1;
                // Round the fresh allocation up to the class size so the
                // buffer is reusable for every request in this class.
                Vec::with_capacity(1 << class)
            }
        }
    })
}

/// Returns a buffer to the pool (or drops it if the pool is full).
#[inline]
pub fn put(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    let class = class_for_cap(cap);
    if class >= NUM_CLASSES || cap > MAX_POOLED_LEN {
        POOL.with(|p| p.borrow_mut().dropped += 1);
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.classes[class].len() < cap_for_class(class) {
            p.classes[class].push(v);
            p.recycled += 1;
        } else {
            p.dropped += 1;
        }
    });
}

/// Current counters for this thread.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            dropped: p.dropped,
        }
    })
}

/// Empties the pool and zeroes the counters (test/bench isolation).
pub fn reset() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        for c in &mut p.classes {
            c.clear();
        }
        p.hits = 0;
        p.misses = 0;
        p.recycled = 0;
        p.dropped = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(4), 2);
        assert_eq!(class_for_len(5), 3);
        assert_eq!(class_for_cap(4), 2);
        assert_eq!(class_for_cap(7), 2);
        assert_eq!(class_for_cap(8), 3);
    }

    #[test]
    fn recycled_buffer_is_reused_and_zeroed() {
        reset();
        let mut v = take_zeroed(100);
        assert_eq!(v.len(), 100);
        assert_eq!(
            v.capacity(),
            128,
            "fresh allocations round up to the class size"
        );
        v[7] = 42.0;
        put(v);
        let v2 = take_zeroed(120);
        assert_eq!(v2.len(), 120);
        assert!(
            v2.iter().all(|&x| x == 0.0),
            "recycled buffer must be zeroed"
        );
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn steady_state_has_no_misses() {
        reset();
        for _ in 0..100 {
            let a = take_zeroed(64);
            let b = take_zeroed(33);
            put(a);
            put(b);
        }
        let s = stats();
        assert_eq!(s.misses, 2, "only the first round may allocate");
        assert_eq!(s.hits, 198);
    }

    #[test]
    fn zero_len_and_oversized_bypass() {
        reset();
        assert_eq!(take_zeroed(0).capacity(), 0);
        put(Vec::new());
        let big = take_zeroed(MAX_POOLED_LEN * 2);
        assert_eq!(big.len(), MAX_POOLED_LEN * 2);
        put(big);
        let s = stats();
        assert_eq!(s.recycled, 0);
    }

    #[test]
    fn class_capacity_bound_holds() {
        reset();
        for _ in 0..MAX_PER_CLASS + 5 {
            put(Vec::with_capacity(16));
        }
        let s = stats();
        assert_eq!(s.recycled as usize, MAX_PER_CLASS);
        assert_eq!(s.dropped as usize, 5);
        reset();
    }

    #[test]
    fn byte_budget_bounds_large_classes() {
        // Class 20 (4 MiB buffers): the byte budget allows far fewer than
        // MAX_PER_CLASS entries.
        assert_eq!(cap_for_class(20), (CLASS_BYTE_BUDGET / 4) >> 20);
        assert_eq!(
            cap_for_class(24),
            1,
            "over-budget classes keep exactly one buffer"
        );
        assert_eq!(
            cap_for_class(4),
            MAX_PER_CLASS,
            "small classes use the count cap"
        );
    }
}
