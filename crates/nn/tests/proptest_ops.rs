//! Property-based tests for the tensor and autograd layers: algebraic
//! identities on random tensors and finite-difference gradient checks on
//! random op chains.

use cirgps_nn::{GradStore, ParamStore, Tape, Tensor, Var};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_is_associative_enough(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 3),
        b in tensor_strategy(3, 3),
        c in tensor_strategy(3, 3),
    ) {
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_variants_agree(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
    ) {
        // aᵀ·b three ways.
        let v1 = a.t_matmul(&b);
        let v2 = a.transpose().matmul(&b);
        prop_assert_eq!(v1.shape(), v2.shape());
        for (x, y) in v1.as_slice().iter().zip(v2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(5, 7)) {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(a);
        let s = tape.softmax_rows(x);
        let t = tape.value(s);
        for r in 0..t.rows() {
            let sum: f32 = t.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(t.row_slice(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn random_op_chain_gradcheck(
        data in proptest::collection::vec(-1.0f32..1.0, 6),
        ops in proptest::collection::vec(0u8..5, 1..5),
        targets in proptest::collection::vec(-1.0f32..1.0, 6),
    ) {
        // Build w (2x3), apply a random chain of shape-preserving unary
        // ops, take MSE against targets, compare analytic vs numeric
        // gradient at a few coordinates.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(2, 3, data.clone()), true);

        let run = |store: &ParamStore| -> (f32, Option<Tensor>) {
            let mut tape = Tape::new(store, false, 0);
            let wv = tape.param(w);
            let mut h: Var = wv;
            for &op in &ops {
                h = match op {
                    0 => tape.relu(h),
                    1 => tape.sigmoid(h),
                    2 => tape.tanh(h),
                    3 => tape.scale(h, 0.7),
                    _ => tape.add_scalar(h, 0.3),
                };
            }
            let loss = tape.mse_loss(h, &targets);
            let mut grads = GradStore::new(store);
            tape.backward(loss, &mut grads);
            (tape.value(loss).item(), grads.get(w).cloned())
        };

        let (_, analytic) = run(&store);
        let analytic = analytic.expect("gradient must exist");
        let eps = 1e-3f32;
        for idx in [0usize, 3, 5] {
            let orig = store.get(w).as_slice()[idx];
            // ReLU kinks make finite differences unreliable near zero.
            if orig.abs() < 5e-3 {
                continue;
            }
            store.get_mut(w).as_mut_slice()[idx] = orig + eps;
            let (lp, _) = run(&store);
            store.get_mut(w).as_mut_slice()[idx] = orig - eps;
            let (lm, _) = run(&store);
            store.get_mut(w).as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            prop_assert!(
                (a - numeric).abs() < 5e-2 * (1.0 + a.abs().max(numeric.abs())),
                "ops {ops:?} idx {idx}: analytic {a} numeric {numeric}"
            );
        }
    }

    #[test]
    fn gather_scatter_inverse_on_permutations(perm_seed in 0u64..1000) {
        // scatter_add(gather(x, p), p) == x when p is a permutation.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..8).collect();
        perm.shuffle(&mut rng);

        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let xv: Vec<f32> = (0..16).map(|i| i as f32 * 0.5 - 3.0).collect();
        let x = tape.input(Tensor::from_vec(8, 2, xv.clone()));
        let g = tape.gather(x, std::sync::Arc::new(perm.clone()));
        let back = tape.scatter_add(g, std::sync::Arc::new(perm), 8);
        prop_assert_eq!(tape.value(back).as_slice(), &xv[..]);
    }

    #[test]
    fn bce_loss_is_nonnegative_and_bounded_for_confident_preds(
        logits in proptest::collection::vec(-10.0f32..10.0, 8),
        labels in proptest::collection::vec(0u8..2, 8),
    ) {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let z = tape.input(Tensor::col(&logits));
        let y: Vec<f32> = labels.iter().map(|&l| l as f32).collect();
        let loss = tape.bce_with_logits(z, &y);
        let v = tape.value(loss).item();
        prop_assert!(v >= 0.0, "BCE {v} < 0");
        prop_assert!(v.is_finite());
    }
}
