//! Property-based tests for the tensor and autograd layers: algebraic
//! identities on random tensors and finite-difference gradient checks on
//! random op chains.

use cirgps_nn::{GradStore, ParamStore, Tape, Tensor, Var};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// Random `(m, k, n)` matmul shapes, biased to include the degenerate
/// `1 × d` (row-vector) and `n × 1` (column-vector) edge shapes.
fn matmul_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        (1usize..12, 1usize..12, 1usize..12),
        // k spanning multiple 128-wide blocking panels.
        (1usize..4, 120usize..200, 1usize..4),
        Just((1usize, 7usize, 5usize)), // 1×d row vector input
        Just((6usize, 1usize, 3usize)), // n×1 inner dimension
        Just((5usize, 4usize, 1usize)), // n×1 output column
        Just((1usize, 1usize, 1usize)),
    ]
}

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    // Deterministic pseudo-random fill, cheap enough for large k.
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32 * 0.04 - 1.9)
            .collect(),
    )
}

/// Naive i-j-k triple loop: the reference the optimized kernels are
/// checked against.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(m, n, out)
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
    }
}

proptest! {
    #[test]
    fn blocked_matmul_matches_naive_reference(
        (m, k, n) in matmul_shapes(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x9e37);
        let reference = matmul_naive(&a, &b);
        // Tolerance scales with k: each output element sums k products of
        // values in [-2, 2].
        let tol = 1e-5 * (1.0 + k as f32);
        assert_close(&a.matmul(&b), &reference, tol);
        assert_close(&a.matmul_serial(&b), &reference, tol);
        // Transposed variants against the same reference.
        assert_close(&a.transpose().t_matmul(&b), &reference, tol);
        assert_close(&a.matmul_t(&b.transpose()), &reference, tol);
    }

    #[test]
    fn parallel_matmul_equals_serial_exactly(
        (m, k, n) in matmul_shapes(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x517c);
        // Row partitioning preserves per-element accumulation order, so
        // the threaded kernel must be bitwise-identical, not just close.
        let serial = a.matmul_serial(&b);
        let parallel = a.matmul_parallel(&b);
        prop_assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn fused_linear_matches_unfused_composition(
        (m, k, n) in matmul_shapes(),
        seed in 0u64..1000,
    ) {
        let x = random_tensor(m, k, seed);
        let w = random_tensor(k, n, seed ^ 0x2b1a);
        let bias = random_tensor(1, n, seed ^ 0x77f3);

        let store = ParamStore::new();
        let mut t1 = Tape::new(&store, false, 0);
        let (xv, wv, bv) = (t1.input(x.clone()), t1.input(w.clone()), t1.input(bias.clone()));
        let fused = t1.linear(xv, wv, Some(bv));
        let fused_relu = t1.linear_relu(xv, wv, Some(bv));

        let mut t2 = Tape::new(&store, false, 0);
        let (xv2, wv2, bv2) = (t2.input(x), t2.input(w), t2.input(bias));
        let mm = t2.matmul(xv2, wv2);
        let unfused = t2.add_bias(mm, bv2);
        let unfused_relu = t2.relu(unfused);

        let tol = 1e-5 * (1.0 + k as f32);
        assert_close(t1.value(fused), t2.value(unfused), tol);
        assert_close(t1.value(fused_relu), t2.value(unfused_relu), tol);
    }

    #[test]
    fn pooled_rerun_is_bitwise_stable(
        a in tensor_strategy(4, 6),
        b in tensor_strategy(6, 3),
    ) {
        // Running the same op chain on a fresh tape after the first tape's
        // buffers were recycled must give bit-identical results: recycled
        // buffers carry no state.
        let store = ParamStore::new();
        let run = || {
            let mut t = Tape::new(&store, false, 0);
            let (av, bv) = (t.input(a.clone()), t.input(b.clone()));
            let h = t.matmul(av, bv);
            let h = t.relu(h);
            let s = t.softmax_rows(h);
            t.value(s).as_slice().to_vec()
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn matmul_is_associative_enough(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 3),
        b in tensor_strategy(3, 3),
        c in tensor_strategy(3, 3),
    ) {
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_variants_agree(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
    ) {
        // aᵀ·b three ways.
        let v1 = a.t_matmul(&b);
        let v2 = a.transpose().matmul(&b);
        prop_assert_eq!(v1.shape(), v2.shape());
        for (x, y) in v1.as_slice().iter().zip(v2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(5, 7)) {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let x = tape.input(a);
        let s = tape.softmax_rows(x);
        let t = tape.value(s);
        for r in 0..t.rows() {
            let sum: f32 = t.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(t.row_slice(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn random_op_chain_gradcheck(
        data in proptest::collection::vec(-1.0f32..1.0, 6),
        ops in proptest::collection::vec(0u8..5, 1..5),
        targets in proptest::collection::vec(-1.0f32..1.0, 6),
    ) {
        // Build w (2x3), apply a random chain of shape-preserving unary
        // ops, take MSE against targets, compare analytic vs numeric
        // gradient at a few coordinates.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(2, 3, data.clone()), true);

        let run = |store: &ParamStore| -> (f32, Option<Tensor>) {
            let mut tape = Tape::new(store, false, 0);
            let wv = tape.param(w);
            let mut h: Var = wv;
            for &op in &ops {
                h = match op {
                    0 => tape.relu(h),
                    1 => tape.sigmoid(h),
                    2 => tape.tanh(h),
                    3 => tape.scale(h, 0.7),
                    _ => tape.add_scalar(h, 0.3),
                };
            }
            let loss = tape.mse_loss(h, &targets);
            let mut grads = GradStore::new(store);
            tape.backward(loss, &mut grads);
            (tape.value(loss).item(), grads.get(w).cloned())
        };

        let (_, analytic) = run(&store);
        let analytic = analytic.expect("gradient must exist");
        let eps = 1e-3f32;
        for idx in [0usize, 3, 5] {
            let orig = store.get(w).as_slice()[idx];
            // ReLU kinks make finite differences unreliable near zero.
            if orig.abs() < 5e-3 {
                continue;
            }
            store.get_mut(w).as_mut_slice()[idx] = orig + eps;
            let (lp, _) = run(&store);
            store.get_mut(w).as_mut_slice()[idx] = orig - eps;
            let (lm, _) = run(&store);
            store.get_mut(w).as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            prop_assert!(
                (a - numeric).abs() < 5e-2 * (1.0 + a.abs().max(numeric.abs())),
                "ops {ops:?} idx {idx}: analytic {a} numeric {numeric}"
            );
        }
    }

    #[test]
    fn gather_scatter_inverse_on_permutations(perm_seed in 0u64..1000) {
        // scatter_add(gather(x, p), p) == x when p is a permutation.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..8).collect();
        perm.shuffle(&mut rng);

        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let xv: Vec<f32> = (0..16).map(|i| i as f32 * 0.5 - 3.0).collect();
        let x = tape.input(Tensor::from_vec(8, 2, xv.clone()));
        let g = tape.gather(x, std::sync::Arc::new(perm.clone()));
        let back = tape.scatter_add(g, std::sync::Arc::new(perm), 8);
        prop_assert_eq!(tape.value(back).as_slice(), &xv[..]);
    }

    #[test]
    fn bce_loss_is_nonnegative_and_bounded_for_confident_preds(
        logits in proptest::collection::vec(-10.0f32..10.0, 8),
        labels in proptest::collection::vec(0u8..2, 8),
    ) {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store, false, 0);
        let z = tape.input(Tensor::col(&logits));
        let y: Vec<f32> = labels.iter().map(|&l| l as f32).collect();
        let loss = tape.bce_with_logits(z, &y);
        let v = tape.value(loss).item();
        prop_assert!(v >= 0.0, "BCE {v} < 0");
        prop_assert!(v.is_finite());
    }

    #[test]
    fn tape_free_mlp_matches_taped_forward(
        (n, seed) in (1usize..12, 0u64..500),
    ) {
        // The batched inference engine runs tape-free; its value must be
        // bitwise-equal to the eval-mode taped forward (shared kernels).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = cirgps_nn::Mlp::new(
            &mut store,
            "mlp",
            &[5, 7, 3],
            cirgps_nn::Activation::Relu,
            0.2, // dropout is the identity in eval mode
            &mut rng,
        );
        let x = random_tensor(n, 5, seed ^ 0xabcd);
        let taped = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = mlp.forward(&mut tape, xv);
            tape.value(y).as_slice().to_vec()
        };
        let free = mlp.infer(&store, &x);
        prop_assert_eq!(&taped[..], free.as_slice());
    }

    #[test]
    fn tape_free_attention_matches_taped_forward(
        (n, seed) in (1usize..10, 0u64..500),
    ) {
        // A single block spanning every row must reproduce the taped
        // full-graph attention bitwise, for both attention kinds.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mha = cirgps_nn::MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let perf = cirgps_nn::PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut rng);
        let x = random_tensor(n, 8, seed ^ 0x55aa);

        let taped_mha = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = mha.forward(&mut tape, xv);
            tape.value(y).as_slice().to_vec()
        };
        let free_mha = mha.infer_blocks(&store, &x, &[(0, n)]);
        prop_assert_eq!(&taped_mha[..], free_mha.as_slice());

        let taped_perf = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = perf.forward(&mut tape, xv);
            tape.value(y).as_slice().to_vec()
        };
        let free_perf = perf.infer_blocks(&store, &x, &[(0, n)]);
        prop_assert_eq!(&taped_perf[..], free_perf.as_slice());
    }

    #[test]
    fn taped_block_diag_attention_matches_tape_free(
        (n, seed) in (1usize..12, 0u64..300),
    ) {
        // Random partition of the pack into per-graph blocks: the taped
        // fused block-diagonal ops and the tape-free engine share their
        // forward kernels, so any block layout must agree bitwise for
        // both attention kinds.
        use rand::{Rng, SeedableRng};
        use std::sync::Arc;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut blocks = Vec::new();
        let mut r0 = 0usize;
        while r0 < n {
            let len = rng.gen_range(0..n - r0) + 1;
            blocks.push((r0, len));
            r0 += len;
        }

        let mut prng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7777);
        let mut store = ParamStore::new();
        let mha = cirgps_nn::MultiHeadAttention::new(&mut store, "a", 8, 2, &mut prng);
        let perf = cirgps_nn::PerformerAttention::new(&mut store, "p", 8, 2, 16, &mut prng);
        let x = random_tensor(n, 8, seed ^ 0x33cc);

        let taped_mha = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = mha.forward_blocks(&mut tape, xv, Arc::new(blocks.clone()));
            tape.value(y).as_slice().to_vec()
        };
        let free_mha = mha.infer_blocks(&store, &x, &blocks);
        prop_assert_eq!(&taped_mha[..], free_mha.as_slice());

        let taped_perf = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let y = perf.forward_blocks(&mut tape, xv, Arc::new(blocks.clone()));
            tape.value(y).as_slice().to_vec()
        };
        let free_perf = perf.infer_blocks(&store, &x, &blocks);
        prop_assert_eq!(&taped_perf[..], free_perf.as_slice());
    }

    #[test]
    fn tape_free_gatedgcn_matches_taped_forward(
        (n, seed) in (2usize..9, 0u64..500),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let layer = cirgps_nn::GatedGcn::new(&mut store, "g", 6, 0.0, &mut rng);
        // Undirected path graph, both edge directions.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for i in 1..n {
            src.push(i - 1);
            dst.push(i);
            src.push(i);
            dst.push(i - 1);
        }
        let idx = cirgps_nn::EdgeIndex::new(src, dst);
        let x = random_tensor(n, 6, seed ^ 0x1111);
        let e = random_tensor(idx.len(), 6, seed ^ 0x2222);

        let (taped_x, taped_e) = {
            let mut tape = Tape::new(&store, false, 0);
            let xv = tape.input(x.clone());
            let ev = tape.input(e.clone());
            let (x2, e2) = layer.forward(&mut tape, xv, ev, &idx);
            (
                tape.value(x2).as_slice().to_vec(),
                tape.value(e2).as_slice().to_vec(),
            )
        };
        let (free_x, free_e) = layer.infer(&store, &x, &e, &idx);
        prop_assert_eq!(&taped_x[..], free_x.as_slice());
        prop_assert_eq!(&taped_e[..], free_e.as_slice());
    }
}
