//! Cross-backend parity matrix for the SIMD dispatch layer.
//!
//! The repo-wide bitwise-parity contract (`predict == sweep == serve`,
//! taped == tape-free) only holds if every dispatched kernel returns
//! *identical bits* on every backend the dispatcher can pick. These
//! proptests pin that contract at the kernel level: for each microkernel
//! width (N ∈ {8, 16, 32, 64}), each generic/ragged shape (including
//! single-row and empty), and each fused inference op, the scalar
//! reference and every SIMD backend available on this CPU must agree
//! exactly. The int8 path gets the same treatment, plus an analytic
//! divergence bound against full-precision f32.
//!
//! On hardware without AVX2/AVX-512 the `backends()` list degenerates to
//! `[Scalar]` and the tests check self-consistency only; CI runs the
//! matrix on AVX2 hosts (see `.github/workflows/ci.yml`).

use cirgps_nn::simd::ops;
use cirgps_nn::{Backend, QuantMatrix, Tensor};
use proptest::prelude::*;

/// Every backend this CPU can execute, scalar always included.
fn backends() -> Vec<Backend> {
    Backend::ALL
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect()
}

/// Deterministic pseudo-random fill in roughly [-1.9, 1.9].
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(seed.wrapping_mul(2) + 1) % 97) as f32 * 0.04 - 1.9)
        .collect()
}

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_vec(rows, cols, fill(rows * cols, seed))
}

/// Asserts two f32 slices are bitwise identical (stricter than `==`:
/// distinguishes -0.0 from 0.0 and would catch NaN-vs-NaN).
fn assert_bitwise(label: &str, backend: Backend, scalar: &[f32], simd: &[f32]) {
    assert_eq!(scalar.len(), simd.len(), "{label}: length vs {backend}");
    for (i, (a, b)) in scalar.iter().zip(simd).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}[{i}]: scalar {a} != {backend} {b}"
        );
    }
}

/// Shapes covering the microkernel widths, ragged tails, single-row
/// activations (the serve singleton path) and empty batches.
fn gemm_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        // The fixed-width microkernels the dispatcher specializes.
        (1usize..6, 1usize..48, Just(8usize)),
        (1usize..6, 1usize..48, Just(16usize)),
        (1usize..6, 1usize..48, Just(32usize)),
        (1usize..6, 1usize..48, Just(64usize)),
        // Ragged widths around the 8/16-lane boundaries.
        (1usize..6, 1usize..32, 1usize..20),
        // Single row and empty batch.
        Just((1usize, 9usize, 24usize)),
        Just((0usize, 5usize, 8usize)),
        Just((3usize, 1usize, 1usize)),
    ]
}

proptest! {
    #[test]
    fn gemm_family_is_bitwise_equal_across_backends(
        (m, k, n) in gemm_shapes(),
        seed in 0u64..500,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0x9e37);
        for backend in backends() {
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            ops::gemm(Backend::Scalar, &a, &b, &mut scalar, m, k, n);
            ops::gemm(backend, &a, &b, &mut simd, m, k, n);
            assert_bitwise("gemm", backend, &scalar, &simd);

            // aᵀ·b: a stored k×m.
            let at = fill(k * m, seed ^ 0x1111);
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            ops::gemm_atb(Backend::Scalar, &at, &b, &mut scalar, m, k, n);
            ops::gemm_atb(backend, &at, &b, &mut simd, m, k, n);
            assert_bitwise("gemm_atb", backend, &scalar, &simd);

            // a·bᵀ: b stored n×k.
            let bt = fill(n * k, seed ^ 0x2222);
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            ops::gemm_abt(Backend::Scalar, &a, &bt, &mut scalar, m, k, n);
            ops::gemm_abt(backend, &a, &bt, &mut simd, m, k, n);
            assert_bitwise("gemm_abt", backend, &scalar, &simd);
        }
    }

    #[test]
    fn quantized_gemm_is_bitwise_equal_across_backends_and_to_dequantized_f32(
        (m, k, n) in gemm_shapes(),
        seed in 0u64..500,
    ) {
        // QuantMatrix requires a non-degenerate weight.
        let (k, n) = (k.max(1), n.max(1));
        let w = tensor(k, n, seed ^ 0x7f3a);
        let q = QuantMatrix::quantize(&w);
        let a = fill(m * k, seed);

        // Backend parity: identical bits everywhere.
        let mut scalar = vec![0.0f32; m * n];
        ops::gemm_quant(Backend::Scalar, &a, &q, &mut scalar, m);
        for backend in backends() {
            let mut simd = vec![0.0f32; m * n];
            ops::gemm_quant(backend, &a, &q, &mut simd, m);
            assert_bitwise("gemm_quant", backend, &scalar, &simd);
        }

        // Dequantization is exact per element ((q as f32) is exact, q·s is
        // one correctly-rounded multiply), so running the f32 GEMM over the
        // dequantized weight must reproduce the fused int8 kernel bitwise.
        let deq = q.dequantize();
        let mut f32_path = vec![0.0f32; m * n];
        ops::gemm(Backend::Scalar, &a, deq.as_slice(), &mut f32_path, m, k, n);
        assert_bitwise("gemm_quant vs dequantized", Backend::Scalar, &f32_path, &scalar);
    }

    #[test]
    fn quantized_gemm_divergence_from_f32_is_analytically_bounded(
        (m, k, n) in (1usize..5, 1usize..24, 1usize..40),
        seed in 0u64..500,
    ) {
        // Per-weight rounding error is at most scale/2, so element (i, j)
        // of the output diverges from full precision by at most
        // Σ_p |a[i,p]| · scale/2 (plus f32 accumulation noise).
        let w = tensor(k, n, seed ^ 0x55cc);
        let q = QuantMatrix::quantize(&w);
        let a = fill(m * k, seed);

        let mut exact = vec![0.0f32; m * n];
        ops::gemm(Backend::Scalar, &a, w.as_slice(), &mut exact, m, k, n);
        let mut quant = vec![0.0f32; m * n];
        ops::gemm_quant(Backend::Scalar, &a, &q, &mut quant, m);

        for i in 0..m {
            let row_l1: f32 = a[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            let bound = row_l1 * q.max_weight_error() + 1e-5 * (1.0 + k as f32);
            for j in 0..n {
                let d = (exact[i * n + j] - quant[i * n + j]).abs();
                prop_assert!(
                    d <= bound,
                    "({i},{j}): diverged {d} > bound {bound} (scale {})",
                    q.scale()
                );
            }
        }
    }

    #[test]
    fn reductions_and_sweeps_are_bitwise_equal_across_backends(
        len in 0usize..200,
        seed in 0u64..500,
    ) {
        let x = fill(len, seed);
        let y = fill(len, seed ^ 0x3c3c);
        for backend in backends() {
            assert_eq!(
                ops::dot(Backend::Scalar, &x, &y).to_bits(),
                ops::dot(backend, &x, &y).to_bits(),
                "dot vs {backend}"
            );
            assert_eq!(
                ops::laned_sum(Backend::Scalar, &x).to_bits(),
                ops::laned_sum(backend, &x).to_bits(),
                "laned_sum vs {backend}"
            );

            let mut s = x.clone();
            let mut v = x.clone();
            ops::relu_sweep(Backend::Scalar, &mut s);
            ops::relu_sweep(backend, &mut v);
            assert_bitwise("relu_sweep", backend, &s, &v);

            let mut s = x.clone();
            let mut v = x.clone();
            ops::exp_sweep(Backend::Scalar, &mut s);
            ops::exp_sweep(backend, &mut v);
            assert_bitwise("exp_sweep", backend, &s, &v);

            let mut s = x.clone();
            let mut v = x.clone();
            ops::sigmoid_sweep(Backend::Scalar, &mut s);
            ops::sigmoid_sweep(backend, &mut v);
            assert_bitwise("sigmoid_sweep", backend, &s, &v);

            let mut s = x.clone();
            let mut v = x.clone();
            ops::scale_sweep(Backend::Scalar, &mut s, 0.37);
            ops::scale_sweep(backend, &mut v, 0.37);
            assert_bitwise("scale_sweep", backend, &s, &v);
        }
    }

    #[test]
    fn softmax_and_batch_norm_fusions_are_bitwise_equal_across_backends(
        (rows, cols) in (1usize..8, 1usize..40),
        seed in 0u64..500,
    ) {
        let x = tensor(rows, cols, seed);
        let residual = tensor(rows, cols, seed ^ 0x1357);
        let b2 = tensor(rows, cols, seed ^ 0x2468);
        let gamma = tensor(1, cols, seed ^ 0xaaaa);
        let beta = tensor(1, cols, seed ^ 0xbbbb);
        let mean = tensor(1, cols, seed ^ 0xcccc);
        // Variances must be non-negative.
        let var = Tensor::from_vec(
            1,
            cols,
            fill(cols, seed ^ 0xdddd).iter().map(|v| v.abs()).collect(),
        );
        let eps = 1e-5;

        for backend in backends() {
            let s = ops::softmax_rows(Backend::Scalar, &x, 0.5);
            let v = ops::softmax_rows(backend, &x, 0.5);
            assert_bitwise("softmax_rows", backend, s.as_slice(), v.as_slice());

            let s = ops::batch_norm(Backend::Scalar, &x, &gamma, &beta, eps, &mean, &var);
            let v = ops::batch_norm(backend, &x, &gamma, &beta, eps, &mean, &var);
            assert_bitwise("batch_norm", backend, s.as_slice(), v.as_slice());

            let s = ops::batch_norm_relu_add(
                Backend::Scalar, &x, &gamma, &beta, eps, &mean, &var, &residual,
            );
            let v = ops::batch_norm_relu_add(
                backend, &x, &gamma, &beta, eps, &mean, &var, &residual,
            );
            assert_bitwise("batch_norm_relu_add", backend, s.as_slice(), v.as_slice());

            let s = ops::batch_norm_of_sum(Backend::Scalar, &x, &b2, &gamma, &beta, eps, &mean, &var);
            let v = ops::batch_norm_of_sum(backend, &x, &b2, &gamma, &beta, eps, &mean, &var);
            assert_bitwise("batch_norm_of_sum", backend, s.as_slice(), v.as_slice());
        }
    }

    #[test]
    fn gated_scatter_and_add_div_are_bitwise_equal_across_backends(
        (nodes, cols, edges) in (1usize..10, 1usize..24, 0usize..30),
        seed in 0u64..500,
    ) {
        let bx = tensor(nodes, cols, seed);
        let e_hat = tensor(edges, cols, seed ^ 0x4141);
        let src: Vec<usize> = (0..edges)
            .map(|i| (i.wrapping_mul(7) ^ seed as usize) % nodes)
            .collect();
        let dst: Vec<usize> = (0..edges)
            .map(|i| (i.wrapping_mul(13) ^ (seed as usize >> 3)) % nodes)
            .collect();

        let (num_s, den_s) = ops::gated_scatter(Backend::Scalar, &e_hat, &bx, &src, &dst, nodes);
        for backend in backends() {
            let (num_v, den_v) = ops::gated_scatter(backend, &e_hat, &bx, &src, &dst, nodes);
            assert_bitwise("gated_scatter num", backend, num_s.as_slice(), num_v.as_slice());
            assert_bitwise("gated_scatter den", backend, den_s.as_slice(), den_v.as_slice());

            let ax = tensor(nodes, cols, seed ^ 0x8888);
            let s = ops::add_div(Backend::Scalar, ax.clone(), &num_s, &den_s, 1e-6);
            let v = ops::add_div(backend, ax, &num_s, &den_s, 1e-6);
            assert_bitwise("add_div", backend, s.as_slice(), v.as_slice());
        }
    }

    #[test]
    fn performer_feature_map_is_bitwise_equal_across_backends(
        (rows, dim, features) in (1usize..8, 1usize..16, 1usize..24),
        seed in 0u64..500,
    ) {
        let xs = tensor(rows, dim, seed);
        let omega_t = tensor(dim, features, seed ^ 0x6e6e);
        let s = ops::performer_feature_map(Backend::Scalar, &xs, &omega_t, features);
        for backend in backends() {
            let v = ops::performer_feature_map(backend, &xs, &omega_t, features);
            assert_bitwise("performer_feature_map", backend, s.as_slice(), v.as_slice());
        }
    }
}

/// FNV-1a over bytes; the quant-blob golden below is a hex digest of
/// this (same convention as `tests/datagen_golden.rs`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The serialized quant blob is part of the checkpoint wire format:
/// its bytes must never drift, or previously exported `--quantize`
/// checkpoints stop being reproducible. Golden digest committed here.
#[test]
fn quant_blob_bytes_are_golden_stable() {
    let w = tensor(5, 9, 42);
    let q = QuantMatrix::quantize(&w);
    let mut blob = Vec::new();
    cirgps_nn::quant::write_quant_blob(&mut blob, &[("enc.l0.w", &q), ("head.w", &q)])
        .expect("write blob");
    // Two snapshots of the same logical content must be byte-identical.
    let mut again = Vec::new();
    cirgps_nn::quant::write_quant_blob(&mut again, &[("enc.l0.w", &q), ("head.w", &q)])
        .expect("write blob");
    assert_eq!(
        blob, again,
        "quant blob serialization must be deterministic"
    );
    assert_eq!(
        format!("{:016x}", fnv1a(&blob)),
        "341814160a59d95d",
        "quant blob wire format drifted — if intentional, bump the \
         checkpoint version and update this digest"
    );
}

/// Env-forced backends and in-process comparisons must agree: whatever
/// `Backend::active()` latched, re-running a kernel through the explicit
/// `ops` surface with that same backend reproduces the implicit path.
#[test]
fn active_backend_matches_explicit_dispatch() {
    let active = Backend::active();
    assert!(active.available(), "active backend must be executable");
    let a = tensor(3, 17, 7);
    let b = tensor(17, 24, 8);
    let implicit = a.matmul(&b);
    let mut explicit = vec![0.0f32; 3 * 24];
    ops::gemm(active, a.as_slice(), b.as_slice(), &mut explicit, 3, 17, 24);
    assert_bitwise(
        "matmul vs ops::gemm",
        active,
        implicit.as_slice(),
        &explicit,
    );
}
