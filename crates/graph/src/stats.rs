//! Dataset-level statistics (the paper's Table IV) and the Table I
//! feature-dimension specification.

use std::fmt;

use crate::graph::{CircuitGraph, XC_DIM};
use crate::types::NodeType;

/// Human-readable specification of the `XC` circuit-statistics matrix
/// (Table I). Used by documentation, feature normalization and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XcSpec;

impl XcSpec {
    /// Number of dimensions per node row.
    pub const DIM: usize = XC_DIM;

    /// Dimension descriptions for a node type, in order.
    pub fn dims(ty: NodeType) -> &'static [&'static str] {
        match ty {
            NodeType::Net => &[
                "# of connected transistors",
                "# of connected gate terminals",
                "# of connected source/drain terminals",
                "# of connected base terminals",
                "Total width of connected transistors",
                "Total length of connected transistors",
                "# of connected capacitors",
                "Total length of connected capacitors",
                "Total # of connected capacitor fingers",
                "# of connected resistors",
                "Total width of connected resistors",
                "Total length of connected resistors",
                "# of connected ports",
            ],
            NodeType::Device => &[
                "Multiplier of transistors",
                "Length of the transistor",
                "Width of the transistor",
                "Multiplier of connected resistors",
                "Length of resistor",
                "Width of resistor",
                "Multiplier of connected capacitor",
                "Length of capacitor",
                "# of capacitor fingers",
                "# of ports in the device instance",
                "Type code of the device instance",
            ],
            NodeType::Pin => &["Pin types (G/D/S/B for MOS)"],
        }
    }
}

/// Graph-level statistics, one row of Table IV.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphStats {
    /// Design name.
    pub name: String,
    /// Total node count (paper column `N`).
    pub num_nodes: usize,
    /// Total undirected edge count (paper column `N_E`).
    pub num_edges: usize,
    /// Nodes per type `[net, device, pin]`.
    pub node_type_counts: [usize; 3],
    /// Mean degree.
    pub mean_degree: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn of(name: &str, graph: &CircuitGraph) -> Self {
        let n = graph.num_nodes();
        let e = graph.num_edges();
        GraphStats {
            name: name.to_string(),
            num_nodes: n,
            num_edges: e,
            node_type_counts: graph.node_type_counts(),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * e as f64 / n as f64
            },
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: N={} NE={} (net/dev/pin = {}/{}/{}, mean degree {:.2})",
            self.name,
            self.num_nodes,
            self.num_edges,
            self.node_type_counts[0],
            self.node_type_counts[1],
            self.node_type_counts[2],
            self.mean_degree
        )
    }
}

/// Formats a count with K/M suffixes as in the paper's Table IV.
pub fn human_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}K", n / 1000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::types::EdgeType;

    #[test]
    fn spec_dimensions_match_table1() {
        assert_eq!(XcSpec::dims(NodeType::Net).len(), 13);
        assert_eq!(XcSpec::dims(NodeType::Device).len(), 11);
        assert_eq!(XcSpec::dims(NodeType::Pin).len(), 1);
        assert!(XcSpec::DIM >= XcSpec::dims(NodeType::Net).len());
    }

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeType::Net, "a");
        let p = b.add_node(NodeType::Pin, "p");
        let d = b.add_node(NodeType::Device, "d");
        b.add_edge(a, p, EdgeType::NetPin);
        b.add_edge(p, d, EdgeType::DevicePin);
        let g = b.build();
        let s = GraphStats::of("tiny", &g);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.node_type_counts, [1, 1, 1]);
        assert!((s.mean_degree - 4.0 / 3.0).abs() < 1e-9);
        assert!(s.to_string().contains("tiny"));
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(87_000), "87K");
        assert_eq!(human_count(3_500_000), "3.5M");
        assert_eq!(human_count(153), "153");
    }
}
