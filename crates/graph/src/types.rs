//! Node, edge and link type codes of the heterogeneous circuit graph.
//!
//! These integer codes follow Section III-A of the paper exactly: nets are
//! type 0, devices type 1, pins type 2; schematic edges are `device-pin`
//! (0) and `net-pin` (1); prediction targets ("links", only observable in
//! the post-layout netlist) are `pin-net` (2), `pin-pin` (3) and `net-net`
//! (4) couplings.

use std::fmt;

/// Heterogeneous node type (`xi` in the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[repr(u8)]
pub enum NodeType {
    /// A net (green circle in Fig. 1); `xi = 0`.
    Net = 0,
    /// A device instance (orange square); `xi = 1`.
    Device = 1,
    /// A device pin (yellow circle); `xi = 2`.
    Pin = 2,
}

impl NodeType {
    /// Number of node types.
    pub const COUNT: usize = 3;

    /// The integer code.
    pub fn code(self) -> usize {
        self as usize
    }

    /// Decodes an integer code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 2`.
    pub fn from_code(code: usize) -> Self {
        match code {
            0 => NodeType::Net,
            1 => NodeType::Device,
            2 => NodeType::Pin,
            _ => panic!("invalid node type code {code}"),
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeType::Net => "net",
            NodeType::Device => "device",
            NodeType::Pin => "pin",
        };
        f.write_str(s)
    }
}

/// Edge/link type code (`ei` in the paper).
///
/// Values 0–1 are schematic topology edges; 2–4 are coupling links (the
/// prediction targets, present only after link injection).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[repr(u8)]
pub enum EdgeType {
    /// Device-to-pin connection; `ei = 0`.
    DevicePin = 0,
    /// Net-to-pin connection; `ei = 1`.
    NetPin = 1,
    /// Pin-to-net coupling link; `ei = 2`.
    CouplingPinNet = 2,
    /// Pin-to-pin coupling link; `ei = 3`.
    CouplingPinPin = 3,
    /// Net-to-net coupling link; `ei = 4`.
    CouplingNetNet = 4,
}

impl EdgeType {
    /// Number of edge types (including link types).
    pub const COUNT: usize = 5;

    /// The integer code.
    pub fn code(self) -> usize {
        self as usize
    }

    /// Decodes an integer code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 4`.
    pub fn from_code(code: usize) -> Self {
        match code {
            0 => EdgeType::DevicePin,
            1 => EdgeType::NetPin,
            2 => EdgeType::CouplingPinNet,
            3 => EdgeType::CouplingPinPin,
            4 => EdgeType::CouplingNetNet,
            _ => panic!("invalid edge type code {code}"),
        }
    }

    /// Whether this is a coupling link (prediction target) rather than a
    /// schematic edge.
    pub fn is_link(self) -> bool {
        self.code() >= 2
    }

    /// The link type implied by the node types of its two endpoints.
    ///
    /// Returns `None` for endpoint combinations that cannot couple (e.g.
    /// anything involving a device body).
    pub fn link_between(a: NodeType, b: NodeType) -> Option<EdgeType> {
        match (a, b) {
            (NodeType::Pin, NodeType::Net) | (NodeType::Net, NodeType::Pin) => {
                Some(EdgeType::CouplingPinNet)
            }
            (NodeType::Pin, NodeType::Pin) => Some(EdgeType::CouplingPinPin),
            (NodeType::Net, NodeType::Net) => Some(EdgeType::CouplingNetNet),
            _ => None,
        }
    }
}

impl fmt::Display for EdgeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeType::DevicePin => "device-pin",
            EdgeType::NetPin => "net-pin",
            EdgeType::CouplingPinNet => "p2n",
            EdgeType::CouplingPinPin => "p2p",
            EdgeType::CouplingNetNet => "n2n",
        };
        f.write_str(s)
    }
}

/// Pin terminal codes used as the pin-node circuit statistic (Table I,
/// `xi = 2` row: "Pin types (G/D/S/B for MOS)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[repr(u8)]
pub enum PinKind {
    /// MOS drain.
    Drain = 0,
    /// MOS gate.
    Gate = 1,
    /// MOS source.
    Source = 2,
    /// MOS bulk/body.
    Bulk = 3,
    /// Two-terminal device positive terminal.
    Positive = 4,
    /// Two-terminal device negative terminal.
    Negative = 5,
    /// Diode anode.
    Anode = 6,
    /// Diode cathode.
    Cathode = 7,
}

impl PinKind {
    /// Number of pin kinds.
    pub const COUNT: usize = 8;

    /// The integer code.
    pub fn code(self) -> usize {
        self as usize
    }

    /// Maps a terminal name (as in [`ams_netlist::DeviceKind::terminal_names`])
    /// to its kind.
    ///
    /// # Panics
    ///
    /// Panics on an unknown terminal name.
    pub fn from_terminal(name: &str) -> Self {
        match name {
            "D" => PinKind::Drain,
            "G" => PinKind::Gate,
            "S" => PinKind::Source,
            "B" => PinKind::Bulk,
            "P" => PinKind::Positive,
            "N" => PinKind::Negative,
            "A" => PinKind::Anode,
            "C" => PinKind::Cathode,
            other => panic!("unknown terminal name {other:?}"),
        }
    }

    /// The terminal name.
    pub fn terminal_name(self) -> &'static str {
        match self {
            PinKind::Drain => "D",
            PinKind::Gate => "G",
            PinKind::Source => "S",
            PinKind::Bulk => "B",
            PinKind::Positive => "P",
            PinKind::Negative => "N",
            PinKind::Anode => "A",
            PinKind::Cathode => "C",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in 0..NodeType::COUNT {
            assert_eq!(NodeType::from_code(c).code(), c);
        }
        for c in 0..EdgeType::COUNT {
            assert_eq!(EdgeType::from_code(c).code(), c);
        }
    }

    #[test]
    fn link_type_inference() {
        assert_eq!(
            EdgeType::link_between(NodeType::Pin, NodeType::Net),
            Some(EdgeType::CouplingPinNet)
        );
        assert_eq!(
            EdgeType::link_between(NodeType::Net, NodeType::Pin),
            Some(EdgeType::CouplingPinNet)
        );
        assert_eq!(
            EdgeType::link_between(NodeType::Net, NodeType::Net),
            Some(EdgeType::CouplingNetNet)
        );
        assert_eq!(
            EdgeType::link_between(NodeType::Device, NodeType::Net),
            None
        );
    }

    #[test]
    fn schematic_vs_link_edges() {
        assert!(!EdgeType::DevicePin.is_link());
        assert!(!EdgeType::NetPin.is_link());
        assert!(EdgeType::CouplingPinNet.is_link());
        assert!(EdgeType::CouplingNetNet.is_link());
    }

    #[test]
    fn pin_kind_names_round_trip() {
        for code in 0..PinKind::COUNT as u8 {
            let k = match code {
                0 => PinKind::Drain,
                1 => PinKind::Gate,
                2 => PinKind::Source,
                3 => PinKind::Bulk,
                4 => PinKind::Positive,
                5 => PinKind::Negative,
                6 => PinKind::Anode,
                _ => PinKind::Cathode,
            };
            assert_eq!(PinKind::from_terminal(k.terminal_name()), k);
        }
    }
}
