//! The heterogeneous circuit graph in CSR form.

use ams_netlist::{DeviceId, NetId};

use crate::types::{EdgeType, NodeType, PinKind};

/// Width of the circuit-statistics matrix `XC` (Table I: net rows use 13
/// dimensions, device rows 11, pin rows 1; all padded to 13).
pub const XC_DIM: usize = 13;

/// Where a graph node came from in the source netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NodeOrigin {
    /// A net node.
    Net(NetId),
    /// A device node.
    Device(DeviceId),
    /// A pin node: one per distinct `(device, connected net)` pair, labeled
    /// by the first terminal that maps to it.
    Pin {
        /// Owning device.
        device: DeviceId,
        /// The pin kind of the first terminal merged into this pin.
        kind: PinKind,
        /// The net the pin connects to.
        net: NetId,
    },
}

/// An undirected edge or injected link, for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: u32,
    /// Other endpoint.
    pub b: u32,
    /// Edge/link type.
    pub ty: EdgeType,
}

/// Heterogeneous circuit graph with CSR adjacency.
///
/// Nodes are nets, devices and pins; undirected edges carry an
/// [`EdgeType`]. Coupling links (types 2–4) may be *injected* before
/// enclosing-subgraph sampling, following SEAL's protocol.
///
/// # Examples
///
/// ```
/// use circuit_graph::{CircuitGraph, EdgeType, GraphBuilder, NodeType};
///
/// let mut b = GraphBuilder::new();
/// let net = b.add_node(NodeType::Net, "n1");
/// let pin = b.add_node(NodeType::Pin, "M1:G");
/// b.add_edge(net, pin, EdgeType::NetPin);
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.degree(net), 1);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CircuitGraph {
    node_types: Vec<NodeType>,
    node_names: Vec<String>,
    origins: Vec<Option<NodeOrigin>>,
    /// Circuit statistics, `num_nodes × XC_DIM`, row-major.
    xc: Vec<f32>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    nbr_types: Vec<u8>,
    num_undirected: usize,
}

impl CircuitGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of undirected edges (each stored twice internally).
    pub fn num_edges(&self) -> usize {
        self.num_undirected
    }

    /// Type of node `v`.
    pub fn node_type(&self, v: u32) -> NodeType {
        self.node_types[v as usize]
    }

    /// Name of node `v` (net name, device name, or `device:PIN`).
    pub fn node_name(&self, v: u32) -> &str {
        &self.node_names[v as usize]
    }

    /// Netlist origin of node `v`, if built from a netlist.
    pub fn origin(&self, v: u32) -> Option<NodeOrigin> {
        self.origins[v as usize]
    }

    /// Neighbor list of `v` with parallel edge-type codes.
    pub fn adjacency(&self, v: u32) -> (&[u32], &[u8]) {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        (&self.neighbors[s..e], &self.nbr_types[s..e])
    }

    /// Degree of `v` (including injected links).
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Iterates over `(neighbor, edge_type)` of `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, EdgeType)> + '_ {
        let (nbrs, tys) = self.adjacency(v);
        nbrs.iter()
            .zip(tys)
            .map(|(&n, &t)| (n, EdgeType::from_code(t as usize)))
    }

    /// Whether an edge of any type exists between `a` and `b`.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        let (da, db) = (self.degree(a), self.degree(b));
        let (v, w) = if da <= db { (a, b) } else { (b, a) };
        self.adjacency(v).0.contains(&w)
    }

    /// The circuit-statistics row (`XC`, Table I) for node `v`.
    pub fn xc_row(&self, v: u32) -> &[f32] {
        &self.xc[v as usize * XC_DIM..(v as usize + 1) * XC_DIM]
    }

    /// The full `XC` matrix, row-major `num_nodes × XC_DIM`.
    pub fn xc(&self) -> &[f32] {
        &self.xc
    }

    /// Counts nodes of each type, indexed by [`NodeType::code`].
    pub fn node_type_counts(&self) -> [usize; NodeType::COUNT] {
        let mut counts = [0usize; NodeType::COUNT];
        for t in &self.node_types {
            counts[t.code()] += 1;
        }
        counts
    }

    /// Counts undirected edges of each type, indexed by [`EdgeType::code`].
    pub fn edge_type_counts(&self) -> [usize; EdgeType::COUNT] {
        let mut counts = [0usize; EdgeType::COUNT];
        for (v, &off) in self.offsets[..self.num_nodes()].iter().enumerate() {
            let end = self.offsets[v + 1];
            for k in off..end {
                if self.neighbors[k as usize] as usize >= v {
                    counts[self.nbr_types[k as usize] as usize] += 1;
                }
            }
        }
        counts
    }

    /// Finds a node id by exact name (linear scan; intended for tests and
    /// SPF joining, which builds its own index).
    pub fn node_by_name(&self, name: &str) -> Option<u32> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u32)
    }

    /// Returns a new graph with the given links added to the adjacency
    /// (SEAL-style link injection before subgraph sampling).
    ///
    /// # Panics
    ///
    /// Panics if a link endpoint is out of range or a link type is not a
    /// coupling type.
    pub fn with_injected_links(&self, links: &[Edge]) -> CircuitGraph {
        for l in links {
            assert!(l.ty.is_link(), "injected edge must be a coupling link");
            assert!((l.a as usize) < self.num_nodes() && (l.b as usize) < self.num_nodes());
        }
        let mut builder = GraphBuilder {
            node_types: self.node_types.clone(),
            node_names: self.node_names.clone(),
            origins: self.origins.clone(),
            xc: self.xc.clone(),
            edges: Vec::with_capacity(self.num_undirected + links.len()),
        };
        for (v, &off) in self.offsets[..self.num_nodes()].iter().enumerate() {
            let end = self.offsets[v + 1];
            for k in off..end {
                let n = self.neighbors[k as usize];
                if n as usize >= v {
                    builder.edges.push(Edge {
                        a: v as u32,
                        b: n,
                        ty: EdgeType::from_code(self.nbr_types[k as usize] as usize),
                    });
                }
            }
        }
        builder.edges.extend_from_slice(links);
        builder.build()
    }

    /// Breadth-first distances from `src`, up to `max_hops` (inclusive).
    /// Unreached nodes get `u32::MAX`. Allocates `O(N)`; for repeated
    /// sampling use [`crate::bfs::BfsScratch`].
    pub fn bfs_distances(&self, src: u32, max_hops: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            if d >= max_hops {
                continue;
            }
            for &n in self.adjacency(v).0 {
                if dist[n as usize] == u32::MAX {
                    dist[n as usize] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }
}

/// Incremental builder for [`CircuitGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    node_types: Vec<NodeType>,
    node_names: Vec<String>,
    origins: Vec<Option<NodeOrigin>>,
    xc: Vec<f32>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with a zeroed statistics row, returning its id.
    pub fn add_node(&mut self, ty: NodeType, name: &str) -> u32 {
        self.node_types.push(ty);
        self.node_names.push(name.to_string());
        self.origins.push(None);
        self.xc.extend(std::iter::repeat_n(0.0, XC_DIM));
        (self.node_types.len() - 1) as u32
    }

    /// Adds a node with an origin annotation.
    pub fn add_node_with_origin(&mut self, ty: NodeType, name: &str, origin: NodeOrigin) -> u32 {
        let v = self.add_node(ty, name);
        self.origins[v as usize] = Some(origin);
        v
    }

    /// Sets one entry of a node's statistics row.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= XC_DIM`.
    pub fn set_xc(&mut self, v: u32, dim: usize, value: f32) {
        assert!(dim < XC_DIM, "xc dim {dim} out of range");
        self.xc[v as usize * XC_DIM + dim] = value;
    }

    /// Adds to one entry of a node's statistics row.
    pub fn add_xc(&mut self, v: u32, dim: usize, delta: f32) {
        assert!(dim < XC_DIM, "xc dim {dim} out of range");
        self.xc[v as usize * XC_DIM + dim] += delta;
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `a == b` (self-loops are
    /// not meaningful in a circuit graph).
    pub fn add_edge(&mut self, a: u32, b: u32, ty: EdgeType) {
        let n = self.node_types.len() as u32;
        assert!(a < n && b < n, "edge endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        self.edges.push(Edge { a, b, ty });
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Finalizes the CSR representation.
    pub fn build(self) -> CircuitGraph {
        let n = self.node_types.len();
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0u32; total];
        let mut nbr_types = vec![0u8; total];
        let mut cursor = offsets.clone();
        for e in &self.edges {
            let ka = cursor[e.a as usize] as usize;
            neighbors[ka] = e.b;
            nbr_types[ka] = e.ty.code() as u8;
            cursor[e.a as usize] += 1;
            let kb = cursor[e.b as usize] as usize;
            neighbors[kb] = e.a;
            nbr_types[kb] = e.ty.code() as u8;
            cursor[e.b as usize] += 1;
        }
        CircuitGraph {
            node_types: self.node_types,
            node_names: self.node_names,
            origins: self.origins,
            xc: self.xc,
            offsets,
            neighbors,
            nbr_types,
            num_undirected: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CircuitGraph {
        // net0 - pin1 - dev2, plus net3 isolated
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(NodeType::Net, "n0");
        let p1 = b.add_node(NodeType::Pin, "M1:G");
        let d2 = b.add_node(NodeType::Device, "M1");
        let _n3 = b.add_node(NodeType::Net, "n3");
        b.add_edge(n0, p1, EdgeType::NetPin);
        b.add_edge(p1, d2, EdgeType::DevicePin);
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        let nbrs: Vec<_> = g.neighbors(1).collect();
        assert!(nbrs.contains(&(0, EdgeType::NetPin)));
        assert!(nbrs.contains(&(2, EdgeType::DevicePin)));
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = tiny();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn type_counts() {
        let g = tiny();
        assert_eq!(g.node_type_counts(), [2, 1, 1]);
        let e = g.edge_type_counts();
        assert_eq!(e[EdgeType::DevicePin.code()], 1);
        assert_eq!(e[EdgeType::NetPin.code()], 1);
    }

    #[test]
    fn inject_links() {
        let g = tiny();
        let g2 = g.with_injected_links(&[Edge {
            a: 0,
            b: 3,
            ty: EdgeType::CouplingNetNet,
        }]);
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(0, 3));
        assert_eq!(g2.edge_type_counts()[EdgeType::CouplingNetNet.code()], 1);
        // Original untouched.
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    #[should_panic(expected = "coupling link")]
    fn inject_rejects_schematic_edges() {
        let g = tiny();
        g.with_injected_links(&[Edge {
            a: 0,
            b: 3,
            ty: EdgeType::NetPin,
        }]);
    }

    #[test]
    fn bfs_distances_cap() {
        let g = tiny();
        let d = g.bfs_distances(0, 1);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX); // beyond 1 hop
        assert_eq!(d[3], u32::MAX); // disconnected
        let d2 = g.bfs_distances(0, 5);
        assert_eq!(d2[2], 2);
    }

    #[test]
    fn xc_rows() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(NodeType::Net, "n");
        b.set_xc(v, 0, 2.0);
        b.add_xc(v, 0, 1.0);
        b.set_xc(v, 12, 1.0);
        let g = b.build();
        assert_eq!(g.xc_row(v)[0], 3.0);
        assert_eq!(g.xc_row(v)[12], 1.0);
        assert_eq!(g.xc_row(v)[5], 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(NodeType::Net, "n");
        b.add_edge(v, v, EdgeType::NetPin);
    }
}
