//! Netlist → heterogeneous graph conversion ("AMS netlist conversion",
//! step 1 of the paper's pipeline) including the circuit-statistics matrix
//! `XC` of Table I.

use std::collections::HashMap;

use ams_netlist::{DeviceKind, Netlist, SpfNode};

use crate::graph::{CircuitGraph, GraphBuilder, NodeOrigin};
use crate::types::{EdgeType, NodeType, PinKind};

/// Unit scale for geometric statistics: meters → microns keeps the raw
/// feature magnitudes near 1 for 28 nm-class devices.
const UM: f64 = 1e6;

/// Table I dimension indices for net-node statistics.
pub mod net_dims {
    /// \# of connected transistors.
    pub const TRANSISTORS: usize = 0;
    /// \# of connected gate terminals.
    pub const GATES: usize = 1;
    /// \# of connected source/drain terminals.
    pub const SOURCE_DRAIN: usize = 2;
    /// \# of connected base (bulk) terminals.
    pub const BASE: usize = 3;
    /// Total width of connected transistors (µm).
    pub const MOS_WIDTH: usize = 4;
    /// Total length of connected transistors (µm).
    pub const MOS_LENGTH: usize = 5;
    /// \# of connected capacitors.
    pub const CAPACITORS: usize = 6;
    /// Total length of connected capacitors (µm).
    pub const CAP_LENGTH: usize = 7;
    /// Total # of connected capacitor fingers.
    pub const CAP_FINGERS: usize = 8;
    /// \# of connected resistors.
    pub const RESISTORS: usize = 9;
    /// Total width of connected resistors (µm).
    pub const RES_WIDTH: usize = 10;
    /// Total length of connected resistors (µm).
    pub const RES_LENGTH: usize = 11;
    /// \# of connected ports (1 if the net itself is a port).
    pub const PORTS: usize = 12;
}

/// Table I dimension indices for device-node statistics.
pub mod device_dims {
    /// Multiplier of transistors.
    pub const MOS_MULT: usize = 0;
    /// Length of the transistor (µm).
    pub const MOS_LENGTH: usize = 1;
    /// Width of the transistor (µm).
    pub const MOS_WIDTH: usize = 2;
    /// Multiplier of connected resistors.
    pub const RES_MULT: usize = 3;
    /// Length of resistor (µm).
    pub const RES_LENGTH: usize = 4;
    /// Width of resistor (µm).
    pub const RES_WIDTH: usize = 5;
    /// Multiplier of connected capacitor.
    pub const CAP_MULT: usize = 6;
    /// Length of capacitor (µm).
    pub const CAP_LENGTH: usize = 7;
    /// \# of capacitor fingers.
    pub const CAP_FINGERS: usize = 8;
    /// \# of ports (pins) in the device instance.
    pub const PORTS: usize = 9;
    /// Type code of the device instance.
    pub const TYPE_CODE: usize = 10;
}

fn device_type_code(kind: DeviceKind) -> f32 {
    match kind {
        DeviceKind::Nmos => 1.0,
        DeviceKind::Pmos => 2.0,
        DeviceKind::Resistor => 3.0,
        DeviceKind::Capacitor => 4.0,
        DeviceKind::Diode => 5.0,
    }
}

/// Mapping from netlist entities to graph node ids, kept alongside the
/// graph so SPF parasitics can be joined back onto nodes.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    /// Net id → node id (indexed by `NetId.0`).
    pub net_nodes: Vec<u32>,
    /// Device id → node id (indexed by `DeviceId.0`).
    pub device_nodes: Vec<u32>,
    /// `(device index, net node)` → pin node.
    pin_nodes: HashMap<(u32, u32), u32>,
    name_to_net: HashMap<String, u32>,
    name_to_device: HashMap<String, u32>,
}

impl NodeMap {
    /// Pin node of `device` connected to graph node `net_node`, if any.
    pub fn pin_node(&self, device: u32, net_node: u32) -> Option<u32> {
        self.pin_nodes.get(&(device, net_node)).copied()
    }

    /// Resolves an SPF node reference to a graph node id.
    ///
    /// Net references resolve to net nodes; pin references (`device:PIN`)
    /// resolve to the merged pin node for that terminal's net.
    pub fn resolve(&self, netlist: &Netlist, node: &SpfNode) -> Option<u32> {
        match node {
            SpfNode::Net(name) => self.name_to_net.get(name).copied(),
            SpfNode::Pin { device, pin } => {
                let &dev_node = self.name_to_device.get(device)?;
                let (dev_id, dev) = netlist.device_by_name(device)?;
                let term_idx = dev.kind.terminal_names().iter().position(|t| t == pin)?;
                let net = dev.terminals[term_idx];
                let net_node = *self.net_nodes.get(net.0 as usize)?;
                let _ = (dev_node, dev_id);
                self.pin_node(self.name_to_device[device], net_node)
            }
        }
    }
}

/// Converts a flattened netlist to the heterogeneous graph of Section
/// III-A, computing `XC` statistics (Table I) along the way.
///
/// Terminals of one device that share a net are merged into a single pin
/// node (as in the paper's Fig. 1, where source and bulk of `M1` share one
/// pin). Returns the graph and a [`NodeMap`] for joining SPF parasitics.
///
/// # Examples
///
/// ```
/// use ams_netlist::SpiceFile;
/// use circuit_graph::netlist_to_graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// .SUBCKT BUF N1 N2 N3 N4
/// M1 N2 N1 N3 N3 nch W=0.1u L=0.03u
/// M2 N2 N1 N4 N4 pch W=0.4u L=0.03u
/// .ENDS
/// ";
/// let nl = SpiceFile::parse(src)?.flatten("BUF")?;
/// let (graph, _map) = netlist_to_graph(&nl);
/// // Fig. 1: 4 nets + 2 devices + 6 pins.
/// assert_eq!(graph.num_nodes(), 12);
/// # Ok(())
/// # }
/// ```
pub fn netlist_to_graph(netlist: &Netlist) -> (CircuitGraph, NodeMap) {
    let mut b = GraphBuilder::new();
    let mut map = NodeMap::default();

    // Net nodes.
    for (id, net) in netlist.nets() {
        let v = b.add_node_with_origin(NodeType::Net, &net.name, NodeOrigin::Net(id));
        map.net_nodes.push(v);
        map.name_to_net.insert(net.name.clone(), v);
        if net.is_port {
            b.set_xc(v, net_dims::PORTS, 1.0);
        }
    }

    // Device + pin nodes.
    for (dev_id, dev) in netlist.devices() {
        let d = b.add_node_with_origin(NodeType::Device, &dev.name, NodeOrigin::Device(dev_id));
        map.device_nodes.push(d);
        map.name_to_device.insert(dev.name.clone(), d);

        let p = &dev.params;
        match dev.kind {
            DeviceKind::Nmos | DeviceKind::Pmos => {
                b.set_xc(d, device_dims::MOS_MULT, p.multiplier as f32);
                b.set_xc(d, device_dims::MOS_LENGTH, (p.length * UM) as f32);
                b.set_xc(d, device_dims::MOS_WIDTH, (p.width * UM) as f32);
            }
            DeviceKind::Resistor => {
                b.set_xc(d, device_dims::RES_MULT, p.multiplier as f32);
                b.set_xc(d, device_dims::RES_LENGTH, (p.length * UM) as f32);
                b.set_xc(d, device_dims::RES_WIDTH, (p.width * UM) as f32);
            }
            DeviceKind::Capacitor => {
                b.set_xc(d, device_dims::CAP_MULT, p.multiplier as f32);
                b.set_xc(d, device_dims::CAP_LENGTH, (p.length * UM) as f32);
                b.set_xc(d, device_dims::CAP_FINGERS, p.fingers as f32);
            }
            DeviceKind::Diode => {}
        }
        b.set_xc(d, device_dims::TYPE_CODE, device_type_code(dev.kind));

        // One pin node per distinct connected net.
        let term_names = dev.kind.terminal_names();
        let mut n_pins = 0.0f32;
        for (ti, &net) in dev.terminals.iter().enumerate() {
            let net_node = map.net_nodes[net.0 as usize];
            let key = (d, net_node);
            if map.pin_nodes.contains_key(&key) {
                continue;
            }
            let kind = PinKind::from_terminal(term_names[ti]);
            let pin_name = format!("{}:{}", dev.name, term_names[ti]);
            let pv = b.add_node_with_origin(
                NodeType::Pin,
                &pin_name,
                NodeOrigin::Pin {
                    device: dev_id,
                    kind,
                    net,
                },
            );
            b.set_xc(pv, 0, kind.code() as f32);
            b.add_edge(d, pv, EdgeType::DevicePin);
            b.add_edge(net_node, pv, EdgeType::NetPin);
            map.pin_nodes.insert(key, pv);
            n_pins += 1.0;
        }
        b.set_xc(d, device_dims::PORTS, n_pins);

        // Accumulate net-side statistics per terminal (not per merged pin:
        // a net touching both S and B of a MOS sees both counted, matching
        // "number of connected ... terminals").
        for (ti, &net) in dev.terminals.iter().enumerate() {
            let nv = map.net_nodes[net.0 as usize];
            match dev.kind {
                DeviceKind::Nmos | DeviceKind::Pmos => {
                    match PinKind::from_terminal(term_names[ti]) {
                        PinKind::Gate => b.add_xc(nv, net_dims::GATES, 1.0),
                        PinKind::Drain | PinKind::Source => {
                            b.add_xc(nv, net_dims::SOURCE_DRAIN, 1.0)
                        }
                        PinKind::Bulk => b.add_xc(nv, net_dims::BASE, 1.0),
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        // Per-device (not per-terminal) net statistics: count each device
        // once per distinct connected net.
        let mut seen = Vec::new();
        for &net in &dev.terminals {
            if seen.contains(&net) {
                continue;
            }
            seen.push(net);
            let nv = map.net_nodes[net.0 as usize];
            match dev.kind {
                DeviceKind::Nmos | DeviceKind::Pmos => {
                    b.add_xc(nv, net_dims::TRANSISTORS, p.multiplier.max(1.0) as f32);
                    b.add_xc(nv, net_dims::MOS_WIDTH, (p.width * UM) as f32);
                    b.add_xc(nv, net_dims::MOS_LENGTH, (p.length * UM) as f32);
                }
                DeviceKind::Capacitor => {
                    b.add_xc(nv, net_dims::CAPACITORS, 1.0);
                    b.add_xc(nv, net_dims::CAP_LENGTH, (p.length * UM) as f32);
                    b.add_xc(nv, net_dims::CAP_FINGERS, p.fingers as f32);
                }
                DeviceKind::Resistor => {
                    b.add_xc(nv, net_dims::RESISTORS, 1.0);
                    b.add_xc(nv, net_dims::RES_WIDTH, (p.width * UM) as f32);
                    b.add_xc(nv, net_dims::RES_LENGTH, (p.length * UM) as f32);
                }
                DeviceKind::Diode => {}
            }
        }
    }

    (b.build(), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::SpiceFile;

    const BUFFER: &str = "
.SUBCKT BUF N1 N2 N3 N4
M1 N2 N1 N3 N3 nch W=0.1u L=0.03u
M2 N2 N1 N4 N4 pch W=0.4u L=0.03u
.ENDS
";

    fn buffer_graph() -> (CircuitGraph, NodeMap, Netlist) {
        let nl = SpiceFile::parse(BUFFER).unwrap().flatten("BUF").unwrap();
        let (g, m) = netlist_to_graph(&nl);
        (g, m, nl)
    }

    #[test]
    fn figure1_node_and_edge_counts() {
        let (g, _, _) = buffer_graph();
        // Fig. 1: nets N1..N4, devices M1 M2, pins P1..P6.
        assert_eq!(g.node_type_counts(), [4, 2, 6]);
        // Each pin has one device edge and one net edge.
        let e = g.edge_type_counts();
        assert_eq!(e[EdgeType::DevicePin.code()], 6);
        assert_eq!(e[EdgeType::NetPin.code()], 6);
    }

    #[test]
    fn shared_source_bulk_pin_is_merged() {
        let (g, m, nl) = buffer_graph();
        let (m1_id, _) = nl.device_by_name("M1").unwrap();
        let d = m.device_nodes[m1_id.0 as usize];
        // M1 touches 3 distinct nets (N2, N1, N3), so 3 pins.
        let pin_count = g
            .neighbors(d)
            .filter(|(_, t)| *t == EdgeType::DevicePin)
            .count();
        assert_eq!(pin_count, 3);
    }

    #[test]
    fn net_statistics_match_table1_semantics() {
        let (g, m, nl) = buffer_graph();
        let n1 = m.net_nodes[nl.net_id("N1").unwrap().0 as usize];
        let row = g.xc_row(n1);
        // N1 is the gate of both transistors.
        assert_eq!(row[net_dims::TRANSISTORS], 2.0);
        assert_eq!(row[net_dims::GATES], 2.0);
        assert_eq!(row[net_dims::SOURCE_DRAIN], 0.0);
        // Total widths: 0.1 + 0.4 µm.
        assert!((row[net_dims::MOS_WIDTH] - 0.5).abs() < 1e-4);
        assert_eq!(row[net_dims::PORTS], 1.0);

        let n3 = m.net_nodes[nl.net_id("N3").unwrap().0 as usize];
        let row3 = g.xc_row(n3);
        // N3 is source+bulk of M1: one transistor, 1 S/D terminal, 1 base.
        assert_eq!(row3[net_dims::TRANSISTORS], 1.0);
        assert_eq!(row3[net_dims::SOURCE_DRAIN], 1.0);
        assert_eq!(row3[net_dims::BASE], 1.0);
    }

    #[test]
    fn device_statistics() {
        let (g, m, nl) = buffer_graph();
        let (m2_id, _) = nl.device_by_name("M2").unwrap();
        let d = m.device_nodes[m2_id.0 as usize];
        let row = g.xc_row(d);
        assert!((row[device_dims::MOS_WIDTH] - 0.4).abs() < 1e-4);
        assert!((row[device_dims::MOS_LENGTH] - 0.03).abs() < 1e-4);
        assert_eq!(row[device_dims::PORTS], 3.0);
        assert_eq!(row[device_dims::TYPE_CODE], 2.0); // pmos
    }

    #[test]
    fn pin_statistics_and_names() {
        let (g, m, nl) = buffer_graph();
        let (m1_id, m1) = nl.device_by_name("M1").unwrap();
        let gate_net = m1.terminals[1];
        let gate_net_node = m.net_nodes[gate_net.0 as usize];
        let pin = m
            .pin_node(m.device_nodes[m1_id.0 as usize], gate_net_node)
            .unwrap();
        assert_eq!(g.node_type(pin), NodeType::Pin);
        assert_eq!(g.xc_row(pin)[0], PinKind::Gate.code() as f32);
        assert_eq!(g.node_name(pin), "M1:G");
    }

    #[test]
    fn spf_resolution() {
        let (_, m, nl) = buffer_graph();
        let n = m.resolve(&nl, &SpfNode::Net("N2".into()));
        assert!(n.is_some());
        let p = m.resolve(
            &nl,
            &SpfNode::Pin {
                device: "M1".into(),
                pin: "G".into(),
            },
        );
        assert!(p.is_some());
        // Bulk resolves to the same merged pin as source for M1.
        let s = m.resolve(
            &nl,
            &SpfNode::Pin {
                device: "M1".into(),
                pin: "S".into(),
            },
        );
        let b = m.resolve(
            &nl,
            &SpfNode::Pin {
                device: "M1".into(),
                pin: "B".into(),
            },
        );
        assert_eq!(s, b);
        assert!(m.resolve(&nl, &SpfNode::Net("nope".into())).is_none());
    }

    #[test]
    fn rc_statistics_accumulate() {
        let src = "
.SUBCKT T A B
R1 A B rp W=1u L=10u
C1 A B mom L=5u NF=8
C2 A B mom L=3u NF=4
.ENDS
";
        let nl = SpiceFile::parse(src).unwrap().flatten("T").unwrap();
        let (g, m) = netlist_to_graph(&nl);
        let a = m.net_nodes[nl.net_id("A").unwrap().0 as usize];
        let row = g.xc_row(a);
        assert_eq!(row[net_dims::RESISTORS], 1.0);
        assert_eq!(row[net_dims::CAPACITORS], 2.0);
        assert!((row[net_dims::CAP_LENGTH] - 8.0).abs() < 1e-4);
        assert_eq!(row[net_dims::CAP_FINGERS], 12.0);
        assert!((row[net_dims::RES_LENGTH] - 10.0).abs() < 1e-4);
    }
}
