//! # circuit-graph
//!
//! Heterogeneous circuit-graph representation for the CirGPS reproduction
//! (Section III-A of the paper): nets, devices and pins as typed nodes;
//! `device-pin`/`net-pin` schematic edges; coupling links as injectable
//! target edges; the `XC` circuit-statistics matrix of Table I; and the
//! BFS utilities that enclosing-subgraph sampling is built on.
//!
//! ## Example
//!
//! ```
//! use ams_netlist::SpiceFile;
//! use circuit_graph::{netlist_to_graph, GraphStats, NodeType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! .SUBCKT INV A Z VDD VSS
//! M1 Z A VSS VSS nch W=0.1u L=0.03u
//! M2 Z A VDD VDD pch W=0.4u L=0.03u
//! .ENDS
//! ";
//! let netlist = SpiceFile::parse(src)?.flatten("INV")?;
//! let (graph, _map) = netlist_to_graph(&netlist);
//! let stats = GraphStats::of("inv", &graph);
//! assert_eq!(stats.node_type_counts[NodeType::Device.code()], 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bfs;
mod convert;
mod graph;
mod stats;
mod types;

pub use bfs::BfsScratch;
pub use convert::{device_dims, net_dims, netlist_to_graph, NodeMap};
pub use graph::{CircuitGraph, Edge, GraphBuilder, NodeOrigin, XC_DIM};
pub use stats::{human_count, GraphStats, XcSpec};
pub use types::{EdgeType, NodeType, PinKind};
