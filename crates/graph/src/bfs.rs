//! Reusable breadth-first search scratch space.
//!
//! Enclosing-subgraph sampling runs thousands of small BFS traversals over
//! a graph with millions of nodes; allocating a fresh distance array per
//! query would dominate the runtime. [`BfsScratch`] keeps a versioned
//! distance array so a reset is `O(1)`.

use crate::graph::CircuitGraph;

/// Versioned BFS scratch for repeated limited-hop traversals.
///
/// # Examples
///
/// ```
/// use circuit_graph::{BfsScratch, EdgeType, GraphBuilder, NodeType};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(NodeType::Net, "a");
/// let p = b.add_node(NodeType::Pin, "p");
/// b.add_edge(a, p, EdgeType::NetPin);
/// let g = b.build();
///
/// let mut bfs = BfsScratch::new(g.num_nodes());
/// let visited = bfs.run(&g, a, 1);
/// assert_eq!(visited, vec![a, p]);
/// assert_eq!(bfs.distance(p), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BfsScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: std::collections::VecDeque<u32>,
}

impl BfsScratch {
    /// Creates scratch space for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        BfsScratch {
            dist: vec![0; num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Runs a BFS from `src` up to `max_hops`, returning visited nodes in
    /// BFS order (including `src`). Distances remain queryable via
    /// [`BfsScratch::distance`] until the next `run`/`run_multi`.
    ///
    /// # Panics
    ///
    /// Panics if the scratch was sized for a smaller graph.
    pub fn run(&mut self, graph: &CircuitGraph, src: u32, max_hops: u32) -> Vec<u32> {
        self.run_multi(graph, &[src], max_hops)
    }

    /// Multi-source BFS (used for the union neighborhood of link anchors).
    ///
    /// # Panics
    ///
    /// Panics if the scratch was sized for a smaller graph or a source
    /// node is out of range.
    pub fn run_multi(&mut self, graph: &CircuitGraph, sources: &[u32], max_hops: u32) -> Vec<u32> {
        assert!(
            self.dist.len() >= graph.num_nodes(),
            "scratch sized for smaller graph"
        );
        // Empty graph / empty source set: nothing to traverse. Guarded
        // explicitly so callers get an empty result instead of an opaque
        // index panic below.
        if graph.num_nodes() == 0 || sources.is_empty() {
            return Vec::new();
        }
        for &s in sources {
            assert!(
                (s as usize) < graph.num_nodes(),
                "BFS source {s} out of range for graph with {} nodes",
                graph.num_nodes()
            );
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: clear everything once every 2^32 runs.
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
        self.queue.clear();
        let mut order = Vec::new();
        for &s in sources {
            if self.stamp[s as usize] != self.epoch {
                self.stamp[s as usize] = self.epoch;
                self.dist[s as usize] = 0;
                self.queue.push_back(s);
                order.push(s);
            }
        }
        while let Some(v) = self.queue.pop_front() {
            let d = self.dist[v as usize];
            if d >= max_hops {
                continue;
            }
            for &n in graph.adjacency(v).0 {
                if self.stamp[n as usize] != self.epoch {
                    self.stamp[n as usize] = self.epoch;
                    self.dist[n as usize] = d + 1;
                    self.queue.push_back(n);
                    order.push(n);
                }
            }
        }
        order
    }

    /// Distance of `v` from the most recent run's sources, if reached.
    pub fn distance(&self, v: u32) -> Option<u32> {
        (self.stamp[v as usize] == self.epoch).then(|| self.dist[v as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::types::{EdgeType, NodeType};

    fn path(n: usize) -> CircuitGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n)
            .map(|i| {
                b.add_node(
                    if i % 2 == 0 {
                        NodeType::Net
                    } else {
                        NodeType::Pin
                    },
                    &format!("v{i}"),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], EdgeType::NetPin);
        }
        b.build()
    }

    #[test]
    fn single_source_matches_graph_bfs() {
        let g = path(8);
        let mut s = BfsScratch::new(g.num_nodes());
        s.run(&g, 0, 3);
        let reference = g.bfs_distances(0, 3);
        for v in 0..8u32 {
            let expected = (reference[v as usize] != u32::MAX).then(|| reference[v as usize]);
            assert_eq!(s.distance(v), expected, "node {v}");
        }
    }

    #[test]
    fn multi_source_union() {
        let g = path(10);
        let mut s = BfsScratch::new(g.num_nodes());
        let visited = s.run_multi(&g, &[0, 9], 1);
        // 0,9 plus their 1-hop neighbors 1 and 8.
        assert_eq!(visited.len(), 4);
        assert_eq!(s.distance(1), Some(1));
        assert_eq!(s.distance(8), Some(1));
        assert_eq!(s.distance(5), None);
    }

    #[test]
    fn epochs_reset_cheaply() {
        let g = path(5);
        let mut s = BfsScratch::new(g.num_nodes());
        s.run(&g, 0, 4);
        assert_eq!(s.distance(4), Some(4));
        s.run(&g, 4, 0);
        assert_eq!(s.distance(0), None);
        assert_eq!(s.distance(4), Some(0));
    }

    #[test]
    fn empty_graph_and_empty_sources_return_empty() {
        let empty = GraphBuilder::new().build();
        let mut s = BfsScratch::new(0);
        assert!(s.run_multi(&empty, &[], 3).is_empty());
        let g = path(3);
        let mut s2 = BfsScratch::new(3);
        assert!(s2.run_multi(&g, &[], 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics_clearly() {
        let g = path(3);
        let mut s = BfsScratch::new(8);
        let _ = s.run(&g, 7, 1);
    }

    #[test]
    fn duplicate_sources_ok() {
        let g = path(4);
        let mut s = BfsScratch::new(g.num_nodes());
        let visited = s.run_multi(&g, &[2, 2], 1);
        assert_eq!(visited.len(), 3); // 2, 1, 3
    }
}
