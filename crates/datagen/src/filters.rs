//! Electrical-validity filters for enumerated designs.
//!
//! The grammar guarantees *structural* well-formedness (cells exist,
//! port counts match); these filters check the *electrical* invariants
//! the ISSUE calls out, on the flattened primitive netlist where they
//! are unambiguous:
//!
//! * **terminal arity** — every primitive device carries exactly the
//!   terminal count its [`DeviceKind`](ams_netlist::DeviceKind) defines;
//! * **no dangling nets** — every non-port net is seen by at least two
//!   device terminals (a single-terminal net is an antenna);
//! * **driven nets / no floating gates** — every net that feeds a MOS
//!   gate is also reachable from a driver: a non-gate terminal
//!   (drain/source/body or an R/C/diode end), a supply rail, or a
//!   top-level port (driven by the outside world).
//!
//! [`check_design`] returns *all* violations, not just the first, so a
//! failing production in the enumerator is diagnosable in one pass.

use std::fmt;

use ams_netlist::Netlist;

use crate::builder::Design;

/// One electrical-validity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A device carries the wrong number of terminals for its kind.
    TerminalArity {
        /// Flattened device name.
        device: String,
        /// Terminals found.
        found: usize,
        /// Terminals its kind requires.
        expected: usize,
    },
    /// A non-port net connects to fewer than two device terminals.
    DanglingNet {
        /// Net name.
        net: String,
        /// Terminal connections found (0 or 1).
        connections: usize,
    },
    /// A net feeds at least one MOS gate but has no driver of any kind.
    FloatingGate {
        /// Net name.
        net: String,
        /// Number of gates hanging off it.
        gates: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TerminalArity {
                device,
                found,
                expected,
            } => write!(f, "device {device}: {found} terminals, expected {expected}"),
            Violation::DanglingNet { net, connections } => {
                write!(f, "net {net}: dangling ({connections} connection(s))")
            }
            Violation::FloatingGate { net, gates } => {
                write!(f, "net {net}: {gates} floating gate(s), no driver")
            }
        }
    }
}

/// Whether a net name is a global supply rail.
fn is_supply(name: &str) -> bool {
    name.starts_with("VDD") || name.starts_with("VSS")
}

/// Runs every filter over the flattened netlist. `Ok(())` means the
/// design is electrically valid; `Err` carries every violation found.
///
/// # Errors
///
/// Returns the complete violation list when any invariant fails.
pub fn check_design(design: &Design) -> Result<(), Vec<Violation>> {
    check_netlist(&design.netlist)
}

/// [`check_design`] over a bare flattened netlist (used by tests that
/// parse SPICE from disk rather than building a [`Design`]).
///
/// # Errors
///
/// Returns the complete violation list when any invariant fails.
pub fn check_netlist(netlist: &Netlist) -> Result<(), Vec<Violation>> {
    let num_nets = netlist.num_nets();
    // Per-net tallies in one device pass: total terminal connections and
    // how many of them are MOS gates vs. anything that can drive.
    let mut connections = vec![0u32; num_nets];
    let mut gates = vec![0u32; num_nets];
    let mut drivers = vec![0u32; num_nets];
    let mut violations = Vec::new();

    for (_, dev) in netlist.devices() {
        let expected = dev.kind.terminal_names().len();
        if dev.terminals.len() != expected {
            violations.push(Violation::TerminalArity {
                device: dev.name.clone(),
                found: dev.terminals.len(),
                expected,
            });
            continue;
        }
        for (i, net) in dev.terminals.iter().enumerate() {
            let n = net.0 as usize;
            connections[n] += 1;
            // Terminal index 1 is the gate on D/G/S/B-ordered MOS cards;
            // every other terminal of any device kind conducts.
            if dev.kind.is_mos() && i == 1 {
                gates[n] += 1;
            } else {
                drivers[n] += 1;
            }
        }
    }

    for (id, net) in netlist.nets() {
        let n = id.0 as usize;
        let externally_driven = net.is_port || is_supply(&net.name);
        if !externally_driven && connections[n] < 2 {
            violations.push(Violation::DanglingNet {
                net: net.name.clone(),
                connections: connections[n] as usize,
            });
        }
        if !externally_driven && gates[n] > 0 && drivers[n] == 0 {
            violations.push(Violation::FloatingGate {
                net: net.name.clone(),
                gates: gates[n] as usize,
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    #[test]
    fn hand_written_archetypes_pass_every_filter() {
        for kind in crate::DesignKind::ALL {
            let d = crate::generate(kind, crate::SizePreset::Tiny).unwrap();
            if let Err(v) = check_design(&d) {
                panic!("{kind:?}: {} violations, first: {}", v.len(), v[0]);
            }
        }
    }

    #[test]
    fn floating_gate_is_caught() {
        // An inverter whose input net has no driver and is not a port.
        let mut b = DesignBuilder::new("BAD");
        b.port("OUT");
        b.instance("Xi", "INV", &["floater", "OUT", "VDD", "VSS"], 0.0, 0.0)
            .unwrap();
        let d = b.finish().unwrap();
        let v = check_design(&d).unwrap_err();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::FloatingGate { net, .. } if net.contains("floater")
            )),
            "missing floating-gate violation: {v:?}"
        );
    }

    #[test]
    fn dangling_net_is_caught() {
        // A decap whose far end touches nothing else: one lone terminal.
        let mut b = DesignBuilder::new("BAD");
        b.port("IN");
        b.instance("Xb", "INV", &["IN", "mid", "VDD", "VSS"], 0.0, 0.0)
            .unwrap();
        b.instance("Xc", "INV", &["mid", "IN", "VDD", "VSS"], 0.0, 0.3)
            .unwrap();
        b.raw_device("Cdang nowhere VSS 1f", 1.0, 1.0);
        let d = b.finish().unwrap();
        let v = check_design(&d).unwrap_err();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::DanglingNet { net, .. } if net.contains("nowhere")
            )),
            "missing dangling-net violation: {v:?}"
        );
    }
}
