//! Design builder: composes library cells into a placed top-level design.
//!
//! The builder produces real hierarchical SPICE (the top cell instantiates
//! library subcircuits), flattens it through `ams-netlist`, and records a
//! floorplan position for every instance so the layout-proxy extractor can
//! synthesize geometric parasitics.

use std::collections::HashMap;
use std::fmt;

use ams_netlist::{Netlist, SpiceFile};

use crate::cells;

/// A placed, flattened synthetic design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name (e.g. `SSRAM`).
    pub name: String,
    /// Flattened primitive netlist.
    pub netlist: Netlist,
    /// Floorplan position of each top-level instance, microns.
    pub placement: Placement,
    /// The hierarchical SPICE source the design was flattened from.
    pub spice: String,
}

/// Floorplan positions for instances and an accessor that resolves any
/// flattened device name to a deterministic position.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    positions: HashMap<String, (f64, f64)>,
}

impl Placement {
    /// Records the position of a top-level instance (or a top-level device).
    pub fn place(&mut self, instance: &str, x: f64, y: f64) {
        self.positions.insert(instance.to_string(), (x, y));
    }

    /// Number of placed instances.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether no instance has been placed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Resolves a flattened device name (`Xinst.M1` or `M1`) to a position.
    ///
    /// The instance part (first path segment) gives the base position; the
    /// remainder adds a small deterministic jitter so devices inside one
    /// cell do not collapse onto a single point. Unplaced devices fall back
    /// to a hash-derived position, keeping extraction total.
    pub fn device_position(&self, device_name: &str) -> (f64, f64) {
        let first = device_name.split('.').next().unwrap_or(device_name);
        let base = self
            .positions
            .get(first)
            .or_else(|| self.positions.get(device_name));
        let (bx, by) = match base {
            Some(&(x, y)) => (x, y),
            None => {
                let h = fxhash(device_name);
                (
                    ((h >> 8) % 4096) as f64 * 0.5,
                    ((h >> 20) % 4096) as f64 * 0.5,
                )
            }
        };
        let h = fxhash(device_name);
        let jx = ((h & 0xf) as f64) * 0.05;
        let jy = (((h >> 4) & 0xf) as f64) * 0.05;
        (bx + jx, by + jy)
    }
}

/// Deterministic 64-bit string hash (FNV-1a).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Error from design construction.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildDesignError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for BuildDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "design build error: {}", self.message)
    }
}

impl std::error::Error for BuildDesignError {}

/// Incrementally builds a top-level design out of library cells.
///
/// # Examples
///
/// ```
/// use ams_datagen::DesignBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DesignBuilder::new("DEMO");
/// b.port("IN"); b.port("OUT"); b.port("VDD"); b.port("VSS");
/// b.instance("Xb", "BUF", &["IN", "OUT", "VDD", "VSS"], 0.0, 0.0)?;
/// let design = b.finish()?;
/// assert_eq!(design.netlist.num_devices(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    ports: Vec<String>,
    lines: Vec<String>,
    placement: Placement,
    instance_count: usize,
}

impl DesignBuilder {
    /// Starts a design named `name`.
    pub fn new(name: &str) -> Self {
        DesignBuilder {
            name: name.to_string(),
            ports: Vec::new(),
            lines: Vec::new(),
            placement: Placement::default(),
            instance_count: 0,
        }
    }

    /// Declares a top-level port net.
    pub fn port(&mut self, name: &str) {
        if !self.ports.iter().any(|p| p == name) {
            self.ports.push(name.to_string());
        }
    }

    /// Instantiates a library cell at floorplan position `(x, y)` µm.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell is unknown or the connection count does
    /// not match the cell's port list.
    pub fn instance(
        &mut self,
        inst: &str,
        cell: &str,
        nets: &[&str],
        x: f64,
        y: f64,
    ) -> Result<(), BuildDesignError> {
        let ports = cells::cell_ports(cell).ok_or_else(|| BuildDesignError {
            message: format!("unknown cell {cell:?}"),
        })?;
        if ports.len() != nets.len() {
            return Err(BuildDesignError {
                message: format!(
                    "{inst}: cell {cell} has {} ports, got {} connections",
                    ports.len(),
                    nets.len()
                ),
            });
        }
        self.lines.push(format!("{inst} {} {cell}", nets.join(" ")));
        self.placement.place(inst, x, y);
        self.instance_count += 1;
        Ok(())
    }

    /// Adds a raw top-level device card (e.g. a decap or bus resistor).
    pub fn raw_device(&mut self, card: &str, x: f64, y: f64) {
        let name = card.split_whitespace().next().unwrap_or("").to_string();
        self.lines.push(card.to_string());
        self.placement.place(&name, x, y);
    }

    /// Number of instances added so far.
    pub fn instance_count(&self) -> usize {
        self.instance_count
    }

    /// Emits SPICE, flattens it, and returns the placed design.
    ///
    /// # Errors
    ///
    /// Propagates SPICE parse/flatten failures (which indicate a generator
    /// bug, e.g. a port-count mismatch).
    pub fn finish(self) -> Result<Design, BuildDesignError> {
        let mut spice = String::new();
        spice.push_str("* generated design: ");
        spice.push_str(&self.name);
        spice.push('\n');
        spice.push_str(".GLOBAL VDD VSS\n");
        spice.push_str(cells::library_spice());
        spice.push('\n');
        spice.push_str(&format!(".SUBCKT {} {}\n", self.name, self.ports.join(" ")));
        for line in &self.lines {
            spice.push_str(line);
            spice.push('\n');
        }
        spice.push_str(".ENDS\n");

        let file = SpiceFile::parse(&spice).map_err(|e| BuildDesignError {
            message: e.to_string(),
        })?;
        let netlist = file.flatten(&self.name).map_err(|e| BuildDesignError {
            message: e.to_string(),
        })?;
        Ok(Design {
            name: self.name,
            netlist,
            placement: self.placement,
            spice,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_flattens() {
        let mut b = DesignBuilder::new("T");
        b.port("A");
        b.port("Z");
        b.instance("Xi", "INV", &["A", "Z", "VDD", "VSS"], 1.0, 2.0)
            .unwrap();
        let d = b.finish().unwrap();
        assert_eq!(d.netlist.num_devices(), 2);
        assert!(d.netlist.device_by_name("Xi.M1").is_some());
        let (x, y) = d.placement.device_position("Xi.M1");
        assert!(x >= 1.0 && x < 2.0);
        assert!(y >= 2.0 && y < 3.0);
    }

    #[test]
    fn rejects_unknown_cell() {
        let mut b = DesignBuilder::new("T");
        assert!(b.instance("X1", "NOPE", &[], 0.0, 0.0).is_err());
    }

    #[test]
    fn rejects_bad_connection_count() {
        let mut b = DesignBuilder::new("T");
        assert!(b.instance("X1", "INV", &["A"], 0.0, 0.0).is_err());
    }

    #[test]
    fn positions_are_deterministic() {
        let mut p = Placement::default();
        p.place("Xa", 10.0, 20.0);
        assert_eq!(p.device_position("Xa.M1"), p.device_position("Xa.M1"));
        assert_ne!(p.device_position("Xa.M1"), p.device_position("Xa.M2"));
        // Unplaced devices still get a stable position.
        assert_eq!(p.device_position("ghost"), p.device_position("ghost"));
    }

    #[test]
    fn raw_devices_are_placed() {
        let mut b = DesignBuilder::new("T");
        b.port("A");
        b.raw_device("Cdec A VSS 10f", 5.0, 5.0);
        let d = b.finish().unwrap();
        assert_eq!(d.netlist.num_devices(), 1);
        let (x, _) = d.placement.device_position("Cdec");
        assert!(x >= 5.0);
    }
}
