//! Lowers grammar [`Term`]s to placed designs and exposes the
//! deterministic design-space iterator behind `cirgps datagen`.
//!
//! The pipeline is: [`crate::grammar::family_workload`] (symbolic
//! enumeration) → size window filter → sort by `(size, name)` →
//! [`build_term`] (SPICE + placement) → [`crate::filters::check_design`]
//! (electrical validity) → [`GeneratedDesign`].
//!
//! Everything downstream (CLI, pretrain corpus loading, benches, CI
//! smoke) consumes [`DesignEnumerator`]; designs only touch disk when
//! the CLI explicitly writes them via [`crate::emit`].

use ams_netlist::SpfFile;

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::filters::check_design;
use crate::grammar::{family_workload, Family, Filter, Term};
use crate::tiles::{
    bitcell_array_6t, bitcell_array_8t, column_periphery, row_decoder, CELL_H, CELL_W,
};
use crate::{extract_parasitics, ExtractConfig};

/// What to enumerate: a size window over one family (or all six) plus
/// the corpus seed.
#[derive(Debug, Clone)]
pub struct EnumerateConfig {
    /// Restrict to one family; `None` enumerates all six.
    pub family: Option<Family>,
    /// Corpus seed: feeds the per-design extraction seed (the SPICE
    /// structure is a pure function of the term; the parasitic jitter is
    /// a pure function of `(seed, term)`).
    pub seed: u64,
    /// Keep terms with `size_estimate <= max_size`.
    pub max_size: u64,
    /// Keep terms with `size_estimate >= min_size` (0 = no lower bound).
    pub min_size: u64,
    /// Stop after this many designs (`None` = the whole window).
    pub count: Option<usize>,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig {
            family: None,
            seed: 7,
            max_size: 4_000,
            min_size: 0,
            count: None,
        }
    }
}

/// One enumerated design: the term it came from plus the built artifact.
#[derive(Debug, Clone)]
pub struct GeneratedDesign {
    /// The grammar term.
    pub term: Term,
    /// The built, placed, flattened design.
    pub design: Design,
    /// The extraction seed derived from `(corpus seed, term)`.
    pub extract_seed: u64,
}

impl GeneratedDesign {
    /// Runs the layout-proxy extractor with this design's derived seed,
    /// producing the SPF half of the SPICE+SPF pair.
    pub fn extract(&self) -> SpfFile {
        let cfg = ExtractConfig {
            seed: self.extract_seed,
            ..Default::default()
        };
        extract_parasitics(&self.design, &cfg)
    }
}

/// The terms of the configured window, sorted by `(size, name)` — the
/// canonical enumeration order every consumer sees.
pub fn enumerate_terms(family: Option<Family>, min_size: u64, max_size: u64) -> Vec<Term> {
    let families: &[Family] = match family {
        Some(ref f) => std::slice::from_ref(f),
        None => &Family::ALL,
    };
    let mut terms: Vec<Term> = families
        .iter()
        .flat_map(|&f| {
            family_workload(f)
                .filter(Filter::MaxSize(max_size))
                .filter(Filter::MinSize(min_size))
                .terms()
        })
        .collect();
    terms.sort_by_cached_key(|t| (t.size_estimate(), t.name()));
    terms
}

/// SplitMix64 finalizer: derives the per-design extraction seed from the
/// corpus seed and the term name, so every design in a corpus gets
/// independent — but exactly reproducible — parasitic jitter.
pub fn term_extract_seed(corpus_seed: u64, term: &Term) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ corpus_seed;
    for b in term.name().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Iterator over the configured design window in canonical order.
///
/// Terms whose built design fails the electrical filters are skipped
/// (and counted in [`DesignEnumerator::skipped`]); with the shipped
/// grammar this never happens — the datagen tests assert as much — but
/// the contract keeps future productions honest.
#[derive(Debug)]
pub struct DesignEnumerator {
    terms: std::vec::IntoIter<Term>,
    seed: u64,
    remaining: Option<usize>,
    skipped: usize,
}

impl DesignEnumerator {
    /// Designs dropped by the validity filters so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Terms not yet yielded (upper bound on designs left).
    pub fn terms_left(&self) -> usize {
        self.terms.len()
    }
}

impl Iterator for DesignEnumerator {
    type Item = GeneratedDesign;

    fn next(&mut self) -> Option<GeneratedDesign> {
        if self.remaining == Some(0) {
            return None;
        }
        for term in self.terms.by_ref() {
            let design = match build_term(&term, self.seed) {
                Ok(d) => d,
                Err(_) => {
                    self.skipped += 1;
                    continue;
                }
            };
            if check_design(&design).is_err() {
                self.skipped += 1;
                continue;
            }
            if let Some(n) = self.remaining.as_mut() {
                *n -= 1;
            }
            let extract_seed = term_extract_seed(self.seed, &term);
            return Some(GeneratedDesign {
                term,
                design,
                extract_seed,
            });
        }
        None
    }
}

/// Enumerates the configured design window: the Rust-API twin of
/// `cirgps datagen`.
pub fn enumerate_designs(cfg: &EnumerateConfig) -> DesignEnumerator {
    DesignEnumerator {
        terms: enumerate_terms(cfg.family, cfg.min_size, cfg.max_size).into_iter(),
        seed: cfg.seed,
        remaining: cfg.count,
        skipped: 0,
    }
}

/// Builds the placed design for one term. The SPICE structure is a pure
/// function of the term (the corpus seed only flows into extraction), so
/// the same term always emits byte-identical SPICE.
///
/// # Errors
///
/// Returns a [`BuildDesignError`] only on a generator bug (the grammar
/// guarantees cell/port agreement).
pub fn build_term(term: &Term, _corpus_seed: u64) -> Result<Design, BuildDesignError> {
    let mut b = DesignBuilder::new(&term.name());
    match *term {
        Term::Chain { cell, len } => build_chain(&mut b, cell, len, "", 0.0, 0.0, true)?,
        Term::Tree { depth, fanout } => build_tree(&mut b, depth, fanout)?,
        Term::Bus {
            cell,
            lanes,
            stages,
        } => build_bus(&mut b, cell, lanes, stages)?,
        Term::Mux { bits, lanes } => build_mux(&mut b, bits, lanes)?,
        Term::Decoder { bits } => build_decoder(&mut b, bits)?,
        Term::Array {
            eight_t,
            rows,
            cols,
            periphery,
        } => build_array(&mut b, eight_t, rows, cols, periphery)?,
        Term::Sandwich { rows, cols } => build_sandwich(&mut b, rows, cols)?,
    }
    b.finish()
}

/// Wires one chain stage of `cell` from `prev` to `next`. Non-datapath
/// inputs tie to the stage-support nets (`{p}TIE1`/`{p}TIE0`/`{p}CLK`)
/// created by [`build_chain`] / [`build_bus`].
fn stage_nets<'a>(
    cell: &str,
    prev: &'a str,
    next: &'a str,
    tie1: &'a str,
    tie0: &'a str,
    clk: &'a str,
) -> Vec<&'a str> {
    match cell {
        "NAND2" => vec![prev, tie1, next, "VDD", "VSS"],
        "NOR2" | "XOR2" => vec![prev, tie0, next, "VDD", "VSS"],
        "DFF" => vec![prev, clk, next, "VDD", "VSS"],
        // INV / INVX4 / BUF / RCDELAY
        _ => vec![prev, next, "VDD", "VSS"],
    }
}

/// Whether `cell` needs the TIE1/TIE0/CLK support nets.
fn stage_support(cell: &str) -> (bool, bool, bool) {
    match cell {
        "NAND2" => (true, false, false),
        "NOR2" | "XOR2" => (false, true, false),
        "DFF" => (false, false, true),
        _ => (false, false, false),
    }
}

/// A `len`-stage chain of `cell` between ports `{p}IN` and `{p}OUT`,
/// meander-placed in a square-ish block at `(x0, y0)`. With `own_ports`
/// the chain declares its boundary nets (and any support nets) as
/// top-level ports; bus lanes share support nets instead.
fn build_chain(
    b: &mut DesignBuilder,
    cell: &'static str,
    len: u32,
    p: &str,
    x0: f64,
    y0: f64,
    own_ports: bool,
) -> Result<(), BuildDesignError> {
    let input = format!("{p}IN");
    let output = format!("{p}OUT");
    let (tie1, tie0, clk) = (format!("{p}TIE1"), format!("{p}TIE0"), format!("{p}CLK"));
    if own_ports {
        b.port(&input);
        b.port(&output);
        let (need1, need0, needck) = stage_support(cell);
        if need1 || need0 {
            // TIE1 = INV(IN); TIE0 = INV(TIE1): both driven, no floats.
            b.instance("Xtie1", "INV", &[&input, &tie1, "VDD", "VSS"], x0 - 1.0, y0)?;
            if need0 {
                b.instance(
                    "Xtie0",
                    "INV",
                    &[&tie1, &tie0, "VDD", "VSS"],
                    x0 - 1.0,
                    y0 + 0.3,
                )?;
            }
        }
        if needck {
            b.port(&clk);
        }
    }
    // Meander over a square-ish grid so the coupling radius sees
    // neighboring stages in both directions.
    let row_w = (len as f64).sqrt().ceil() as u32;
    let net = |i: u32| -> String {
        if i == 0 {
            input.clone()
        } else if i == len {
            output.clone()
        } else {
            format!("{p}c{i}")
        }
    };
    for i in 0..len {
        let (prev, next) = (net(i), net(i + 1));
        let nets = stage_nets(cell, &prev, &next, &tie1, &tie0, &clk);
        let (r, c) = (i / row_w, i % row_w);
        b.instance(
            &format!("X{p}s{i}"),
            cell,
            &nets,
            x0 + c as f64 * CELL_W,
            y0 + r as f64 * CELL_H,
        )?;
    }
    Ok(())
}

/// A buffer fan-out tree: `CK` at the root, one BUF per node, an INV
/// load on every leaf whose output becomes a port.
fn build_tree(b: &mut DesignBuilder, depth: u32, fanout: u32) -> Result<(), BuildDesignError> {
    b.port("CK");
    b.instance("Xroot", "BUF", &["CK", "t0_0", "VDD", "VSS"], 0.0, 0.0)?;
    let mut level_width = 1u32;
    for l in 1..=depth {
        level_width *= fanout;
        for k in 0..level_width {
            let parent = format!("t{}_{}", l - 1, k / fanout);
            let own = format!("t{l}_{k}");
            b.instance(
                &format!("Xb{l}_{k}"),
                "BUF",
                &[&parent, &own, "VDD", "VSS"],
                k as f64 * CELL_W * 2.0,
                l as f64 * 1.5,
            )?;
        }
    }
    for k in 0..level_width {
        let leaf = format!("L{k}");
        b.port(&leaf);
        b.instance(
            &format!("Xl{k}"),
            "INV",
            &[&format!("t{depth}_{k}"), &leaf, "VDD", "VSS"],
            k as f64 * CELL_W * 2.0,
            (depth + 1) as f64 * 1.5,
        )?;
    }
    Ok(())
}

/// `lanes` parallel chains at bitcell pitch, sharing one set of support
/// nets, so adjacent lanes couple along their whole length.
fn build_bus(
    b: &mut DesignBuilder,
    cell: &'static str,
    lanes: u32,
    stages: u32,
) -> Result<(), BuildDesignError> {
    let (need1, need0, needck) = stage_support(cell);
    if need1 || need0 {
        b.instance("Xtie1", "INV", &["l0_IN", "TIE1", "VDD", "VSS"], -1.0, 0.0)?;
        if need0 {
            b.instance("Xtie0", "INV", &["TIE1", "TIE0", "VDD", "VSS"], -1.0, 0.3)?;
        }
    }
    if needck {
        b.port("CLK");
    }
    for l in 0..lanes {
        let p = format!("l{l}_");
        b.port(&format!("{p}IN"));
        b.port(&format!("{p}OUT"));
        let net = |i: u32| -> String {
            if i == 0 {
                format!("{p}IN")
            } else if i == stages {
                format!("{p}OUT")
            } else {
                format!("{p}c{i}")
            }
        };
        for i in 0..stages {
            let (prev, next) = (net(i), net(i + 1));
            let nets = stage_nets(cell, &prev, &next, "TIE1", "TIE0", "CLK");
            b.instance(
                &format!("X{p}s{i}"),
                cell,
                &nets,
                i as f64 * CELL_W,
                l as f64 * CELL_H,
            )?;
        }
    }
    Ok(())
}

/// `lanes` binary MUX2 selection trees over `2^bits` inputs, sharing a
/// buffered select bus.
fn build_mux(b: &mut DesignBuilder, bits: u32, lanes: u32) -> Result<(), BuildDesignError> {
    for bit in 0..bits {
        let sel = format!("S{bit}");
        b.port(&sel);
        b.instance(
            &format!("Xsb{bit}"),
            "BUF",
            &[&sel, &format!("sb{bit}"), "VDD", "VSS"],
            -2.0,
            bit as f64 * 0.5,
        )?;
    }
    let inputs = 1u32 << bits;
    for l in 0..lanes {
        for i in 0..inputs {
            b.port(&format!("D{l}_{i}"));
        }
        b.port(&format!("Y{l}"));
        // Level b reduces 2^(bits-b) nets to 2^(bits-b-1).
        for bit in 0..bits {
            let width = 1u32 << (bits - bit - 1);
            for k in 0..width {
                let pick = |j: u32| -> String {
                    if bit == 0 {
                        format!("D{l}_{j}")
                    } else {
                        format!("m{l}_{bit}_{j}")
                    }
                };
                let out = if bit == bits - 1 {
                    format!("Y{l}")
                } else {
                    format!("m{l}_{}_{k}", bit + 1)
                };
                b.instance(
                    &format!("Xm{l}_{bit}_{k}"),
                    "MUX2",
                    &[
                        &pick(2 * k),
                        &pick(2 * k + 1),
                        &format!("sb{bit}"),
                        &out,
                        "VDD",
                        "VSS",
                    ],
                    bit as f64 * 1.2,
                    (l * inputs + k * (inputs / width)) as f64 * CELL_H,
                )?;
            }
        }
    }
    Ok(())
}

/// A `2^bits`-row address decoder driving a two-column bitcell slice.
fn build_decoder(b: &mut DesignBuilder, bits: u32) -> Result<(), BuildDesignError> {
    let rows = 1usize << bits;
    for bit in 0..bits {
        b.port(&format!("A{bit}"));
    }
    b.port("PCB");
    row_decoder(b, "", rows, "", 0.0, 0.0)?;
    bitcell_array_6t(b, "", rows, 2, 2.0, 0.0)?;
    for c in 0..2 {
        b.instance(
            &format!("Xpch{c}"),
            "PRECH",
            &[&format!("BL{c}"), &format!("BLB{c}"), "PCB", "VDD"],
            2.0 + c as f64 * CELL_W,
            rows as f64 * CELL_H + 0.5,
        )?;
    }
    Ok(())
}

/// An SRAM bitcell tiling; bare arrays terminate their bitlines and
/// wordlines in ports, `periphery` adds column periphery + row decoder
/// (6T only — the grammar never emits an 8T periphery term).
fn build_array(
    b: &mut DesignBuilder,
    eight_t: bool,
    rows: u32,
    cols: u32,
    periphery: bool,
) -> Result<(), BuildDesignError> {
    let (rows, cols) = (rows as usize, cols as usize);
    if eight_t {
        for r in 0..rows {
            b.port(&format!("WWL{r}"));
            b.port(&format!("RWL{r}"));
        }
        for c in 0..cols {
            b.port(&format!("WBL{c}"));
            b.port(&format!("WBLB{c}"));
            b.port(&format!("RBL{c}"));
        }
        bitcell_array_8t(b, "", rows, cols, 0.0, 0.0)?;
        return Ok(());
    }
    if !periphery {
        for r in 0..rows {
            b.port(&format!("WL{r}"));
        }
        for c in 0..cols {
            b.port(&format!("BL{c}"));
            b.port(&format!("BLB{c}"));
        }
        bitcell_array_6t(b, "", rows, cols, 0.0, 0.0)?;
        return Ok(());
    }
    let abits = rows.next_power_of_two().trailing_zeros().max(1);
    for bit in 0..abits {
        b.port(&format!("A{bit}"));
    }
    for name in ["PCB", "WEN", "SAE", "CSEL0", "CSEL1"] {
        b.port(name);
    }
    for c in 0..cols {
        b.port(&format!("D{c}"));
    }
    for g in 0..cols.div_ceil(4).max(1) {
        b.port(&format!("SA{g}"));
        b.port(&format!("SAB{g}"));
    }
    bitcell_array_6t(b, "", rows, cols, 0.0, 0.0)?;
    column_periphery(b, "", cols, 0.0, rows as f64 * CELL_H)?;
    row_decoder(b, "", rows, "", -1.0, 0.0)?;
    Ok(())
}

/// Two 6T banks around a FULLADD compute layer: each bank's columns are
/// sensed, the two sense outputs per column feed an adder, and the
/// carries ripple across columns — the SANDWICH-RAM archetype as a
/// parameterized production.
fn build_sandwich(b: &mut DesignBuilder, rows: u32, cols: u32) -> Result<(), BuildDesignError> {
    let (rows, cols) = (rows as usize, cols as usize);
    let bank_h = rows as f64 * CELL_H;
    for r in 0..rows {
        b.port(&format!("b_WL{r}"));
        b.port(&format!("t_WL{r}"));
    }
    b.port("SAE");
    b.port("CI");
    b.port("CO");
    for c in 0..cols {
        b.port(&format!("SUM{c}"));
    }
    // Bottom bank at y=0, compute layer above it, top bank above that.
    bitcell_array_6t(b, "b_", rows, cols, 0.0, 0.0)?;
    bitcell_array_6t(b, "t_", rows, cols, 0.0, bank_h + 4.0)?;
    let carry = |c: usize| -> String {
        if c == 0 {
            "CI".to_string()
        } else if c == cols {
            "CO".to_string()
        } else {
            format!("cy{c}")
        }
    };
    for c in 0..cols {
        let x = c as f64 * CELL_W;
        for (p, y) in [("b_", bank_h + 0.5), ("t_", bank_h + 3.5)] {
            b.instance(
                &format!("X{p}sa{c}"),
                "SENSEAMP",
                &[
                    &format!("{p}BL{c}"),
                    &format!("{p}BLB{c}"),
                    "SAE",
                    &format!("{p}SA{c}"),
                    &format!("{p}SAB{c}"),
                    "VDD",
                    "VSS",
                ],
                x,
                y,
            )?;
        }
        b.instance(
            &format!("Xadd{c}"),
            "FULLADD",
            &[
                &format!("t_SA{c}"),
                &format!("b_SA{c}"),
                &carry(c),
                &format!("SUM{c}"),
                &carry(c + 1),
                "VDD",
                "VSS",
            ],
            x,
            bank_h + 2.0,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_and_passes_filters_at_small_size() {
        for f in Family::ALL {
            let cfg = EnumerateConfig {
                family: Some(f),
                max_size: 2_500,
                count: Some(8),
                ..Default::default()
            };
            let mut e = enumerate_designs(&cfg);
            let built: Vec<_> = e.by_ref().collect();
            assert!(!built.is_empty(), "{f}: nothing enumerated");
            assert_eq!(e.skipped(), 0, "{f}: designs failed validity filters");
            for g in &built {
                assert_eq!(g.design.name, g.term.name());
                assert!(g.design.netlist.num_devices() > 0);
            }
        }
    }

    #[test]
    fn size_estimate_is_within_2x_of_real_node_count() {
        // Node count proxy: devices*(1+terminals) + nets, matching the
        // heterogeneous graph (device + pin-per-terminal + net nodes).
        for f in Family::ALL {
            let cfg = EnumerateConfig {
                family: Some(f),
                max_size: 3_000,
                min_size: 100,
                count: Some(4),
                ..Default::default()
            };
            for g in enumerate_designs(&cfg) {
                let nl = &g.design.netlist;
                let pins: usize = nl.devices().map(|(_, d)| d.terminals.len()).sum();
                let real = (nl.num_devices() + pins + nl.num_nets()) as u64;
                let est = g.term.size_estimate();
                assert!(
                    est >= real / 2 && est <= real * 2,
                    "{}: estimate {est} vs real {real}",
                    g.term.name()
                );
            }
        }
    }

    #[test]
    fn one_seed_enumerates_a_thousand_distinct_valid_terms() {
        let terms = enumerate_terms(None, 0, 4_000);
        let names: std::collections::BTreeSet<String> = terms.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), terms.len(), "duplicate names in enumeration");
        assert!(
            terms.len() >= 1_000,
            "only {} terms at max_size=4000",
            terms.len()
        );
        // Spot-build a deterministic sample across the whole window; every
        // one must pass the electrical filters.
        for term in terms.iter().step_by(83) {
            let d = build_term(term, 7).unwrap_or_else(|e| panic!("{}: {e}", term.name()));
            if let Err(v) = check_design(&d) {
                panic!("{}: {} violations, first: {}", term.name(), v.len(), v[0]);
            }
        }
    }

    #[test]
    fn enumeration_order_and_content_are_deterministic() {
        let cfg = EnumerateConfig {
            family: Some(Family::Chain),
            max_size: 1_500,
            count: Some(12),
            ..Default::default()
        };
        let a: Vec<_> = enumerate_designs(&cfg).collect();
        let b: Vec<_> = enumerate_designs(&cfg).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.term, y.term);
            assert_eq!(x.design.spice, y.design.spice);
            assert_eq!(x.extract().to_text(), y.extract().to_text());
        }
    }

    #[test]
    fn count_truncates_and_min_size_offsets_the_window() {
        let all = enumerate_terms(Some(Family::Array), 0, 50_000);
        let tail = enumerate_terms(Some(Family::Array), 10_000, 50_000);
        assert!(tail.len() < all.len());
        assert!(tail.iter().all(|t| t.size_estimate() >= 10_000));
        let cfg = EnumerateConfig {
            family: Some(Family::Array),
            max_size: 50_000,
            count: Some(3),
            ..Default::default()
        };
        assert_eq!(enumerate_designs(&cfg).count(), 3);
    }
}
