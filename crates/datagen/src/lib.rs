//! # ams-datagen
//!
//! Synthetic AMS design generation for the CirGPS reproduction. The
//! paper's datasets are proprietary 28 nm designs; this crate generates
//! the same six *archetypes* (Table IV) as real hierarchical SPICE —
//! SRAM arrays with full periphery, multi-voltage analog blocks,
//! compute-in-memory structures and standard-cell control logic — places
//! them on a floorplan, and synthesizes post-layout parasitic ground truth
//! through a geometric extraction model written to SPF.
//!
//! ## Example
//!
//! ```
//! use ams_datagen::{generate, extract_parasitics, DesignKind, ExtractConfig, SizePreset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(DesignKind::Ssram, SizePreset::Tiny)?;
//! let spf = extract_parasitics(&design, &ExtractConfig::default());
//! println!("{}: {} devices, {} couplings",
//!     design.name, design.netlist.num_devices(), spf.coupling_caps.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod cells;
mod designs;
pub mod emit;
pub mod enumerate;
mod extract;
pub mod filters;
pub mod grammar;
pub mod tiles;

pub use builder::{BuildDesignError, Design, DesignBuilder, Placement};
pub use cells::{cell_device_count, cell_port_role, cell_ports, library_spice, PortRole};
pub use designs::{generate, DesignKind, SizePreset};
pub use enumerate::{enumerate_designs, DesignEnumerator, EnumerateConfig, GeneratedDesign};
pub use extract::{extract_parasitics, ExtractConfig};
pub use filters::{check_design, Violation};
pub use grammar::{Family, Filter, Term, Workload};

/// Convenience: generates a design and its parasitic ground truth in one
/// call with a seed for extraction jitter.
///
/// # Errors
///
/// Propagates generator errors (see [`generate`]).
pub fn generate_with_parasitics(
    kind: DesignKind,
    preset: SizePreset,
    seed: u64,
) -> Result<(Design, ams_netlist::SpfFile), BuildDesignError> {
    let design = generate(kind, preset)?;
    let cfg = ExtractConfig {
        seed,
        ..Default::default()
    };
    let spf = extract_parasitics(&design, &cfg);
    Ok((design, spf))
}
