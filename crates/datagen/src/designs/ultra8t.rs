//! ULTRA8T archetype: a multi-voltage sub-threshold 8T SRAM with analog
//! leakage detection, modeled on the paper's training design [29]. Large
//! analog modules (reference generator, differential sensing, comparators,
//! current mirrors) coexist with SRAM banks and level shifters between the
//! VDDL core and VDDH periphery domains.

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;
use crate::tiles::{bitcell_array_8t, row_decoder, CELL_H, CELL_W};

/// `(rows, cols, banks)` per preset.
pub fn dims(preset: SizePreset) -> (usize, usize, usize) {
    match preset {
        SizePreset::Tiny => (8, 8, 1),
        SizePreset::Small => (32, 16, 2),
        SizePreset::Paper => (64, 32, 4),
    }
}

/// Generates the ULTRA8T design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (rows, cols, banks) = dims(preset);
    let mut b = DesignBuilder::new("ULTRA8T");
    for p in ["CLK", "CEN", "WEN", "VDDL", "VDDH", "LEAKOUT"] {
        b.port(p);
    }
    let abits = rows.next_power_of_two().trailing_zeros().max(1) as usize;
    for i in 0..abits {
        b.port(&format!("A{i}"));
    }
    // Write-data bus, shared across banks (the write drivers' D inputs
    // must be driven from outside the macro).
    for c in 0..cols {
        b.port(&format!("D{c}"));
    }

    let bank_w = cols as f64 * CELL_W * 1.3 + 4.0;
    for bk in 0..banks {
        let p = format!("b{bk}_");
        let x0 = bk as f64 * bank_w;
        bitcell_array_8t(&mut b, &p, rows, cols, x0, 0.0)?;
        row_decoder(&mut b, &p, rows, &format!("{p}W"), x0, 0.0)?;
        // Bind decoder address lines to the shifted address bus.
        for i in 0..abits {
            b.instance(
                &format!("X{p}abuf{i}"),
                "BUF",
                &[&format!("a_h{i}"), &format!("{p}A{i}"), "VDD", "VSS"],
                x0 - 3.0,
                i as f64 * 0.5,
            )?;
        }
        let arr_top = rows as f64 * CELL_H * 1.2;
        // Read wordline drivers (separate read port).
        for r in 0..rows {
            b.instance(
                &format!("X{p}rwld{r}"),
                "WLDRV",
                &[&format!("{p}decb{r}"), &format!("{p}RWL{r}"), "VDD", "VSS"],
                x0 - 0.2,
                r as f64 * CELL_H * 1.2,
            )?;
        }
        // Write drivers and read sensing per column: sub-threshold read
        // uses a differential amplifier on the read bitline vs a reference.
        for c in 0..cols {
            let x = x0 + c as f64 * CELL_W * 1.3;
            b.instance(
                &format!("X{p}wd{c}"),
                "WRDRV",
                &[
                    &format!("D{c}"),
                    "wen_l",
                    &format!("{p}WBL{c}"),
                    &format!("{p}WBLB{c}"),
                    "VDD",
                    "VSS",
                ],
                x,
                arr_top + 0.6,
            )?;
            if c % 4 == 0 {
                b.instance(
                    &format!("X{p}rs{c}"),
                    "DIFFAMP",
                    &[
                        &format!("{p}RBL{c}"),
                        "vref",
                        &format!("{p}RO{c}"),
                        "vbn",
                        "VDD",
                        "VSS",
                    ],
                    x,
                    arr_top + 1.4,
                )?;
            }
        }
        // Level shifters VDDL -> VDDH on bank outputs.
        for c in (0..cols).step_by(4) {
            b.instance(
                &format!("X{p}ls{c}"),
                "LVLSHIFT",
                &[
                    &format!("{p}RO{c}"),
                    &format!("{p}QH{c}"),
                    "VDDL",
                    "VDDH",
                    "VSS",
                ],
                x0 + c as f64 * CELL_W * 1.3,
                arr_top + 2.2,
            )?;
        }
        // Leakage detection replica column: comparator against the
        // reference plus a current mirror bias.
        b.instance(
            &format!("X{p}leakcmp"),
            "COMPARATOR",
            &[
                &format!("{p}RBL0"),
                "vref",
                "CLK",
                &format!("{p}leakp"),
                &format!("{p}leakn"),
                "VDD",
                "VSS",
            ],
            x0 + bank_w - 2.0,
            arr_top + 2.2,
        )?;
        // The mirror sources the reference current into the replica read
        // bitline the comparator monitors (an open mirror output would
        // leave the measurement node floating).
        b.instance(
            &format!("X{p}mir"),
            "CURMIR",
            &["ibias", &format!("{p}RBL0"), "VSS"],
            x0 + bank_w - 1.0,
            arr_top + 2.8,
        )?;
    }

    // Shared analog: bandgap-ish reference, bias amp, RC filter.
    let ax = banks as f64 * bank_w + 2.0;
    b.instance("Xvref", "VREF", &["vref", "VDD", "VSS"], ax, 0.0)?;
    b.instance(
        "Xbias",
        "DIFFAMP",
        &["vref", "vfb", "vbn", "vbn", "VDD", "VSS"],
        ax,
        2.0,
    )?;
    b.instance("Xfb", "RCDELAY", &["vbn", "vfb", "VDD", "VSS"], ax, 3.0)?;
    b.raw_device("Rbias vref ibias rpoly R=100k W=0.4u L=40u", ax, 4.0);
    b.raw_device("Cbias ibias VSS mim C=1p L=12u NF=6", ax, 4.5);
    // Leakage summary OR-tree across banks.
    let mut prev = "b0_leakp".to_string();
    for bk in 1..banks {
        let next = format!("lk_or{bk}");
        b.instance(
            &format!("Xlkor{bk}"),
            "NOR2",
            &[&prev, &format!("b{bk}_leakp"), &next, "VDD", "VSS"],
            ax,
            5.0 + bk as f64 * 0.5,
        )?;
        prev = next;
    }
    b.instance("Xlkout", "BUF", &[&prev, "LEAKOUT", "VDD", "VSS"], ax, 5.0)?;

    // Address level shifters into the VDDH domain + write-enable gating.
    for i in 0..abits {
        b.instance(
            &format!("Xals{i}"),
            "LVLSHIFT",
            &[&format!("A{i}"), &format!("a_h{i}"), "VDDL", "VDDH", "VSS"],
            -2.0,
            i as f64 * 0.6,
        )?;
    }
    b.instance(
        "Xweg",
        "NAND2",
        &["WEN", "CEN", "wengb", "VDD", "VSS"],
        -2.0,
        5.0,
    )?;
    b.instance("Xwei", "INV", &["wengb", "wen_l", "VDD", "VSS"], -1.4, 5.0)?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::DeviceKind;

    #[test]
    fn has_analog_and_memory_content() {
        let d = generate(SizePreset::Tiny).unwrap();
        let kinds: Vec<DeviceKind> = d.netlist.devices().map(|(_, dev)| dev.kind).collect();
        assert!(
            kinds.contains(&DeviceKind::Resistor),
            "analog resistors present"
        );
        assert!(
            kinds.contains(&DeviceKind::Capacitor),
            "analog capacitors present"
        );
        assert!(kinds.contains(&DeviceKind::Diode), "vref diode present");
        assert!(d.netlist.net_id("b0_RBL0").is_some());
        assert!(d.netlist.net_id("vref").is_some());
    }

    #[test]
    fn multi_voltage_ports() {
        let d = generate(SizePreset::Tiny).unwrap();
        for p in ["VDDL", "VDDH", "LEAKOUT"] {
            let id = d.netlist.net_id(p).unwrap();
            assert!(d.netlist.net(id).is_port, "{p} must be a port");
        }
    }

    #[test]
    fn banks_scale() {
        let t = generate(SizePreset::Tiny).unwrap();
        let s = generate(SizePreset::Small).unwrap();
        assert!(s.netlist.num_devices() > 3 * t.netlist.num_devices());
    }
}
