//! SANDWICH-RAM archetype: two SRAM banks around a digital compute layer
//! (ripple-carry adders, accumulator registers and pulse-width-modulation
//! delay counters), modeled on the paper's training design [30] — an
//! in-memory binary-weight-network accelerator where storage and compute
//! are physically interleaved.

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;
use crate::tiles::{bitcell_array_6t, column_periphery, row_decoder, CELL_H, CELL_W};

/// `(rows_per_bank, cols, adder_width)` per preset.
pub fn dims(preset: SizePreset) -> (usize, usize, usize) {
    match preset {
        SizePreset::Tiny => (6, 8, 4),
        SizePreset::Small => (24, 16, 8),
        SizePreset::Paper => (48, 32, 16),
    }
}

/// Generates the SANDWICH-RAM design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (rows, cols, adder_w) = dims(preset);
    let mut b = DesignBuilder::new("SANDWICH_RAM");
    for p in ["CLK", "CEN", "WEN", "PWM_OUT"] {
        b.port(p);
    }
    let abits = rows.next_power_of_two().trailing_zeros().max(1) as usize;
    for i in 0..abits {
        b.port(&format!("A{i}"));
    }
    for i in 0..adder_w {
        b.port(&format!("ACT{i}"));
    }
    // Weight-write data bus, shared by both banks.
    for c in 0..cols {
        b.port(&format!("D{c}"));
    }

    let bank_h = rows as f64 * CELL_H;
    let compute_h = 6.0;

    // Bottom bank (weights), compute layer, top bank (weights) — the
    // "sandwich" floorplan.
    bitcell_array_6t(&mut b, "bb_", rows, cols, 0.0, 0.0)?;
    row_decoder(&mut b, "bb_", rows, "bb_", 0.0, 0.0)?;
    column_periphery(&mut b, "bb_", cols, 0.0, bank_h)?;

    let top_y = bank_h + compute_h + 4.0;
    bitcell_array_6t(&mut b, "tb_", rows, cols, 0.0, top_y)?;
    row_decoder(&mut b, "tb_", rows, "tb_", 0.0, top_y)?;
    column_periphery(&mut b, "tb_", cols, 0.0, top_y + bank_h)?;

    // Per-bank periphery control + data drivers: the precharge follows
    // the clock, write/sense enables gate off the top-level controls,
    // column selects come off the registered address, and the write
    // drivers see the shared data bus. Without these the periphery's
    // gate inputs float.
    for (bi, p) in ["bb_", "tb_"].iter().enumerate() {
        let y = if bi == 0 {
            bank_h + 3.0
        } else {
            top_y + bank_h + 3.0
        };
        let csel0 = "abuf0".to_string();
        let csel1 = format!("abuf{}", 1 % abits);
        let ctls: [(&str, &str); 5] = [
            ("PCB", "CLK"),
            ("WEN", "WEN"),
            ("SAE", "CEN"),
            ("CSEL0", &csel0),
            ("CSEL1", &csel1),
        ];
        for (j, (ctl, src)) in ctls.iter().enumerate() {
            b.instance(
                &format!("X{p}ctl{j}"),
                "BUF",
                &[src, &format!("{p}{ctl}"), "VDD", "VSS"],
                -2.0,
                y + j as f64 * 0.4,
            )?;
        }
        for c in 0..cols {
            b.instance(
                &format!("X{p}din{c}"),
                "BUF",
                &[&format!("D{c}"), &format!("{p}D{c}"), "VDD", "VSS"],
                c as f64 * CELL_W,
                y + 2.2,
            )?;
        }
    }

    // Shared address registers feeding both decoders.
    for i in 0..abits {
        b.instance(
            &format!("Xaff{i}"),
            "DFF",
            &[
                &format!("A{i}"),
                "clkb_i",
                &format!("abuf{i}"),
                "VDD",
                "VSS",
            ],
            -5.0,
            bank_h + i as f64 * 0.8,
        )?;
        for (bank, pfx) in [("bb_", "bb_"), ("tb_", "tb_")] {
            let _ = bank;
            b.instance(
                &format!("Xad{pfx}{i}"),
                "BUF",
                &[&format!("abuf{i}"), &format!("{pfx}A{i}"), "VDD", "VSS"],
                -4.2,
                bank_h + i as f64 * 0.8,
            )?;
        }
    }
    b.instance(
        "Xcg",
        "NAND2",
        &["CLK", "CEN", "clkgb", "VDD", "VSS"],
        -5.0,
        bank_h - 1.0,
    )?;
    b.instance(
        "Xcgi",
        "INV",
        &["clkgb", "clkb_i", "VDD", "VSS"],
        -4.4,
        bank_h - 1.0,
    )?;

    // Compute layer between the banks: per group of columns a bit-serial
    // adder slice accumulating (weight XNOR activation) products.
    let y_cmp = bank_h + 2.0;
    let groups = cols.div_ceil(4).max(1);
    for g in 0..groups {
        let x = (4 * g) as f64 * CELL_W;
        // XNOR of bottom/top sense-amp outputs with activation bits.
        b.instance(
            &format!("Xxn{g}"),
            "XOR2",
            &[
                &format!("bb_SA{g}"),
                &format!("ACT{}", g % adder_w),
                &format!("pp{g}"),
                "VDD",
                "VSS",
            ],
            x,
            y_cmp,
        )?;
        // Ripple-carry accumulator of width adder_w.
        let mut carry = "VSS".to_string();
        for k in 0..adder_w {
            let s = format!("sum{g}_{k}");
            let co = format!("cout{g}_{k}");
            let acc = format!("acc{g}_{k}");
            b.instance(
                &format!("Xfa{g}_{k}"),
                "FULLADD",
                &[&format!("pp{g}"), &acc, &carry, &s, &co, "VDD", "VSS"],
                x + k as f64 * 0.3,
                y_cmp + 1.0,
            )?;
            b.instance(
                &format!("Xaccr{g}_{k}"),
                "DFF",
                &[&s, "clkb_i", &acc, "VDD", "VSS"],
                x + k as f64 * 0.3,
                y_cmp + 2.0,
            )?;
            carry = co;
        }
        // PWM stage: accumulator MSB modulates a delay line.
        b.instance(
            &format!("Xpwm{g}"),
            "RCDELAY",
            &[
                &format!("acc{g}_{}", adder_w - 1),
                &format!("pwm{g}"),
                "VDD",
                "VSS",
            ],
            x,
            y_cmp + 3.0,
        )?;
    }
    // PWM output combine tree.
    let mut prev = "pwm0".to_string();
    for g in 1..groups {
        let next = format!("pwm_or{g}");
        b.instance(
            &format!("Xpor{g}"),
            "NOR2",
            &[&prev, &format!("pwm{g}"), &next, "VDD", "VSS"],
            (4 * g) as f64 * CELL_W,
            y_cmp + 3.6,
        )?;
        prev = next;
    }
    b.instance(
        "Xpout",
        "BUF",
        &[&prev, "PWM_OUT", "VDD", "VSS"],
        0.0,
        y_cmp + 4.2,
    )?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_structure() {
        let d = generate(SizePreset::Tiny).unwrap();
        assert!(d.netlist.net_id("bb_BL0").is_some());
        assert!(d.netlist.net_id("tb_BL0").is_some());
        assert!(d.netlist.net_id("sum0_0").is_some());
        assert!(d.netlist.net_id("PWM_OUT").is_some());
        // Roughly balanced storage vs compute (the paper's point): both
        // banks plus a substantial adder layer.
        let (rows, cols, adder_w) = dims(SizePreset::Tiny);
        let storage = 2 * rows * cols * 6;
        let compute = cols.div_ceil(4) * adder_w * (28 + 18);
        let total = d.netlist.num_devices();
        assert!(
            total > storage + compute / 2,
            "total {total} storage {storage}"
        );
    }

    #[test]
    fn compute_layer_sits_between_banks() {
        let d = generate(SizePreset::Tiny).unwrap();
        let (_, y_bot) = d.placement.device_position("Xbb_bit_r0_c0.M1");
        let (_, y_fa) = d.placement.device_position("Xfa0_0.Xx1.M1");
        let (_, y_top) = d.placement.device_position("Xtb_bit_r0_c0.M1");
        assert!(y_bot < y_fa && y_fa < y_top, "{y_bot} {y_fa} {y_top}");
    }
}
