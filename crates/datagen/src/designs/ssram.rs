//! SSRAM archetype: an energy-efficient SRAM macro with a 6T array and a
//! complete standard-cell periphery (decoders, sense amps, write drivers,
//! IO latches, control), modeled on the paper's training design [23].

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;
use crate::tiles::{bitcell_array_6t, clock_tree, column_periphery, row_decoder, CELL_H, CELL_W};

/// Array dimensions per preset.
pub fn dims(preset: SizePreset) -> (usize, usize) {
    match preset {
        SizePreset::Tiny => (8, 8),
        SizePreset::Small => (32, 16),
        SizePreset::Paper => (64, 32),
    }
}

/// Generates the SSRAM design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (rows, cols) = dims(preset);
    let mut b = DesignBuilder::new("SSRAM");
    for p in ["CLK", "CEN", "WEN"] {
        b.port(p);
    }
    let abits = rows.next_power_of_two().trailing_zeros().max(1) as usize;
    for i in 0..abits {
        b.port(&format!("A{i}"));
    }
    let io = cols.div_ceil(4).max(1);
    for i in 0..io {
        b.port(&format!("D{i}"));
        b.port(&format!("Q{i}"));
    }

    let arr_top = rows as f64 * CELL_H;

    bitcell_array_6t(&mut b, "m_", rows, cols, 0.0, 0.0)?;
    column_periphery(&mut b, "m_", cols, 0.0, arr_top)?;
    row_decoder(&mut b, "m_", rows, "m_", 0.0, 0.0)?;

    // Address input latches feeding the decoder address lines.
    for i in 0..abits {
        b.instance(
            &format!("Xaff{i}"),
            "DFF",
            &[&format!("A{i}"), "clk_i", &format!("m_A{i}"), "VDD", "VSS"],
            -4.0,
            i as f64 * 0.8,
        )?;
    }

    // Control logic: clock gate, precharge pulse, SAE pulse, write enable.
    b.instance(
        "Xcg1",
        "NAND2",
        &["CLK", "CEN", "cgb", "VDD", "VSS"],
        -4.0,
        arr_top + 1.0,
    )?;
    b.instance(
        "Xcg2",
        "INV",
        &["cgb", "clk_i", "VDD", "VSS"],
        -3.4,
        arr_top + 1.0,
    )?;
    b.instance(
        "Xpc1",
        "RCDELAY",
        &["clk_i", "pcd", "VDD", "VSS"],
        -4.0,
        arr_top + 1.6,
    )?;
    b.instance(
        "Xpc2",
        "NAND2",
        &["clk_i", "pcd", "m_PCB", "VDD", "VSS"],
        -3.2,
        arr_top + 1.6,
    )?;
    b.instance(
        "Xsae1",
        "RCDELAY",
        &["pcd", "saed", "VDD", "VSS"],
        -4.0,
        arr_top + 2.2,
    )?;
    b.instance(
        "Xsae2",
        "BUF",
        &["saed", "m_SAE", "VDD", "VSS"],
        -3.2,
        arr_top + 2.2,
    )?;
    b.instance(
        "Xwe1",
        "NAND2",
        &["WEN", "clk_i", "wenb", "VDD", "VSS"],
        -4.0,
        arr_top + 2.8,
    )?;
    b.instance(
        "Xwe2",
        "INV",
        &["wenb", "m_WEN", "VDD", "VSS"],
        -3.2,
        arr_top + 2.8,
    )?;
    b.instance(
        "Xcs0",
        "DFF",
        &["A0", "clk_i", "m_CSEL0", "VDD", "VSS"],
        -4.0,
        arr_top + 3.6,
    )?;
    b.instance(
        "Xcs1",
        "DFF",
        &["A1", "clk_i", "m_CSEL1", "VDD", "VSS"],
        -4.0,
        arr_top + 4.4,
    )?;

    // Data IO: input latch per D bit (spread over 4 columns), output DFF
    // per sense amp.
    for g in 0..io {
        for k in 0..4usize {
            let c = 4 * g + k;
            if c >= cols {
                break;
            }
            b.instance(
                &format!("Xdin{c}"),
                "DFF",
                &[&format!("D{g}"), "clk_i", &format!("m_D{c}"), "VDD", "VSS"],
                c as f64 * CELL_W,
                arr_top + 5.2,
            )?;
        }
        b.instance(
            &format!("Xqout{g}"),
            "DFF",
            &[&format!("m_SA{g}"), "clk_i", &format!("Q{g}"), "VDD", "VSS"],
            (4 * g) as f64 * CELL_W,
            arr_top + 6.0,
        )?;
    }

    // Clock distribution to the wordline-driver rows (loads the clock like
    // a real macro's decoder strobes).
    let leaves: Vec<String> = (0..rows.div_ceil(8)).map(|i| format!("ckrow{i}")).collect();
    clock_tree(&mut b, "ct_", "clk_i", &leaves, -6.0, 0.0)?;
    for (i, leaf) in leaves.iter().enumerate() {
        b.instance(
            &format!("Xckload{i}"),
            "INV",
            &[leaf, &format!("ckload{i}"), "VDD", "VSS"],
            -5.0,
            i as f64 * 2.0,
        )?;
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ssram_structure() {
        let d = generate(SizePreset::Tiny).unwrap();
        // 64 bitcells -> 384 array devices; total must exceed that.
        assert!(d.netlist.num_devices() > 384 + 100);
        assert!(d.netlist.net_id("m_BL0").is_some());
        assert!(d.netlist.net_id("m_WL7").is_some());
        assert!(d.netlist.net_id("m_SAE").is_some());
        // Ports exist.
        assert!(d
            .netlist
            .net_id("CLK")
            .map(|n| d.netlist.net(n).is_port)
            .unwrap_or(false));
    }

    #[test]
    fn array_cells_are_placed_on_grid() {
        let d = generate(SizePreset::Tiny).unwrap();
        let (x0, y0) = d.placement.device_position("Xm_bit_r0_c0.M1");
        let (x1, _) = d.placement.device_position("Xm_bit_r0_c1.M1");
        let (_, y1) = d.placement.device_position("Xm_bit_r1_c0.M1");
        assert!((x1 - x0 - CELL_W).abs() < 0.8);
        assert!((y1 - y0 - CELL_H).abs() < 0.8);
    }
}
