//! DIGITAL_CLK_GEN archetype: the SRAM-internal clock generator test
//! design — a gated ring oscillator, divider chain, SRAM replica column
//! for bitline-delay tracking, and output clock tree. The paper calls
//! this its most challenging test case because it mixes digital cells
//! with SRAM columns.

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;
use crate::tiles::{clock_tree, CELL_H};

/// `(ring_stages, replica_rows, divider_bits, n_branches)` per preset.
pub fn dims(preset: SizePreset) -> (usize, usize, usize, usize) {
    match preset {
        SizePreset::Tiny => (5, 8, 3, 2),
        SizePreset::Small => (9, 32, 5, 6),
        SizePreset::Paper => (11, 64, 6, 16),
    }
}

/// Generates the DIGITAL_CLK_GEN design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (stages, repl_rows, div_bits, branches) = dims(preset);
    assert!(stages % 2 == 1, "ring oscillator needs an odd stage count");
    let mut b = DesignBuilder::new("DIGITAL_CLK_GEN");
    for p in ["EN", "SEL0", "SEL1", "CKOUT", "PCB_OUT", "SAE_OUT"] {
        b.port(p);
    }

    // Gated ring oscillator: NAND2(EN, feedback) followed by an even
    // inverter chain.
    b.instance(
        "Xring_g",
        "NAND2",
        &["EN", &format!("r{}", stages - 1), "r0", "VDD", "VSS"],
        0.0,
        0.0,
    )?;
    for s in 1..stages {
        b.instance(
            &format!("Xring{s}"),
            "INV",
            &[&format!("r{}", s - 1), &format!("r{s}"), "VDD", "VSS"],
            s as f64 * 0.4,
            0.0,
        )?;
    }
    b.instance(
        "Xrbuf",
        "BUF",
        &[&format!("r{}", stages - 1), "osc", "VDD", "VSS"],
        stages as f64 * 0.4,
        0.0,
    )?;

    // Divider chain: toggle DFFs (Q fed back through an inverter).
    let mut prev_ck = "osc".to_string();
    for d in 0..div_bits {
        b.instance(
            &format!("Xdivi{d}"),
            "INV",
            &[&format!("div{d}"), &format!("divb{d}"), "VDD", "VSS"],
            d as f64 * 0.8,
            1.0,
        )?;
        b.instance(
            &format!("Xdiv{d}"),
            "DFF",
            &[
                &format!("divb{d}"),
                &prev_ck,
                &format!("div{d}"),
                "VDD",
                "VSS",
            ],
            d as f64 * 0.8,
            1.6,
        )?;
        prev_ck = format!("div{d}");
    }

    // Clock select mux between divided clocks.
    b.instance(
        "Xm0",
        "MUX2",
        &["osc", "div0", "SEL0", "mx0", "VDD", "VSS"],
        0.0,
        3.0,
    )?;
    b.instance(
        "Xm1",
        "MUX2",
        &[
            "mx0",
            &format!("div{}", div_bits - 1),
            "SEL1",
            "ck_core",
            "VDD",
            "VSS",
        ],
        0.8,
        3.0,
    )?;

    // SRAM replica column for bitline delay tracking: replica bitcells on
    // a shared replica bitline, a precharge and a sense trigger.
    for r in 0..repl_rows {
        b.instance(
            &format!("Xrep{r}"),
            "SRAM6T",
            &["rbl", "rblb", &format!("rwl{}", r % 4), "VDD", "VSS"],
            6.0,
            r as f64 * CELL_H,
        )?;
    }
    for w in 0..4usize {
        b.instance(
            &format!("Xrwld{w}"),
            "WLDRV",
            &["ck_core", &format!("rwl{w}"), "VDD", "VSS"],
            5.2,
            w as f64 * 1.0,
        )?;
    }
    let repl_top = repl_rows as f64 * CELL_H;
    b.instance(
        "Xrpch",
        "PRECH",
        &["rbl", "rblb", "pcb_i", "VDD"],
        6.0,
        repl_top + 0.5,
    )?;
    b.instance(
        "Xrinv",
        "INV",
        &["rbl", "rbl_fall", "VDD", "VSS"],
        6.0,
        repl_top + 1.1,
    )?;
    b.instance(
        "Xrdel",
        "RCDELAY",
        &["rbl_fall", "sae_i", "VDD", "VSS"],
        6.0,
        repl_top + 1.7,
    )?;

    // Pulse generation: precharge bar and SAE from replica timing.
    b.instance("Xpg1", "INV", &["ck_core", "ckb", "VDD", "VSS"], 0.0, 4.0)?;
    b.instance(
        "Xpg2",
        "NAND2",
        &["ck_core", "rbl_fall", "pcb_i", "VDD", "VSS"],
        0.8,
        4.0,
    )?;
    b.instance("Xpg3", "BUF", &["pcb_i", "PCB_OUT", "VDD", "VSS"], 1.6, 4.0)?;
    b.instance(
        "Xpg4",
        "NAND2",
        &["sae_i", "ck_core", "saeb", "VDD", "VSS"],
        0.8,
        4.6,
    )?;
    b.instance("Xpg5", "INV", &["saeb", "SAE_OUT", "VDD", "VSS"], 1.6, 4.6)?;

    // Output clock tree to `branches` buffered loads plus the CKOUT port.
    let leaves: Vec<String> = (0..branches).map(|i| format!("ckb{i}")).collect();
    clock_tree(&mut b, "ot_", "ck_core", &leaves, 10.0, 0.0)?;
    for (i, leaf) in leaves.iter().enumerate() {
        // Each branch drives a small load chain (models downstream macros).
        b.instance(
            &format!("Xload{i}a"),
            "BUF",
            &[leaf, &format!("ld{i}"), "VDD", "VSS"],
            12.0,
            i as f64 * 1.0,
        )?;
        b.instance(
            &format!("Xload{i}b"),
            "INV",
            &[&format!("ld{i}"), &format!("ldb{i}"), "VDD", "VSS"],
            12.6,
            i as f64 * 1.0,
        )?;
    }
    b.instance("Xout", "BUF", &["ckb0", "CKOUT", "VDD", "VSS"], 14.0, 0.0)?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_replica_exist() {
        let d = generate(SizePreset::Tiny).unwrap();
        assert!(d.netlist.net_id("osc").is_some());
        assert!(d.netlist.net_id("rbl").is_some());
        assert!(d.netlist.net_id("ck_core").is_some());
        // Replica bitline touches all replica cells: high fanout net.
        let (g, m) = circuit_graph::netlist_to_graph(&d.netlist);
        let rbl = m.net_nodes[d.netlist.net_id("rbl").unwrap().0 as usize];
        assert!(
            g.degree(rbl) >= 8,
            "replica bitline degree {}",
            g.degree(rbl)
        );
    }

    #[test]
    fn stage_count_is_odd() {
        for p in [SizePreset::Tiny, SizePreset::Small, SizePreset::Paper] {
            assert_eq!(dims(p).0 % 2, 1);
        }
    }
}
