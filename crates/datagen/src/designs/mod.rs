//! Generators for the six AMS design archetypes used by the paper's
//! evaluation (Table IV): three training designs (SSRAM, ULTRA8T,
//! SANDWICH-RAM) and three test designs (DIGITAL_CLK_GEN, TIMING_CONTROL,
//! ARRAY_128_32).
//!
//! The proprietary originals are unavailable; these generators reproduce
//! the structural archetypes — SRAM arrays with their periphery, digital
//! standard-cell control logic and analog support blocks — at configurable
//! scale, which is what the graph-learning pipeline actually consumes
//! (topology + device geometry statistics).

mod array;
mod clkgen;
mod sandwich;

mod ssram;
mod timing;
mod ultra8t;

use crate::builder::{BuildDesignError, Design};

/// Which archetype to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Energy-efficient SRAM macro: 6T array + full digital periphery
    /// (training design, paper's SSRAM [23]).
    Ssram,
    /// Multi-voltage sub-threshold 8T SRAM with analog leakage detection
    /// (training design, paper's ULTRA8T [29]).
    Ultra8t,
    /// Compute-in-memory sandwich: two SRAM banks around an adder/PWM
    /// compute layer (training design, paper's SANDWICH-RAM [30]).
    SandwichRam,
    /// Internal clock generator: ring oscillator, dividers and an SRAM
    /// replica column (test design).
    DigitalClkGen,
    /// SRAM timing controller from standard digital cells (test design).
    TimingControl,
    /// Bare 128-row 32-column 6T SRAM array (test design).
    Array128x32,
}

impl DesignKind {
    /// All six archetypes in Table IV order.
    pub const ALL: [DesignKind; 6] = [
        DesignKind::Ssram,
        DesignKind::Ultra8t,
        DesignKind::SandwichRam,
        DesignKind::DigitalClkGen,
        DesignKind::TimingControl,
        DesignKind::Array128x32,
    ];

    /// The paper's dataset name.
    pub fn paper_name(self) -> &'static str {
        match self {
            DesignKind::Ssram => "SSRAM",
            DesignKind::Ultra8t => "ULTRA8T",
            DesignKind::SandwichRam => "SANDWICH-RAM",
            DesignKind::DigitalClkGen => "DIGITAL_CLK_GEN",
            DesignKind::TimingControl => "TIMING_CONTROL",
            DesignKind::Array128x32 => "ARRAY_128_32",
        }
    }

    /// Whether the paper uses this design for training (vs zero-shot test).
    pub fn is_training(self) -> bool {
        matches!(
            self,
            DesignKind::Ssram | DesignKind::Ultra8t | DesignKind::SandwichRam
        )
    }
}

/// Generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizePreset {
    /// Minimal sizes for unit tests (hundreds of devices).
    Tiny,
    /// Default sizes: every experiment finishes on a laptop-class CPU.
    #[default]
    Small,
    /// Paper-comparable sizes (Table IV node counts within ~2×).
    Paper,
}

/// Generates a placed design for `kind` at the given scale.
///
/// Generation is deterministic for a given `(kind, preset)`.
///
/// # Errors
///
/// Returns a [`BuildDesignError`] only on internal generator bugs (cell
/// port mismatches); a successful return is structurally valid.
pub fn generate(kind: DesignKind, preset: SizePreset) -> Result<Design, BuildDesignError> {
    match kind {
        DesignKind::Ssram => ssram::generate(preset),
        DesignKind::Ultra8t => ultra8t::generate(preset),
        DesignKind::SandwichRam => sandwich::generate(preset),
        DesignKind::DigitalClkGen => clkgen::generate(preset),
        DesignKind::TimingControl => timing::generate(preset),
        DesignKind::Array128x32 => array::generate(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_archetypes_generate_at_tiny_scale() {
        for kind in DesignKind::ALL {
            let d = generate(kind, SizePreset::Tiny).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(d.netlist.num_devices() > 20, "{kind:?} too small");
            assert!(d.netlist.num_nets() > 10, "{kind:?} has too few nets");
            assert!(!d.placement.is_empty(), "{kind:?} has no placement");
        }
    }

    #[test]
    fn small_is_larger_than_tiny() {
        for kind in [DesignKind::Ssram, DesignKind::DigitalClkGen] {
            let t = generate(kind, SizePreset::Tiny).unwrap();
            let s = generate(kind, SizePreset::Small).unwrap();
            assert!(
                s.netlist.num_devices() > t.netlist.num_devices(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DesignKind::TimingControl, SizePreset::Tiny).unwrap();
        let b = generate(DesignKind::TimingControl, SizePreset::Tiny).unwrap();
        assert_eq!(a.spice, b.spice);
    }

    #[test]
    fn training_split_matches_paper() {
        assert!(DesignKind::Ssram.is_training());
        assert!(DesignKind::Ultra8t.is_training());
        assert!(DesignKind::SandwichRam.is_training());
        assert!(!DesignKind::DigitalClkGen.is_training());
        assert!(!DesignKind::TimingControl.is_training());
        assert!(!DesignKind::Array128x32.is_training());
    }
}
