//! TIMING_CONTROL archetype: the SRAM timing-control test design — pure
//! standard-cell logic producing control pulses (precharge, wordline
//! enable, sense enable, write enable) from a clock and mode inputs.

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;

/// `(pipeline_depth, decoder_bits, pulse_chains)` per preset.
pub fn dims(preset: SizePreset) -> (usize, usize, usize) {
    match preset {
        SizePreset::Tiny => (4, 3, 2),
        SizePreset::Small => (12, 5, 6),
        SizePreset::Paper => (24, 6, 12),
    }
}

/// Generates the TIMING_CONTROL design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (depth, dec_bits, chains) = dims(preset);
    let mut b = DesignBuilder::new("TIMING_CONTROL");
    for p in ["CLK", "CEN", "WEN", "RSTB"] {
        b.port(p);
    }
    for i in 0..dec_bits {
        b.port(&format!("MODE{i}"));
    }
    for s in ["PCB", "WLEN", "SAE", "WDRV"] {
        b.port(s);
    }

    // Clock gating + internal clock.
    b.instance(
        "Xcg1",
        "NAND2",
        &["CLK", "CEN", "cgb", "VDD", "VSS"],
        0.0,
        0.0,
    )?;
    b.instance("Xcg2", "INV", &["cgb", "cki", "VDD", "VSS"], 0.6, 0.0)?;

    // Mode register + one-hot decoder (NAND3 tree over mode bits).
    for i in 0..dec_bits {
        b.instance(
            &format!("Xmr{i}"),
            "DFF",
            &[&format!("MODE{i}"), "cki", &format!("md{i}"), "VDD", "VSS"],
            0.0,
            1.0 + i as f64 * 0.8,
        )?;
        b.instance(
            &format!("Xmi{i}"),
            "INV",
            &[&format!("md{i}"), &format!("mdb{i}"), "VDD", "VSS"],
            0.8,
            1.0 + i as f64 * 0.8,
        )?;
    }
    let n_dec = 1usize << dec_bits.min(4);
    for d in 0..n_dec {
        let pick = |bit: usize| {
            if (d >> bit) & 1 == 1 {
                format!("md{bit}")
            } else {
                format!("mdb{bit}")
            }
        };
        let (n0, n1, n2) = (pick(0), pick(1 % dec_bits), pick(2 % dec_bits));
        b.instance(
            &format!("Xdec{d}"),
            "NAND3",
            &[&n0, &n1, &n2, &format!("sel{d}"), "VDD", "VSS"],
            2.0,
            d as f64 * 0.5,
        )?;
    }

    // Main pipeline: DFF shift register clocked by cki; taps feed pulse
    // generators.
    let mut prev = "cgb".to_string();
    for s in 0..depth {
        let q = format!("pipe{s}");
        b.instance(
            &format!("Xp{s}"),
            "DFF",
            &[&prev, "cki", &q, "VDD", "VSS"],
            4.0 + s as f64 * 0.9,
            0.0,
        )?;
        prev = q;
    }

    // Pulse chains: delay line (RCDELAY + inverters) AND-ed with its
    // undelayed input produces a pulse; selected by the decoder.
    let outs = ["PCB", "WLEN", "SAE", "WDRV"];
    for c in 0..chains {
        let tap = format!("pipe{}", (c * depth / chains).min(depth - 1));
        let d1 = format!("ch{c}_d1");
        let d2 = format!("ch{c}_d2");
        let pulse = format!("ch{c}_p");
        let y = 3.0 + c as f64 * 1.2;
        b.instance(
            &format!("Xcd{c}a"),
            "RCDELAY",
            &[&tap, &d1, "VDD", "VSS"],
            4.0,
            y,
        )?;
        b.instance(
            &format!("Xcd{c}b"),
            "INV",
            &[&d1, &d2, "VDD", "VSS"],
            5.0,
            y,
        )?;
        b.instance(
            &format!("Xcp{c}"),
            "NAND2",
            &[&tap, &d2, &pulse, "VDD", "VSS"],
            5.6,
            y,
        )?;
        // Gate with a decoder select and reset.
        let gated = format!("ch{c}_g");
        b.instance(
            &format!("Xcg{c}"),
            "NAND3",
            &[
                &pulse,
                &format!("sel{}", c % n_dec),
                "RSTB",
                &gated,
                "VDD",
                "VSS",
            ],
            6.4,
            y,
        )?;
        let out: &str = outs[c % outs.len()];
        if c < outs.len() {
            b.instance(
                &format!("Xco{c}"),
                "INVX4",
                &[&gated, out, "VDD", "VSS"],
                7.2,
                y,
            )?;
        } else {
            b.instance(
                &format!("Xco{c}"),
                "INVX4",
                &[&gated, &format!("aux{c}"), "VDD", "VSS"],
                7.2,
                y,
            )?;
        }
    }

    // Write path gating.
    b.instance(
        "Xwg1",
        "NAND2",
        &["WEN", "cki", "wgb", "VDD", "VSS"],
        0.0,
        8.0,
    )?;
    b.instance("Xwg2", "BUF", &["wgb", "wen_i", "VDD", "VSS"], 0.8, 8.0)?;
    b.instance(
        "Xwg3",
        "NOR2",
        &["wen_i", "ch0_p", "wcomb", "VDD", "VSS"],
        1.6,
        8.0,
    )?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::DeviceKind;

    #[test]
    fn pure_digital_content() {
        let d = generate(SizePreset::Tiny).unwrap();
        // Mostly MOS; the only passives are in the RC delay cells.
        let mos = d.netlist.devices().filter(|(_, x)| x.kind.is_mos()).count();
        let total = d.netlist.num_devices();
        assert!(mos as f64 / total as f64 > 0.9, "{mos}/{total}");
        assert!(d
            .netlist
            .devices()
            .any(|(_, x)| x.kind == DeviceKind::Capacitor));
    }

    #[test]
    fn control_outputs_exist() {
        let d = generate(SizePreset::Tiny).unwrap();
        for p in ["PCB", "WLEN", "SAE", "WDRV"] {
            assert!(d.netlist.net_id(p).is_some(), "missing {p}");
        }
    }

    #[test]
    fn pipeline_scales_with_preset() {
        let t = generate(SizePreset::Tiny).unwrap();
        let s = generate(SizePreset::Small).unwrap();
        assert!(s.netlist.num_devices() > t.netlist.num_devices() * 2);
    }
}
