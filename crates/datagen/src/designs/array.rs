//! ARRAY_128_32 archetype: a bare 6T SRAM array test design — 128 rows by
//! 32 columns at paper scale, with wordline straps and bitline loads but
//! no periphery logic. The densest, most regular coupling environment of
//! the three test designs.

use crate::builder::{BuildDesignError, Design, DesignBuilder};
use crate::designs::SizePreset;
use crate::tiles::{bitcell_array_6t, CELL_H, CELL_W};

/// `(rows, cols)` per preset.
pub fn dims(preset: SizePreset) -> (usize, usize) {
    match preset {
        SizePreset::Tiny => (16, 8),
        SizePreset::Small => (64, 16),
        SizePreset::Paper => (128, 32),
    }
}

/// Generates the ARRAY_128_32 design.
pub fn generate(preset: SizePreset) -> Result<Design, BuildDesignError> {
    let (rows, cols) = dims(preset);
    let mut b = DesignBuilder::new("ARRAY_128_32");
    for r in 0..rows {
        b.port(&format!("WL{r}"));
    }
    for c in 0..cols {
        b.port(&format!("BL{c}"));
        b.port(&format!("BLB{c}"));
    }

    bitcell_array_6t(&mut b, "", rows, cols, 0.0, 0.0)?;

    // Wordline strap buffers every 16 rows (as a real array would have
    // for RC management) and bitline keeper loads at the column edge.
    for r in (0..rows).step_by(16) {
        b.instance(
            &format!("Xwls{r}"),
            "INVX4",
            &[&format!("WL{r}"), &format!("wlb{r}"), "VDD", "VSS"],
            -1.0,
            r as f64 * CELL_H,
        )?;
    }
    let top = rows as f64 * CELL_H;
    for c in 0..cols {
        b.raw_device(
            &format!("Ckeep{c} BL{c} VSS mom C=2f L=1u NF=2"),
            c as f64 * CELL_W,
            top + 0.4,
        );
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_counts() {
        let d = generate(SizePreset::Tiny).unwrap();
        let (rows, cols) = dims(SizePreset::Tiny);
        // 6 devices per cell + straps + keepers.
        let expected_min = rows * cols * 6;
        assert!(d.netlist.num_devices() >= expected_min);
        assert!(d.netlist.net_id(&format!("BL{}", cols - 1)).is_some());
        assert!(d.netlist.net_id(&format!("WL{}", rows - 1)).is_some());
    }

    #[test]
    fn bitlines_span_whole_column() {
        let d = generate(SizePreset::Tiny).unwrap();
        let (g, m) = circuit_graph::netlist_to_graph(&d.netlist);
        let (rows, _) = dims(SizePreset::Tiny);
        let bl = m.net_nodes[d.netlist.net_id("BL0").unwrap().0 as usize];
        // One access pin per row plus the keeper cap.
        assert!(g.degree(bl) >= rows, "BL0 degree {}", g.degree(bl));
    }

    #[test]
    fn paper_preset_matches_name() {
        assert_eq!(dims(SizePreset::Paper), (128, 32));
    }
}
