//! Composition grammar over the cell library, with ruler-style workload
//! enumeration.
//!
//! The design space is described the way `ruler` describes rewrite-rule
//! workloads: a [`Workload`] starts from s-expression *patterns* with
//! named holes (`(chain C N)`), [`Workload::plug`] substitutes each hole
//! with every atom of another workload (a cross product), and
//! [`Workload::filter`] prunes the expansion. Forcing a workload yields
//! ground s-expressions that compile to typed [`Term`]s — one term per
//! structurally distinct design.
//!
//! Everything here is *symbolic*: no SPICE is built until
//! [`crate::enumerate`] lowers a [`Term`] onto the [`crate::DesignBuilder`].
//! That keeps enumeration cheap (millions of candidate terms per second)
//! so size filtering can run over the whole space before any netlist
//! exists.
//!
//! Determinism contract: [`family_workload`] is a pure function of the
//! family, `plug` expands in left-to-right declaration order, and
//! [`enumerate_terms`](crate::enumerate::enumerate_terms) sorts by
//! `(size, name)` — so the term sequence for a `(family, max_size)` pair
//! is identical across runs, platforms and thread counts.

use std::fmt;

use crate::cells;

/// A design family: one top-level production of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Linear cell chains (`IN -> cell -> cell -> ... -> OUT`).
    Chain,
    /// Buffer fan-out trees (clock-tree shaped, inverter loads at leaves).
    Tree,
    /// Parallel multi-lane pipelines placed at coupling pitch.
    Bus,
    /// Mux selection trees and address-decoder fabrics.
    Fabric,
    /// Parameterized SRAM array tilings, bare or with periphery.
    Array,
    /// Cross-coupled sandwich stacks: two bitcell banks around a
    /// full-adder compute layer.
    Sandwich,
}

impl Family {
    /// Every family, in grammar declaration order.
    pub const ALL: [Family; 6] = [
        Family::Chain,
        Family::Tree,
        Family::Bus,
        Family::Fabric,
        Family::Array,
        Family::Sandwich,
    ];

    /// Lower-case CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Chain => "chain",
            Family::Tree => "tree",
            Family::Bus => "bus",
            Family::Fabric => "fabric",
            Family::Array => "array",
            Family::Sandwich => "sandwich",
        }
    }

    /// Parses a CLI family name.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A minimal s-expression: the currency of workload enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    /// A bare token: a hole name, a cell name, or an integer literal.
    Atom(String),
    /// A parenthesized production application.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Substitutes every `Atom(var)` with `val`, recursively.
    fn plug(&self, var: &str, val: &Sexp) -> Sexp {
        match self {
            Sexp::Atom(a) if a == var => val.clone(),
            Sexp::Atom(_) => self.clone(),
            Sexp::List(items) => Sexp::List(items.iter().map(|s| s.plug(var, val)).collect()),
        }
    }

    /// Parses one s-expression from a pattern string. Panics on malformed
    /// input: patterns are compiled into the binary, not user data.
    fn parse(s: &str) -> Sexp {
        fn walk(tokens: &mut std::iter::Peekable<std::vec::IntoIter<String>>) -> Sexp {
            let tok = tokens.next().expect("unbalanced pattern");
            if tok == "(" {
                let mut items = Vec::new();
                while tokens.peek().map(String::as_str) != Some(")") {
                    items.push(walk(tokens));
                }
                tokens.next();
                Sexp::List(items)
            } else {
                Sexp::Atom(tok)
            }
        }
        let toks: Vec<String> = s
            .replace('(', " ( ")
            .replace(')', " ) ")
            .split_whitespace()
            .map(String::from)
            .collect();
        walk(&mut toks.into_iter().peekable())
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(a) => f.write_str(a),
            Sexp::List(items) => {
                f.write_str("(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A predicate over candidate terms, applied during workload forcing.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Keep only terms whose [`Term::size_estimate`] is `<= max`.
    MaxSize(u64),
    /// Keep only terms whose [`Term::size_estimate`] is `>= min`.
    MinSize(u64),
}

impl Filter {
    fn keeps(&self, term: &Term) -> bool {
        match self {
            Filter::MaxSize(max) => term.size_estimate() <= *max,
            Filter::MinSize(min) => term.size_estimate() >= *min,
        }
    }
}

/// A lazily described set of terms: patterns plus the plug/filter program
/// that expands them. Mirrors ruler's `Workload` surface.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A literal set of atoms (hole fillers or ground patterns).
    Atoms(Vec<String>),
    /// Substitute each occurrence of a hole with every value of another
    /// workload (cross product, declaration order).
    Plug(Box<Workload>, String, Box<Workload>),
    /// Prune the expansion with a [`Filter`]. Filters apply to *compiled*
    /// terms, so they see real size estimates; expansions that do not
    /// compile to a [`Term`] are dropped here too.
    Filter(Box<Workload>, Filter),
    /// The union of several workloads, in order.
    Append(Vec<Workload>),
}

impl Workload {
    /// A workload from pattern strings, e.g. `(chain C N)`.
    pub fn new<const K: usize>(patterns: [&str; K]) -> Workload {
        Workload::Atoms(patterns.iter().map(|s| s.to_string()).collect())
    }

    /// Integer atoms `lo..=hi`.
    pub fn ints(lo: u32, hi: u32) -> Workload {
        Workload::Atoms((lo..=hi).map(|v| v.to_string()).collect())
    }

    /// Integer atoms from an explicit ladder.
    pub fn ladder(values: &[u32]) -> Workload {
        Workload::Atoms(values.iter().map(|v| v.to_string()).collect())
    }

    /// Plugs `var` with every value of `vals`.
    pub fn plug(self, var: &str, vals: Workload) -> Workload {
        Workload::Plug(Box::new(self), var.to_string(), Box::new(vals))
    }

    /// Prunes the expansion with `filter`.
    pub fn filter(self, filter: Filter) -> Workload {
        Workload::Filter(Box::new(self), filter)
    }

    /// Expands to ground s-expressions. Plugging is a cross product in
    /// declaration order; no deduplication happens here.
    pub fn force(&self) -> Vec<Sexp> {
        match self {
            Workload::Atoms(patterns) => patterns.iter().map(|p| Sexp::parse(p)).collect(),
            Workload::Plug(inner, var, vals) => {
                let vals = vals.force();
                inner
                    .force()
                    .iter()
                    .flat_map(|sexp| vals.iter().map(move |v| sexp.plug(var, v)))
                    .collect()
            }
            Workload::Filter(inner, filter) => inner
                .force()
                .into_iter()
                .filter(|s| Term::compile(s).is_some_and(|t| filter.keeps(&t)))
                .collect(),
            Workload::Append(parts) => parts.iter().flat_map(|w| w.force()).collect(),
        }
    }

    /// Forces the workload and compiles every ground expansion that forms
    /// a well-typed term (ill-typed expansions are silently dropped, as in
    /// ruler's workload semantics).
    pub fn terms(&self) -> Vec<Term> {
        self.force().iter().filter_map(Term::compile).collect()
    }
}

/// Cells that can form a chain/bus stage, with how their non-datapath
/// inputs are tied (see `enumerate::build_chain_stage`).
pub const STAGE_CELLS: [&str; 8] = [
    "INV", "BUF", "INVX4", "NAND2", "NOR2", "XOR2", "DFF", "RCDELAY",
];

/// A ground term of the grammar: one structurally distinct design.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// `(chain CELL LEN)`: LEN stages of CELL between ports IN and OUT.
    Chain {
        /// Stage cell (one of [`STAGE_CELLS`]).
        cell: &'static str,
        /// Number of stages, `>= 1`.
        len: u32,
    },
    /// `(tree DEPTH FANOUT)`: a buffer tree of the given shape; every
    /// leaf net is an output port loaded by an inverter.
    Tree {
        /// Buffer levels below the root, `>= 1`.
        depth: u32,
        /// Children per buffer, `2..=4`.
        fanout: u32,
    },
    /// `(bus CELL LANES STAGES)`: LANES parallel chains at coupling pitch.
    Bus {
        /// Stage cell (one of [`STAGE_CELLS`]).
        cell: &'static str,
        /// Parallel lanes, `>= 2`.
        lanes: u32,
        /// Stages per lane, `>= 1`.
        stages: u32,
    },
    /// `(mux BITS LANES)`: LANES binary MUX2 selection trees over
    /// `2^BITS` data inputs with shared buffered selects.
    Mux {
        /// Select bits, `1..=6`.
        bits: u32,
        /// Independent data lanes sharing the select bus, `>= 1`.
        lanes: u32,
    },
    /// `(decoder BITS)`: a `2^BITS`-row address decoder driving a
    /// two-column bitcell slice (wordline loads).
    Decoder {
        /// Address bits, `1..=8`.
        bits: u32,
    },
    /// `(array KIND ROWS COLS PERIPH)`: an SRAM bitcell tiling, bare
    /// (port-terminated bitlines/wordlines) or with column periphery and
    /// a row decoder.
    Array {
        /// `true` for the 8T cell, `false` for 6T.
        eight_t: bool,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
        /// Attach column periphery + row decoder.
        periphery: bool,
    },
    /// `(sandwich ROWS COLS)`: two 6T banks around a FULLADD compute
    /// layer (one ripple chain per column pair).
    Sandwich {
        /// Rows per bank.
        rows: u32,
        /// Columns (also adders in the compute layer).
        cols: u32,
    },
}

impl Term {
    /// Compiles a ground s-expression to a term. Returns `None` for
    /// unknown heads, leftover holes, or out-of-range parameters — the
    /// workload-level notion of an ill-typed expansion.
    pub fn compile(sexp: &Sexp) -> Option<Term> {
        let Sexp::List(items) = sexp else { return None };
        let head = match items.first()? {
            Sexp::Atom(a) => a.as_str(),
            Sexp::List(_) => return None,
        };
        let int = |i: usize| -> Option<u32> {
            match items.get(i)? {
                Sexp::Atom(a) => a.parse().ok(),
                Sexp::List(_) => None,
            }
        };
        let cell = |i: usize| -> Option<&'static str> {
            match items.get(i)? {
                Sexp::Atom(a) => STAGE_CELLS.iter().find(|c| *c == a).copied(),
                Sexp::List(_) => None,
            }
        };
        let arity = |n: usize| items.len() == n + 1;
        Some(match head {
            "chain" if arity(2) => Term::Chain {
                cell: cell(1)?,
                len: int(2).filter(|&n| n >= 1)?,
            },
            "tree" if arity(2) => Term::Tree {
                depth: int(1).filter(|&d| (1..=8).contains(&d))?,
                fanout: int(2).filter(|&f| (2..=4).contains(&f))?,
            },
            "bus" if arity(3) => Term::Bus {
                cell: cell(1)?,
                lanes: int(2).filter(|&l| l >= 2)?,
                stages: int(3).filter(|&s| s >= 1)?,
            },
            "mux" if arity(2) => Term::Mux {
                bits: int(1).filter(|&b| (1..=6).contains(&b))?,
                lanes: int(2).filter(|&l| l >= 1)?,
            },
            "decoder" if arity(1) => Term::Decoder {
                bits: int(1).filter(|&b| (1..=8).contains(&b))?,
            },
            "array" if arity(4) => {
                let kind = match items.get(1)? {
                    Sexp::Atom(a) if a == "6t" => false,
                    Sexp::Atom(a) if a == "8t" => true,
                    _ => return None,
                };
                let periph = match items.get(4)? {
                    Sexp::Atom(a) if a == "bare" => false,
                    // Periphery tiles (PRECH/WRDRV/COLMUX) speak the 6T
                    // bitline protocol; an 8T periphery term is ill-typed.
                    Sexp::Atom(a) if a == "periph" && !kind => true,
                    _ => return None,
                };
                Term::Array {
                    eight_t: kind,
                    rows: int(2).filter(|&r| r >= 2)?,
                    cols: int(3).filter(|&c| c >= 2)?,
                    periphery: periph,
                }
            }
            "sandwich" if arity(2) => Term::Sandwich {
                rows: int(1).filter(|&r| r >= 2)?,
                cols: int(2).filter(|&c| (2..=256).contains(&c) && c % 2 == 0)?,
            },
            _ => return None,
        })
    }

    /// The family this term belongs to.
    pub fn family(&self) -> Family {
        match self {
            Term::Chain { .. } => Family::Chain,
            Term::Tree { .. } => Family::Tree,
            Term::Bus { .. } => Family::Bus,
            Term::Mux { .. } | Term::Decoder { .. } => Family::Fabric,
            Term::Array { .. } => Family::Array,
            Term::Sandwich { .. } => Family::Sandwich,
        }
    }

    /// Deterministic design name; doubles as the top-level `.SUBCKT` name
    /// and the output file stem.
    pub fn name(&self) -> String {
        match self {
            Term::Chain { cell, len } => format!("G_CHAIN_{cell}_N{len}"),
            Term::Tree { depth, fanout } => format!("G_TREE_D{depth}_F{fanout}"),
            Term::Bus {
                cell,
                lanes,
                stages,
            } => format!("G_BUS_{cell}_L{lanes}_S{stages}"),
            Term::Mux { bits, lanes } => format!("G_MUX_B{bits}_L{lanes}"),
            Term::Decoder { bits } => format!("G_DEC_B{bits}"),
            Term::Array {
                eight_t,
                rows,
                cols,
                periphery,
            } => format!(
                "G_ARR{}_R{rows}_C{cols}{}",
                if *eight_t { "8T" } else { "6T" },
                if *periphery { "_P" } else { "" }
            ),
            Term::Sandwich { rows, cols } => format!("G_SAND_R{rows}_C{cols}"),
        }
    }

    /// Number of buffers in a tree term (geometric series).
    fn tree_buffers(depth: u32, fanout: u32) -> u64 {
        // root buffer + fanout + fanout^2 + ... + fanout^depth
        let mut total = 1u64;
        let mut level = 1u64;
        for _ in 0..depth {
            level = level.saturating_mul(fanout as u64);
            total = total.saturating_add(level);
        }
        total
    }

    /// Approximate heterogeneous-graph node count (nets + devices + pins)
    /// of the flattened design. The size metric the `--max-size` filter
    /// and the scaling benchmarks run on.
    ///
    /// Intentionally an *estimate*: it is evaluated for every candidate
    /// term before any SPICE exists, so it must be pure arithmetic. The
    /// datagen unit tests pin it within 2x of the real node count.
    pub fn size_estimate(&self) -> u64 {
        // One flattened device contributes itself + ~4 pins; each cell
        // also contributes ~1.5 internal/boundary nets on average.
        let cell_nodes = |cell: &str, count: u64| -> u64 {
            let devs = cells::cell_device_count(cell).unwrap_or(4) as u64;
            count.saturating_mul(devs * 5 + 2)
        };
        match *self {
            Term::Chain { cell, len } => cell_nodes(cell, len as u64) + cell_nodes("INV", 1),
            Term::Tree { depth, fanout } => {
                let bufs = Self::tree_buffers(depth, fanout);
                let leaves = (fanout as u64).saturating_pow(depth);
                cell_nodes("BUF", bufs) + cell_nodes("INV", leaves)
            }
            Term::Bus {
                cell,
                lanes,
                stages,
            } => cell_nodes(cell, lanes as u64 * stages as u64) + cell_nodes("INV", 1),
            Term::Mux { bits, lanes } => {
                let muxes_per_lane = (1u64 << bits) - 1;
                cell_nodes("MUX2", muxes_per_lane * lanes as u64) + cell_nodes("BUF", bits as u64)
            }
            Term::Decoder { bits } => {
                let rows = 1u64 << bits;
                cell_nodes("NAND3", rows)
                    + cell_nodes("WLDRV", rows)
                    + cell_nodes("INV", bits as u64)
                    + cell_nodes("SRAM6T", rows * 2)
            }
            Term::Array {
                eight_t,
                rows,
                cols,
                periphery,
            } => {
                let cell = if eight_t { "SRAM8T" } else { "SRAM6T" };
                let core = cell_nodes(cell, rows as u64 * cols as u64);
                if periphery {
                    let per_col = cell_nodes("PRECH", 1) + cell_nodes("WRDRV", 1);
                    let per_grp = cell_nodes("COLMUX", 3) + cell_nodes("SENSEAMP", 1);
                    let per_row = cell_nodes("NAND3", 1) + cell_nodes("WLDRV", 1);
                    core + per_col * cols as u64
                        + per_grp * (cols as u64).div_ceil(4)
                        + per_row * rows as u64
                } else {
                    core
                }
            }
            Term::Sandwich { rows, cols } => {
                cell_nodes("SRAM6T", 2 * rows as u64 * cols as u64)
                    + cell_nodes("FULLADD", cols as u64)
                    + cell_nodes("SENSEAMP", 2 * cols as u64)
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The full per-family workload: patterns plus parameter ladders.
///
/// Ladders are deliberately generous — forcing one of these enumerates
/// the *whole* parameter grid symbolically (tens of thousands of terms in
/// microseconds); callers narrow it with [`Filter::MaxSize`] /
/// [`Filter::MinSize`] before any design is built.
pub fn family_workload(family: Family) -> Workload {
    // Geometric-ish ladders: dense at the small end (test diversity),
    // sparse at the big end (scaling tiers up to ~1e6 graph nodes).
    const DIM: [u32; 16] = [
        2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 176, 256, 352,
    ];
    let cells = || Workload::Atoms(STAGE_CELLS.iter().map(|s| s.to_string()).collect());
    match family {
        Family::Chain => Workload::new(["(chain C N)"])
            .plug("C", cells())
            .plug("N", Workload::ints(1, 96)),
        Family::Tree => Workload::new(["(tree D F)"])
            .plug("D", Workload::ints(1, 8))
            .plug("F", Workload::ints(2, 4)),
        Family::Bus => Workload::new(["(bus C L S)"])
            .plug("C", cells())
            .plug("L", Workload::ladder(&DIM[..10]))
            .plug("S", Workload::ints(1, 12)),
        Family::Fabric => Workload::Append(vec![
            Workload::new(["(mux B L)"])
                .plug("B", Workload::ints(1, 6))
                .plug("L", Workload::ladder(&[1, 2, 4, 8, 16, 32])),
            Workload::new(["(decoder B)"]).plug("B", Workload::ints(1, 8)),
        ]),
        Family::Array => Workload::new(["(array K R C P)"])
            .plug("K", Workload::new(["6t", "8t"]))
            .plug("R", Workload::ladder(&DIM))
            .plug("C", Workload::ladder(&DIM[..13]))
            .plug("P", Workload::new(["bare", "periph"])),
        Family::Sandwich => Workload::new(["(sandwich R C)"])
            .plug("R", Workload::ladder(&DIM[..12]))
            .plug("C", Workload::ladder(&[2, 4, 6, 8, 12, 16, 24, 32, 48, 64])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sexp_round_trips_through_display() {
        let s = Sexp::parse("(chain INV 17)");
        assert_eq!(s.to_string(), "(chain INV 17)");
    }

    #[test]
    fn plug_is_a_cross_product_in_order() {
        let w = Workload::new(["(chain C N)"])
            .plug("C", Workload::new(["INV", "BUF"]))
            .plug("N", Workload::ints(1, 3));
        let terms = w.terms();
        assert_eq!(terms.len(), 6);
        assert_eq!(
            terms[0],
            Term::Chain {
                cell: "INV",
                len: 1
            }
        );
        assert_eq!(
            terms[3],
            Term::Chain {
                cell: "BUF",
                len: 1
            }
        );
    }

    #[test]
    fn ill_typed_expansions_are_dropped() {
        // SRAM6T is not a stage cell; 0-length chains are out of range.
        let w = Workload::new(["(chain SRAM6T 3)", "(chain INV 0)", "(chain INV 2)"]);
        assert_eq!(w.terms().len(), 1);
    }

    #[test]
    fn max_size_filter_prunes_before_build() {
        let w = family_workload(Family::Array).filter(Filter::MaxSize(10_000));
        let terms = w.terms();
        assert!(!terms.is_empty());
        assert!(terms.iter().all(|t| t.size_estimate() <= 10_000));
        // The unfiltered grid is strictly bigger.
        assert!(family_workload(Family::Array).terms().len() > terms.len());
    }

    #[test]
    fn term_names_are_distinct_across_every_family() {
        let mut names = std::collections::BTreeSet::new();
        for f in Family::ALL {
            for t in family_workload(f).terms() {
                assert!(names.insert(t.name()), "duplicate name {}", t.name());
            }
        }
        assert!(names.len() > 2_000, "grammar too small: {}", names.len());
    }

    #[test]
    fn workload_forcing_is_deterministic() {
        let a = family_workload(Family::Bus).force();
        let b = family_workload(Family::Bus).force();
        assert_eq!(a, b);
    }
}
