//! Layout-proxy parasitic extraction: synthesizes an SPF ground-truth file
//! from a placed design using a geometric coupling model.
//!
//! This stands in for the commercial post-layout extraction flow the paper
//! used (its SPF files come from real 28 nm layouts). The model keeps the
//! properties the learning problem depends on:
//!
//! * **locality** — couplings only arise between geometrically close nodes,
//!   and geometric proximity correlates with graph proximity because
//!   placement follows the netlist structure;
//! * **magnitude spread** — values span the paper's 1e-21..1e-15 F range,
//!   driven by wire overlap length, spacing and device geometry;
//! * **class imbalance** — pin-net couplings dominate, net-net couplings
//!   are rarest (Section III-B of the paper);
//! * **physical consistency** — ground capacitance grows with wire length
//!   and device sizes, so node-regression targets are learnable from `XC`.

use std::collections::HashMap;

use ams_netlist::{CouplingCap, DeviceKind, GroundCap, SpfFile, SpfNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::Design;

/// Technology-flavored extraction constants (28 nm-class defaults).
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// RNG seed for process variation jitter.
    pub seed: u64,
    /// Candidate search radius for couplings, µm.
    pub coupling_radius: f64,
    /// Wire capacitance to ground per µm of estimated route length, F/µm.
    pub c_wire_per_um: f64,
    /// Gate capacitance per µm² of gate area, F/µm².
    pub c_gate_per_um2: f64,
    /// Diffusion capacitance per µm of device width, F/µm.
    pub c_diff_per_um: f64,
    /// Net-net lateral coupling per µm of parallel run at minimum spacing.
    pub c_nn_per_um: f64,
    /// Pin-net fringing coupling scale, F (per unit width / distance decay).
    pub c_pn_base: f64,
    /// Pin-pin proximity coupling scale, F.
    pub c_pp_base: f64,
    /// Minimum wire spacing, µm (distance decay floor).
    pub min_spacing: f64,
    /// Lognormal jitter sigma modeling process/routing variation.
    pub jitter_sigma: f64,
    /// Keep couplings only above this value, F.
    pub keep_threshold: f64,
    /// Clamp range for all capacitances, F (the paper uses 1e-21..1e-15).
    pub cap_range: (f64, f64),
    /// At most this many coupling partners per node (nearest win).
    pub max_partners: usize,
    /// Nets with more pins than this are treated as supply-like: their
    /// couplings fold into ground capacitance, as extraction decks do for
    /// AC-ground rails.
    pub supply_degree: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            seed: 0xC1C5,
            coupling_radius: 1.2,
            c_wire_per_um: 0.12e-15,
            c_gate_per_um2: 6.0e-15,
            c_diff_per_um: 0.45e-15,
            c_nn_per_um: 0.05e-15,
            c_pn_base: 0.02e-15,
            c_pp_base: 0.01e-15,
            min_spacing: 0.1,
            jitter_sigma: 0.35,
            keep_threshold: 3e-19,
            cap_range: (1e-21, 1e-15),
            max_partners: 24,
            supply_degree: 64,
        }
    }
}

/// Names always treated as supply/ground rails.
fn is_supply_name(name: &str) -> bool {
    matches!(name, "VDD" | "VSS" | "VDDL" | "VDDH" | "0") || name.eq_ignore_ascii_case("gnd")
}

#[derive(Debug, Clone, Copy)]
struct Bbox {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Bbox {
    fn point(x: f64, y: f64) -> Self {
        Bbox {
            x0: x,
            y0: y,
            x1: x,
            y1: y,
        }
    }

    fn include(&mut self, x: f64, y: f64) {
        self.x0 = self.x0.min(x);
        self.y0 = self.y0.min(y);
        self.x1 = self.x1.max(x);
        self.y1 = self.y1.max(y);
    }

    fn hpwl(&self) -> f64 {
        (self.x1 - self.x0) + (self.y1 - self.y0)
    }

    fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Gap between two boxes per axis (0 if overlapping), and overlap
    /// lengths (0 if disjoint).
    fn gap_overlap(&self, other: &Bbox) -> (f64, f64, f64, f64) {
        let gx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0.0);
        let gy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0.0);
        let ox = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let oy = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        (gx, gy, ox, oy)
    }
}

#[derive(Debug)]
struct PinInfo {
    node: SpfNode,
    x: f64,
    y: f64,
    net: usize,
    width_um: f64,
    ground_cap: f64,
}

#[derive(Debug)]
struct NetInfo {
    name: String,
    bbox: Bbox,
    n_pins: usize,
    supply: bool,
    ground_cap: f64,
}

/// Runs the layout-proxy extraction, producing an SPF file with ground and
/// coupling capacitances.
///
/// # Examples
///
/// ```
/// use ams_datagen::{generate, extract_parasitics, DesignKind, ExtractConfig, SizePreset};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(DesignKind::Array128x32, SizePreset::Tiny)?;
/// let spf = extract_parasitics(&design, &ExtractConfig::default());
/// assert!(!spf.coupling_caps.is_empty());
/// assert!(!spf.ground_caps.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn extract_parasitics(design: &Design, cfg: &ExtractConfig) -> SpfFile {
    let nl = &design.netlist;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut jitter = move || {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (z * cfg.jitter_sigma).exp()
    };

    // --- Collect pins (merged per device×net, as in the graph) ----------
    let mut pins: Vec<PinInfo> = Vec::new();
    let mut net_boxes: Vec<Option<Bbox>> = vec![None; nl.num_nets()];
    let mut net_pin_counts = vec![0usize; nl.num_nets()];
    let mut net_pin_caps = vec![0.0f64; nl.num_nets()];

    for (_, dev) in nl.devices() {
        let (dx, dy) = design.placement.device_position(&dev.name);
        let terms = dev.kind.terminal_names();
        let mut seen: Vec<u32> = Vec::with_capacity(4);
        for (ti, &net) in dev.terminals.iter().enumerate() {
            if seen.contains(&net.0) {
                continue;
            }
            seen.push(net.0);
            let w_um = (dev.params.width * 1e6).max(0.05);
            let l_um = (dev.params.length * 1e6).max(0.03);
            let mult = dev.params.multiplier.max(1.0);
            // Pin ground cap from device geometry.
            let gcap = match (dev.kind, terms[ti]) {
                (DeviceKind::Nmos | DeviceKind::Pmos, "G") => {
                    cfg.c_gate_per_um2 * w_um * l_um * mult
                }
                (DeviceKind::Nmos | DeviceKind::Pmos, _) => cfg.c_diff_per_um * w_um * mult,
                (DeviceKind::Capacitor, _) => cfg.c_diff_per_um * 0.5 * l_um.max(0.2),
                (DeviceKind::Resistor, _) => cfg.c_diff_per_um * 0.3 * w_um.max(0.1),
                (DeviceKind::Diode, _) => cfg.c_diff_per_um * 0.8,
            };
            pins.push(PinInfo {
                node: SpfNode::Pin {
                    device: dev.name.clone(),
                    pin: terms[ti].to_string(),
                },
                x: dx,
                y: dy,
                net: net.0 as usize,
                width_um: w_um * mult,
                ground_cap: gcap,
            });
            match &mut net_boxes[net.0 as usize] {
                Some(b) => b.include(dx, dy),
                slot @ None => *slot = Some(Bbox::point(dx, dy)),
            }
            net_pin_counts[net.0 as usize] += 1;
            net_pin_caps[net.0 as usize] += gcap;
        }
    }

    // --- Net info --------------------------------------------------------
    let nets: Vec<NetInfo> = nl
        .nets()
        .map(|(id, net)| {
            let i = id.0 as usize;
            let bbox = net_boxes[i].unwrap_or(Bbox::point(0.0, 0.0));
            let n_pins = net_pin_counts[i];
            let supply = is_supply_name(&net.name) || n_pins > cfg.supply_degree;
            // Route-length estimate: HPWL plus per-pin stub.
            let wire_len = bbox.hpwl() + 0.3 * n_pins as f64;
            let ground = cfg.c_wire_per_um * wire_len
                + net_pin_caps[i] * 0.15
                + if net.is_port { 0.5e-15 } else { 0.0 };
            NetInfo {
                name: net.name.clone(),
                bbox,
                n_pins,
                supply,
                ground_cap: ground,
            }
        })
        .collect();

    let mut spf = SpfFile::new(&design.name);

    // --- Ground capacitances ---------------------------------------------
    let (lo, hi) = cfg.cap_range;
    for (i, net) in nets.iter().enumerate() {
        if net.n_pins == 0 {
            continue;
        }
        let v = (net.ground_cap * jitter()).clamp(lo, hi);
        let _ = i;
        spf.ground_caps.push(GroundCap {
            node: SpfNode::Net(net.name.clone()),
            value: v,
        });
    }
    for pin in &pins {
        let v = (pin.ground_cap * jitter()).clamp(lo, hi);
        spf.ground_caps.push(GroundCap {
            node: pin.node.clone(),
            value: v,
        });
    }

    // --- Spatial grid over pins and signal-net boxes -----------------------
    let cell = cfg.coupling_radius.max(0.2);
    let key = |x: f64, y: f64| ((x / cell).floor() as i64, (y / cell).floor() as i64);
    // The pin-pin radius is only 0.6x the coupling radius, so pins get
    // their own finer grid — scanning 1.2 µm cells for a 0.72 µm radius
    // visits ~3x more candidates than needed. A compact geometry
    // side-array keeps the hot scan out of the 90-byte PinInfo structs
    // (whose SpfNode strings the scan never reads).
    let pcell = (cfg.coupling_radius * 0.6).max(0.1);
    let pkey = |x: f64, y: f64| ((x / pcell).floor() as i64, (y / pcell).floor() as i64);
    let pin_geo: Vec<(f64, f64, u32, f64)> = pins
        .iter()
        .map(|p| (p.x, p.y, p.net as u32, p.width_um))
        .collect();
    let mut pin_grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, p) in pins.iter().enumerate() {
        // Supply-net pins are never coupling partners; keeping them out of
        // the grid halves the bucket sizes the hot pin-pin scan walks.
        if nets[p.net].supply {
            continue;
        }
        pin_grid.entry(pkey(p.x, p.y)).or_default().push(i);
    }
    let mut net_grid: std::collections::BTreeMap<(i64, i64), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, n) in nets.iter().enumerate() {
        if n.supply || n.n_pins == 0 {
            continue;
        }
        // No padding at insertion: the scans already visit neighbor
        // buckets, and with cell == coupling_radius any in-range pair's
        // covered cells are at most one bucket apart. Padding here would
        // multiply every bucket's size for nothing.
        let (kx0, ky0) = key(n.bbox.x0, n.bbox.y0);
        let (kx1, ky1) = key(n.bbox.x1, n.bbox.y1);
        // Cap the insertion footprint so long wires (bitlines) don't blow
        // up the grid; long spans are truncated to their endpoints + center.
        if ((kx1 - kx0 + 1) * (ky1 - ky0 + 1)) as usize > 512 {
            let (cx, cy) = n.bbox.center();
            for (px, py) in [(n.bbox.x0, n.bbox.y0), (cx, cy), (n.bbox.x1, n.bbox.y1)] {
                net_grid.entry(key(px, py)).or_default().push(i);
            }
            continue;
        }
        for kx in kx0..=kx1 {
            for ky in ky0..=ky1 {
                net_grid.entry((kx, ky)).or_default().push(i);
            }
        }
    }

    // Per-category partner budgets reproduce the paper's link-type
    // imbalance: pin-net couplings dominate, net-net couplings are rarest.
    //
    // All bookkeeping runs on compact integer node ids (pin i -> i, net i
    // -> num_pins + i) rather than on `SpfNode` keys: at 1e6-node scale the
    // candidate stream is in the hundreds of millions, and cloning/hashing
    // two heap strings per candidate used to dominate the whole extraction
    // (minutes of allocator time). `SpfNode`s are built only on emission.
    let num_pins = pins.len();
    let cat_of = |a: usize, b: usize| -> (usize, usize) {
        let (a_pin, b_pin) = (a < num_pins, b < num_pins);
        if a_pin && b_pin {
            (1, cfg.max_partners / 2)
        } else if !a_pin && !b_pin {
            (2, (cfg.max_partners / 6).max(2))
        } else {
            (0, cfg.max_partners)
        }
    };
    let mut partner_count: Vec<[u32; 3]> = vec![[0; 3]; num_pins + nets.len()];
    let mut emitted: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let node_of = |id: usize| -> SpfNode {
        if id < num_pins {
            pins[id].node.clone()
        } else {
            SpfNode::Net(nets[id - num_pins].name.clone())
        }
    };
    // Jitter is applied only after the budget/dedup checks pass: the
    // Box-Muller transcendentals per candidate were the next-biggest cost
    // after the string keys, and most candidates in a dense array lose to
    // a saturated budget anyway. A budget-rejected candidate therefore no
    // longer advances the RNG — values stay a pure function of the seed.
    let push_coupling = |spf: &mut SpfFile,
                         partner_count: &mut Vec<[u32; 3]>,
                         emitted: &mut std::collections::HashSet<u64>,
                         jitter: &mut dyn FnMut() -> f64,
                         a: usize,
                         b: usize,
                         base: f64| {
        // Threshold the nominal (pre-jitter) value first: in a dense array
        // most in-radius candidates are far-field pairs below the keep
        // threshold, and testing them last used to pollute the dedup set
        // with tens of millions of entries, keep budgets from ever
        // saturating, and spend a Box-Muller draw per reject.
        if base < cfg.keep_threshold {
            return;
        }
        let (cat, cap) = cat_of(a, b);
        if partner_count[a][cat] as usize >= cap || partner_count[b][cat] as usize >= cap {
            return;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if !emitted.insert(((x as u64) << 32) | y as u64) {
            return;
        }
        let value = base * jitter();
        partner_count[a][cat] += 1;
        partner_count[b][cat] += 1;
        spf.coupling_caps.push(CouplingCap {
            a: node_of(a),
            b: node_of(b),
            value: value.clamp(lo, hi),
        });
    };

    // --- Net-net couplings -------------------------------------------------
    let nn_cap = (cfg.max_partners / 6).max(2) as u32;
    for (ki, bucket) in &net_grid {
        for (bi, &i) in bucket.iter().enumerate() {
            // A net whose net-net budget is spent can't start new pairs;
            // skip its whole forward scan (it may still be found by others).
            if partner_count[num_pins + i][2] >= nn_cap {
                continue;
            }
            // Same-bucket pairs plus the 4 forward neighbor buckets: each
            // unordered bucket pair is visited once.
            let forward = [(0, 0), (1, 0), (0, 1), (1, 1), (1, -1)];
            for (dxk, dyk) in forward {
                let kj = (ki.0 + dxk, ki.1 + dyk);
                let Some(other) = net_grid.get(&kj) else {
                    continue;
                };
                let start = if (dxk, dyk) == (0, 0) { bi + 1 } else { 0 };
                for &j in other.iter().skip(start) {
                    if i == j {
                        continue;
                    }
                    let (a, b) = (&nets[i], &nets[j]);
                    let (gx, gy, ox, oy) = a.bbox.gap_overlap(&b.bbox);
                    let gap = (gx * gx + gy * gy).sqrt();
                    if gap > cfg.coupling_radius {
                        continue;
                    }
                    let parallel = ox.max(oy).max(0.15);
                    let spacing = gap.max(cfg.min_spacing);
                    let v = cfg.c_nn_per_um * parallel * (cfg.min_spacing / spacing);
                    push_coupling(
                        &mut spf,
                        &mut partner_count,
                        &mut emitted,
                        &mut jitter,
                        num_pins + i,
                        num_pins + j,
                        v,
                    );
                }
            }
        }
    }

    // --- Pin-net and pin-pin couplings -------------------------------------
    let pn_cap = cfg.max_partners as u32;
    let pp_cap = (cfg.max_partners / 2) as u32;
    for (i, pin) in pins.iter().enumerate() {
        if nets[pin.net].supply {
            continue;
        }
        let k = key(pin.x, pin.y);
        // Pin-net: the pin couples to nearby signal nets it is not on.
        // Saturated pins skip the scan — they can't start new pairs.
        for dxk in -1..=1i64 {
            if partner_count[i][0] >= pn_cap {
                break;
            }
            for dyk in -1..=1i64 {
                if let Some(bucket) = net_grid.get(&(k.0 + dxk, k.1 + dyk)) {
                    for &ni in bucket {
                        // Budget checks before geometry: a saturated net
                        // rejects with one cache-friendly u32 load instead
                        // of a NetInfo fetch plus gap/sqrt math.
                        if ni == pin.net || partner_count[num_pins + ni][0] >= pn_cap {
                            continue;
                        }
                        let nb = &nets[ni];
                        let (gx, gy, _, _) = Bbox::point(pin.x, pin.y).gap_overlap(&nb.bbox);
                        let dist = (gx * gx + gy * gy).sqrt();
                        if dist > cfg.coupling_radius {
                            continue;
                        }
                        let v = cfg.c_pn_base
                            * pin.width_um.max(0.1)
                            * (cfg.min_spacing / dist.max(cfg.min_spacing));
                        push_coupling(
                            &mut spf,
                            &mut partner_count,
                            &mut emitted,
                            &mut jitter,
                            i,
                            num_pins + ni,
                            v,
                        );
                    }
                }
            }
        }
        // Pin-pin: forward-only scan within the same and neighbor buckets.
        let pk = pkey(pin.x, pin.y);
        let forward = [(0, 0), (1, 0), (0, 1), (1, 1), (1, -1)];
        for (dxk, dyk) in forward {
            if partner_count[i][1] >= pp_cap {
                break;
            }
            let Some(bucket) = pin_grid.get(&(pk.0 + dxk, pk.1 + dyk)) else {
                continue;
            };
            for &j in bucket {
                if (dxk, dyk) == (0, 0) && j <= i {
                    continue;
                }
                // Saturated partners reject before the geometry fetch.
                if partner_count[j][1] >= pp_cap {
                    continue;
                }
                let (qx, qy, qnet, qw) = pin_geo[j];
                if qnet as usize == pin.net {
                    continue;
                }
                let d = ((pin.x - qx).powi(2) + (pin.y - qy).powi(2)).sqrt();
                if d > cfg.coupling_radius * 0.6 {
                    continue;
                }
                let v = cfg.c_pp_base
                    * (pin.width_um.min(qw)).max(0.05)
                    * (cfg.min_spacing / d.max(cfg.min_spacing));
                push_coupling(
                    &mut spf,
                    &mut partner_count,
                    &mut emitted,
                    &mut jitter,
                    i,
                    j,
                    v,
                );
            }
        }
    }

    spf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{generate, DesignKind, SizePreset};

    fn tiny_spf() -> (Design, SpfFile) {
        let d = generate(DesignKind::Array128x32, SizePreset::Tiny).unwrap();
        let spf = extract_parasitics(&d, &ExtractConfig::default());
        (d, spf)
    }

    #[test]
    fn produces_all_three_link_types() {
        let (_, spf) = tiny_spf();
        let mut p2n = 0;
        let mut p2p = 0;
        let mut n2n = 0;
        for c in &spf.coupling_caps {
            match (&c.a, &c.b) {
                (SpfNode::Pin { .. }, SpfNode::Pin { .. }) => p2p += 1,
                (SpfNode::Net(_), SpfNode::Net(_)) => n2n += 1,
                _ => p2n += 1,
            }
        }
        assert!(
            p2n > 0 && p2p > 0 && n2n > 0,
            "p2n={p2n} p2p={p2p} n2n={n2n}"
        );
        // Paper: p2n majority, n2n fewest.
        assert!(p2n > n2n, "p2n={p2n} should outnumber n2n={n2n}");
    }

    #[test]
    fn values_lie_in_paper_range() {
        let (_, spf) = tiny_spf();
        for c in &spf.coupling_caps {
            assert!(c.value >= 1e-21 && c.value <= 1e-15, "{}", c.value);
        }
        for g in &spf.ground_caps {
            assert!(g.value >= 1e-21 && g.value <= 1e-15, "{}", g.value);
        }
    }

    #[test]
    fn values_span_magnitudes() {
        let (_, spf) = tiny_spf();
        let min = spf
            .coupling_caps
            .iter()
            .map(|c| c.value)
            .fold(f64::MAX, f64::min);
        let max = spf
            .coupling_caps
            .iter()
            .map(|c| c.value)
            .fold(0.0, f64::max);
        assert!(max / min > 10.0, "spread {min}..{max} too narrow");
    }

    #[test]
    fn no_supply_couplings() {
        let (_, spf) = tiny_spf();
        for c in &spf.coupling_caps {
            for n in [&c.a, &c.b] {
                if let SpfNode::Net(name) = n {
                    assert!(!is_supply_name(name), "supply net {name} in coupling");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = generate(DesignKind::TimingControl, SizePreset::Tiny).unwrap();
        let a = extract_parasitics(&d, &ExtractConfig::default());
        let b = extract_parasitics(&d, &ExtractConfig::default());
        assert_eq!(a.coupling_caps.len(), b.coupling_caps.len());
        assert_eq!(a.ground_caps.len(), b.ground_caps.len());
        let c = extract_parasitics(
            &d,
            &ExtractConfig {
                seed: 99,
                ..Default::default()
            },
        );
        // Similar structure (threshold interacts with jitter, so counts may
        // differ slightly), but different values.
        let (na, nc) = (a.coupling_caps.len() as f64, c.coupling_caps.len() as f64);
        assert!((na - nc).abs() / na < 0.1, "counts {na} vs {nc} diverged");
        assert!(a
            .coupling_caps
            .iter()
            .zip(&c.coupling_caps)
            .any(|(x, y)| x.value != y.value));
    }

    #[test]
    fn couplings_are_local() {
        // Every coupling involves nodes whose positions are within the
        // configured radius (sanity of the spatial index).
        let d = generate(DesignKind::Array128x32, SizePreset::Tiny).unwrap();
        let cfg = ExtractConfig::default();
        let spf = extract_parasitics(&d, &cfg);
        let pos_of = |n: &SpfNode| -> Option<(f64, f64)> {
            match n {
                SpfNode::Pin { device, .. } => Some(d.placement.device_position(device)),
                SpfNode::Net(_) => None,
            }
        };
        for c in &spf.coupling_caps {
            if let (Some((ax, ay)), Some((bx, by))) = (pos_of(&c.a), pos_of(&c.b)) {
                let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                assert!(
                    dist <= cfg.coupling_radius + 1.0,
                    "pin pair {dist} µm apart"
                );
            }
        }
    }

    #[test]
    fn spf_round_trips_through_text() {
        let (_, spf) = tiny_spf();
        let text = spf.to_text();
        let back = SpfFile::parse(&text).unwrap();
        assert_eq!(back.coupling_caps.len(), spf.coupling_caps.len());
        assert_eq!(back.ground_caps.len(), spf.ground_caps.len());
    }
}
