//! Shared structural tiles: bitcell arrays, column periphery, row
//! decoders and clock trees. Used by both the six hand-written design
//! archetypes (`designs`) and the composition-grammar enumerator
//! (`grammar`/`enumerate`).

use crate::builder::{BuildDesignError, DesignBuilder};

/// Bitcell pitch in microns (x = column direction, y = row direction),
/// typical of a 28 nm 6T cell.
pub const CELL_W: f64 = 0.6;
/// Row pitch in microns.
pub const CELL_H: f64 = 0.3;

/// Places a `rows × cols` 6T bitcell array with prefix `p` at origin
/// `(x0, y0)`. Creates nets `"{p}BL{c}"`, `"{p}BLB{c}"`, `"{p}WL{r}"`.
pub fn bitcell_array_6t(
    b: &mut DesignBuilder,
    p: &str,
    rows: usize,
    cols: usize,
    x0: f64,
    y0: f64,
) -> Result<(), BuildDesignError> {
    for r in 0..rows {
        for c in 0..cols {
            let bl = format!("{p}BL{c}");
            let blb = format!("{p}BLB{c}");
            let wl = format!("{p}WL{r}");
            b.instance(
                &format!("X{p}bit_r{r}_c{c}"),
                "SRAM6T",
                &[&bl, &blb, &wl, "VDD", "VSS"],
                x0 + c as f64 * CELL_W,
                y0 + r as f64 * CELL_H,
            )?;
        }
    }
    Ok(())
}

/// Places a `rows × cols` 8T bitcell array with separate read port nets
/// `"{p}RBL{c}"` / `"{p}RWL{r}"` and write nets `"{p}WBL*"` / `"{p}WWL{r}"`.
pub fn bitcell_array_8t(
    b: &mut DesignBuilder,
    p: &str,
    rows: usize,
    cols: usize,
    x0: f64,
    y0: f64,
) -> Result<(), BuildDesignError> {
    for r in 0..rows {
        for c in 0..cols {
            let wbl = format!("{p}WBL{c}");
            let wblb = format!("{p}WBLB{c}");
            let wwl = format!("{p}WWL{r}");
            let rbl = format!("{p}RBL{c}");
            let rwl = format!("{p}RWL{r}");
            b.instance(
                &format!("X{p}bit8_r{r}_c{c}"),
                "SRAM8T",
                &[&wbl, &wblb, &wwl, &rbl, &rwl, "VDD", "VSS"],
                x0 + c as f64 * (CELL_W * 1.3),
                y0 + r as f64 * (CELL_H * 1.2),
            )?;
        }
    }
    Ok(())
}

/// Column periphery for a 6T array: precharge + write driver per column,
/// 4:1 column muxing into sense amplifiers.
///
/// Consumes nets `"{p}BL{c}"`; produces data outputs `"{p}SA{g}"`.
pub fn column_periphery(
    b: &mut DesignBuilder,
    p: &str,
    cols: usize,
    x0: f64,
    y_arr_top: f64,
) -> Result<(), BuildDesignError> {
    let pcb = format!("{p}PCB");
    let wen = format!("{p}WEN");
    let sae = format!("{p}SAE");
    for c in 0..cols {
        let bl = format!("{p}BL{c}");
        let blb = format!("{p}BLB{c}");
        let x = x0 + c as f64 * CELL_W;
        b.instance(
            &format!("X{p}pch{c}"),
            "PRECH",
            &[&bl, &blb, &pcb, "VDD"],
            x,
            y_arr_top + 0.5,
        )?;
        b.instance(
            &format!("X{p}wd{c}"),
            "WRDRV",
            &[&format!("{p}D{c}"), &wen, &bl, &blb, "VDD", "VSS"],
            x,
            y_arr_top + 1.2,
        )?;
    }
    // 2-level column mux into one SA per group of 4 columns.
    let groups = cols.div_ceil(4).max(1);
    for g in 0..groups {
        let c0 = 4 * g;
        let pick = |i: usize| format!("{p}BL{}", (c0 + i).min(cols - 1));
        let m0 = format!("{p}mx{g}_0");
        let m1 = format!("{p}mx{g}_1");
        let xg = x0 + (c0 as f64 + 1.5) * CELL_W;
        b.instance(
            &format!("X{p}cm{g}a"),
            "COLMUX",
            &[&pick(0), &pick(1), &format!("{p}CSEL0"), &m0, "VDD", "VSS"],
            xg,
            y_arr_top + 2.0,
        )?;
        b.instance(
            &format!("X{p}cm{g}b"),
            "COLMUX",
            &[&pick(2), &pick(3), &format!("{p}CSEL0"), &m1, "VDD", "VSS"],
            xg + 0.6,
            y_arr_top + 2.0,
        )?;
        b.instance(
            &format!("X{p}cm{g}c"),
            "COLMUX",
            &[
                &m0,
                &m1,
                &format!("{p}CSEL1"),
                &format!("{p}sabl{g}"),
                "VDD",
                "VSS",
            ],
            xg + 0.3,
            y_arr_top + 2.6,
        )?;
        b.instance(
            &format!("X{p}sa{g}"),
            "SENSEAMP",
            &[
                &format!("{p}sabl{g}"),
                &format!("{p}BLB{}", c0.min(cols - 1)),
                &sae,
                &format!("{p}SA{g}"),
                &format!("{p}SAB{g}"),
                "VDD",
                "VSS",
            ],
            xg + 0.3,
            y_arr_top + 3.4,
        )?;
    }
    Ok(())
}

/// Row decoder: per-row 3-input AND of predecoded lines plus a wordline
/// driver. Produces/drives nets `"{p}WL{r}"` from address nets
/// `"{p}A{i}"`.
pub fn row_decoder(
    b: &mut DesignBuilder,
    p: &str,
    rows: usize,
    wl_prefix: &str,
    x_dec: f64,
    y0: f64,
) -> Result<(), BuildDesignError> {
    let abits = rows.next_power_of_two().trailing_zeros().max(1) as usize;
    // Address inverters for complement lines.
    for i in 0..abits {
        b.instance(
            &format!("X{p}ainv{i}"),
            "INV",
            &[&format!("{p}A{i}"), &format!("{p}AB{i}"), "VDD", "VSS"],
            x_dec - 2.0,
            y0 + i as f64 * 0.4,
        )?;
    }
    let line = |bit: usize, set: bool, pfx: &str| {
        if set {
            format!("{pfx}A{bit}")
        } else {
            format!("{pfx}AB{bit}")
        }
    };
    for r in 0..rows {
        // Three predecode inputs chosen from the row index bits (wrap when
        // fewer than 3 address bits exist).
        let i0 = 0;
        let i1 = 1 % abits;
        let i2 = 2 % abits;
        let n0 = line(i0, r & 1 != 0, p);
        let n1 = line(i1, (r >> 1) & 1 != 0, p);
        let n2 = line(i2, (r >> 2) & 1 != 0, p);
        let decb = format!("{p}decb{r}");
        let y = y0 + r as f64 * CELL_H;
        b.instance(
            &format!("X{p}dec{r}"),
            "NAND3",
            &[&n0, &n1, &n2, &decb, "VDD", "VSS"],
            x_dec - 1.2,
            y,
        )?;
        b.instance(
            &format!("X{p}wld{r}"),
            "WLDRV",
            &[&decb, &format!("{wl_prefix}WL{r}"), "VDD", "VSS"],
            x_dec - 0.5,
            y,
        )?;
    }
    Ok(())
}

/// Binary clock-buffer tree distributing `root` to `leaves` sink nets.
pub fn clock_tree(
    b: &mut DesignBuilder,
    p: &str,
    root: &str,
    leaves: &[String],
    x0: f64,
    y0: f64,
) -> Result<(), BuildDesignError> {
    // Level 1: one buffer per 8 leaves; root buffer feeds them.
    let n_l1 = leaves.len().div_ceil(8).max(1);
    let rootbuf = format!("{p}ckroot");
    b.instance(
        &format!("X{p}ckr"),
        "BUF",
        &[root, &rootbuf, "VDD", "VSS"],
        x0,
        y0,
    )?;
    for i in 0..n_l1 {
        let mid = format!("{p}ckm{i}");
        b.instance(
            &format!("X{p}ckb{i}"),
            "BUF",
            &[&rootbuf, &mid, "VDD", "VSS"],
            x0 + 1.0,
            y0 + i as f64 * 2.0,
        )?;
        for (j, leaf) in leaves.iter().skip(i * 8).take(8).enumerate() {
            b.instance(
                &format!("X{p}ckl{i}_{j}"),
                "BUF",
                &[&mid, leaf, "VDD", "VSS"],
                x0 + 2.0,
                y0 + i as f64 * 2.0 + j as f64 * 0.25,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_and_periphery_compose() {
        let mut b = DesignBuilder::new("T");
        for p in ["CLK"] {
            b.port(p);
        }
        bitcell_array_6t(&mut b, "m_", 4, 8, 0.0, 0.0).unwrap();
        column_periphery(&mut b, "m_", 8, 0.0, 4.0 * CELL_H).unwrap();
        row_decoder(&mut b, "m_", 4, "m_", 0.0, 0.0).unwrap();
        let d = b.finish().unwrap();
        // 32 bitcells × 6 = 192 devices plus periphery.
        assert!(d.netlist.num_devices() > 192);
        assert!(d.netlist.net_id("m_BL3").is_some());
        assert!(d.netlist.net_id("m_WL3").is_some());
        assert!(d.netlist.net_id("m_SA1").is_some());
    }

    #[test]
    fn clock_tree_reaches_all_leaves() {
        let mut b = DesignBuilder::new("T");
        b.port("CK");
        let leaves: Vec<String> = (0..20).map(|i| format!("ck_leaf{i}")).collect();
        clock_tree(&mut b, "t_", "CK", &leaves, 0.0, 0.0).unwrap();
        let d = b.finish().unwrap();
        for leaf in &leaves {
            assert!(d.netlist.net_id(leaf).is_some(), "missing {leaf}");
        }
    }
}
