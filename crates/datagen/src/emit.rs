//! Shared SPICE+SPF emission: the one place a design pair becomes files.
//!
//! Both `cirgps gen` (the six hand-written archetypes) and
//! `cirgps datagen` (the grammar enumerator) write through here, so the
//! on-disk contract — `<NAME>.sp` holds the hierarchical source,
//! `<NAME>.spf` the extracted parasitics — lives in exactly one place.

use std::io;
use std::path::{Path, PathBuf};

use ams_netlist::SpfFile;

use crate::builder::Design;

/// Writes `<dir>/<NAME>.sp` (hierarchical SPICE source) and
/// `<dir>/<NAME>.spf` (extracted parasitics), creating `dir` if needed.
/// Returns both paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_design_pair(
    dir: &Path,
    design: &Design,
    spf: &SpfFile,
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let sp = dir.join(format!("{}.sp", design.name));
    let spf_path = dir.join(format!("{}.spf", design.name));
    // The hierarchical source is more useful than the flattened netlist:
    // the pipeline re-flattens on load, and hierarchy keeps files small.
    std::fs::write(&sp, &design.spice)?;
    std::fs::write(&spf_path, spf.to_text())?;
    Ok((sp, spf_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_parasitics, generate, DesignKind, ExtractConfig, SizePreset};

    #[test]
    fn pair_files_land_under_the_design_name() {
        let d = generate(DesignKind::TimingControl, SizePreset::Tiny).unwrap();
        let spf = extract_parasitics(&d, &ExtractConfig::default());
        let dir = std::env::temp_dir().join("cirgps_emit_test");
        let (sp, spf_path) = write_design_pair(&dir, &d, &spf).unwrap();
        assert!(sp.ends_with("TIMING_CONTROL.sp"));
        assert!(spf_path.ends_with("TIMING_CONTROL.spf"));
        let text = std::fs::read_to_string(&sp).unwrap();
        assert!(text.contains(".SUBCKT TIMING_CONTROL"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
