//! Leaf-cell library: SPICE `.SUBCKT` definitions for the standard cells,
//! SRAM bitcells and analog blocks the design generators compose.
//!
//! All cells are sized for a generic 28 nm-class technology (L = 30 nm,
//! minimal widths around 100 nm) so the geometric statistics in `XC`
//! match the magnitudes the paper's designs would produce.

/// Name and SPICE text of every cell in the library, as one parseable
/// SPICE fragment.
pub fn library_spice() -> &'static str {
    LIBRARY
}

/// Port lists per cell (cell name, ports). Used by the design builder to
/// validate instantiations early instead of failing at flatten time.
pub fn cell_ports(cell: &str) -> Option<&'static [&'static str]> {
    Some(match cell {
        "INV" => &["A", "Z", "VDD", "VSS"],
        "INVX4" => &["A", "Z", "VDD", "VSS"],
        "BUF" => &["A", "Z", "VDD", "VSS"],
        "NAND2" => &["A", "B", "Z", "VDD", "VSS"],
        "NAND3" => &["A", "B", "C", "Z", "VDD", "VSS"],
        "NOR2" => &["A", "B", "Z", "VDD", "VSS"],
        "XOR2" => &["A", "B", "Z", "VDD", "VSS"],
        "MUX2" => &["A", "B", "S", "Z", "VDD", "VSS"],
        "DFF" => &["D", "CK", "Q", "VDD", "VSS"],
        "TGATE" => &["A", "Z", "EN", "ENB", "VDD", "VSS"],
        "SRAM6T" => &["BL", "BLB", "WL", "VDD", "VSS"],
        "SRAM8T" => &["WBL", "WBLB", "WWL", "RBL", "RWL", "VDD", "VSS"],
        "PRECH" => &["BL", "BLB", "PCB", "VDD"],
        "SENSEAMP" => &["BL", "BLB", "SAE", "OUT", "OUTB", "VDD", "VSS"],
        "WRDRV" => &["D", "WEN", "BL", "BLB", "VDD", "VSS"],
        "COLMUX" => &["BL0", "BL1", "SEL", "BLO", "VDD", "VSS"],
        "WLDRV" => &["IN", "WL", "VDD", "VSS"],
        "DIFFAMP" => &["INP", "INN", "OUT", "VBN", "VDD", "VSS"],
        "COMPARATOR" => &["INP", "INN", "CLK", "OUTP", "OUTN", "VDD", "VSS"],
        "CURMIR" => &["IREF", "IOUT", "VSS"],
        "LVLSHIFT" => &["A", "Z", "VDDL", "VDDH", "VSS"],
        "VREF" => &["VOUT", "VDD", "VSS"],
        "RCDELAY" => &["A", "Z", "VDD", "VSS"],
        "FULLADD" => &["A", "B", "CI", "S", "CO", "VDD", "VSS"],
        _ => return None,
    })
}

/// Electrical role of a cell port, as seen from outside the cell.
///
/// The composition grammar uses this to wire productions legally (every
/// `Input` port must see a driven net) and the validity filters use it to
/// explain violations in library terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// High-impedance gate input: must be driven by something else.
    Input,
    /// Actively driven output.
    Output,
    /// Source/drain channel terminal (bitlines, pass-gate ends): conducts
    /// both ways, counts as a driver for validity purposes.
    Channel,
    /// Power or ground rail.
    Supply,
}

/// The [`PortRole`] of `port` on `cell`, or `None` for unknown pairs.
pub fn cell_port_role(cell: &str, port: &str) -> Option<PortRole> {
    use PortRole::*;
    if matches!(port, "VDD" | "VSS" | "VDDL" | "VDDH") {
        return cell_ports(cell)?.contains(&port).then_some(Supply);
    }
    Some(match (cell, port) {
        ("INV" | "INVX4" | "BUF" | "RCDELAY" | "LVLSHIFT", "A") => Input,
        ("INV" | "INVX4" | "BUF" | "RCDELAY" | "LVLSHIFT", "Z") => Output,
        ("NAND2" | "NAND3" | "NOR2" | "XOR2", "A" | "B" | "C") => Input,
        ("NAND2" | "NAND3" | "NOR2" | "XOR2", "Z") => Output,
        ("MUX2", "A" | "B" | "S") => Input,
        ("MUX2", "Z") => Output,
        ("DFF", "D" | "CK") => Input,
        ("DFF", "Q") => Output,
        ("TGATE", "A" | "Z") => Channel,
        ("TGATE", "EN" | "ENB") => Input,
        ("SRAM6T", "BL" | "BLB") => Channel,
        ("SRAM6T", "WL") => Input,
        ("SRAM8T", "WBL" | "WBLB" | "RBL") => Channel,
        ("SRAM8T", "WWL" | "RWL") => Input,
        ("PRECH", "BL" | "BLB") => Output,
        ("PRECH", "PCB") => Input,
        ("SENSEAMP", "BL" | "BLB") => Channel,
        ("SENSEAMP", "SAE") => Input,
        ("SENSEAMP", "OUT" | "OUTB") => Output,
        ("WRDRV", "D" | "WEN") => Input,
        ("WRDRV", "BL" | "BLB") => Output,
        ("COLMUX", "BL0" | "BL1" | "BLO") => Channel,
        ("COLMUX", "SEL") => Input,
        ("WLDRV", "IN") => Input,
        ("WLDRV", "WL") => Output,
        ("DIFFAMP", "INP" | "INN" | "VBN") => Input,
        ("DIFFAMP", "OUT") => Output,
        ("COMPARATOR", "INP" | "INN" | "CLK") => Input,
        ("COMPARATOR", "OUTP" | "OUTN") => Output,
        ("CURMIR", "IREF") => Channel,
        ("CURMIR", "IOUT") => Output,
        ("VREF", "VOUT") => Output,
        ("FULLADD", "A" | "B" | "CI") => Input,
        ("FULLADD", "S" | "CO") => Output,
        _ => return None,
    })
}

/// Approximate primitive-device count per cell (for sizing estimates).
pub fn cell_device_count(cell: &str) -> Option<usize> {
    Some(match cell {
        "INV" | "INVX4" => 2,
        "BUF" => 4,
        "NAND2" | "NOR2" => 4,
        "NAND3" => 6,
        "XOR2" => 12,
        "MUX2" => 10,
        "DFF" => 20,
        "TGATE" => 2,
        "SRAM6T" => 6,
        "SRAM8T" => 8,
        "PRECH" => 3,
        "SENSEAMP" => 9,
        "WRDRV" => 14,
        "COLMUX" => 4,
        "WLDRV" => 4,
        "DIFFAMP" => 5,
        "COMPARATOR" => 11,
        "CURMIR" => 2,
        "LVLSHIFT" => 7,
        "VREF" => 6,
        "RCDELAY" => 6,
        "FULLADD" => 36,
        _ => return None,
    })
}

const LIBRARY: &str = r#"
* cirgps cell library (generic 28nm-class sizing)

.SUBCKT INV A Z VDD VSS
M1 Z A VSS VSS nch W=0.1u L=0.03u
M2 Z A VDD VDD pch W=0.2u L=0.03u
.ENDS

.SUBCKT INVX4 A Z VDD VSS
M1 Z A VSS VSS nch W=0.4u L=0.03u M=2
M2 Z A VDD VDD pch W=0.8u L=0.03u M=2
.ENDS

.SUBCKT BUF A Z VDD VSS
Xi1 A mid VDD VSS INV
Xi2 mid Z VDD VSS INVX4
.ENDS

.SUBCKT NAND2 A B Z VDD VSS
M1 Z A net1 VSS nch W=0.2u L=0.03u
M2 net1 B VSS VSS nch W=0.2u L=0.03u
M3 Z A VDD VDD pch W=0.2u L=0.03u
M4 Z B VDD VDD pch W=0.2u L=0.03u
.ENDS

.SUBCKT NAND3 A B C Z VDD VSS
M1 Z A n1 VSS nch W=0.3u L=0.03u
M2 n1 B n2 VSS nch W=0.3u L=0.03u
M3 n2 C VSS VSS nch W=0.3u L=0.03u
M4 Z A VDD VDD pch W=0.2u L=0.03u
M5 Z B VDD VDD pch W=0.2u L=0.03u
M6 Z C VDD VDD pch W=0.2u L=0.03u
.ENDS

.SUBCKT NOR2 A B Z VDD VSS
M1 Z A VSS VSS nch W=0.1u L=0.03u
M2 Z B VSS VSS nch W=0.1u L=0.03u
M3 Z A net1 VDD pch W=0.4u L=0.03u
M4 net1 B VDD VDD pch W=0.4u L=0.03u
.ENDS

.SUBCKT XOR2 A B Z VDD VSS
Xa A ab VDD VSS INV
Xb B bb VDD VSS INV
M1 Z A n1 VSS nch W=0.15u L=0.03u
M2 n1 bb VSS VSS nch W=0.15u L=0.03u
M3 Z ab n2 VSS nch W=0.15u L=0.03u
M4 n2 B VSS VSS nch W=0.15u L=0.03u
M5 Z ab p1 VDD pch W=0.3u L=0.03u
M6 p1 bb VDD VDD pch W=0.3u L=0.03u
M7 Z A p2 VDD pch W=0.3u L=0.03u
M8 p2 B VDD VDD pch W=0.3u L=0.03u
.ENDS

.SUBCKT MUX2 A B S Z VDD VSS
Xs S sb VDD VSS INV
M1 Z sb ma VSS nch W=0.15u L=0.03u
M2 ma A VSS VSS nch W=0.15u L=0.03u
M3 Z S mb VSS nch W=0.15u L=0.03u
M4 mb B VSS VSS nch W=0.15u L=0.03u
M5 Z sb pa VDD pch W=0.3u L=0.03u
M6 pa B VDD VDD pch W=0.3u L=0.03u
M7 Z S pb VDD pch W=0.3u L=0.03u
M8 pb A VDD VDD pch W=0.3u L=0.03u
.ENDS

.SUBCKT TGATE A Z EN ENB VDD VSS
M1 A EN Z VSS nch W=0.12u L=0.03u
M2 A ENB Z VDD pch W=0.24u L=0.03u
.ENDS

.SUBCKT DFF D CK Q VDD VSS
Xck CK ckb VDD VSS INV
Xck2 ckb cki VDD VSS INV
Xtg1 D m1 ckb cki VDD VSS TGATE
Xi1 m1 m2 VDD VSS INV
Xi2 m2 m1b VDD VSS INV
Xtg2 m1b m1 cki ckb VDD VSS TGATE
Xtg3 m2 s1 cki ckb VDD VSS TGATE
Xi3 s1 Q VDD VSS INV
Xi4 Q s1b VDD VSS INV
Xtg4 s1b s1 ckb cki VDD VSS TGATE
.ENDS

.SUBCKT SRAM6T BL BLB WL VDD VSS
M1 q qb VSS VSS nch W=0.14u L=0.03u
M2 q qb VDD VDD pch W=0.1u L=0.03u
M3 qb q VSS VSS nch W=0.14u L=0.03u
M4 qb q VDD VDD pch W=0.1u L=0.03u
M5 BL WL q VSS nch W=0.12u L=0.03u
M6 BLB WL qb VSS nch W=0.12u L=0.03u
.ENDS

.SUBCKT SRAM8T WBL WBLB WWL RBL RWL VDD VSS
M1 q qb VSS VSS nch W=0.14u L=0.03u
M2 q qb VDD VDD pch W=0.1u L=0.03u
M3 qb q VSS VSS nch W=0.14u L=0.03u
M4 qb q VDD VDD pch W=0.1u L=0.03u
M5 WBL WWL q VSS nch W=0.12u L=0.03u
M6 WBLB WWL qb VSS nch W=0.12u L=0.03u
M7 rint qb VSS VSS nch W=0.16u L=0.03u
M8 RBL RWL rint VSS nch W=0.16u L=0.03u
.ENDS

.SUBCKT PRECH BL BLB PCB VDD
M1 BL PCB VDD VDD pch W=0.3u L=0.03u
M2 BLB PCB VDD VDD pch W=0.3u L=0.03u
M3 BL PCB BLB VDD pch W=0.2u L=0.03u
.ENDS

.SUBCKT SENSEAMP BL BLB SAE OUT OUTB VDD VSS
M1 OUT OUTB tail VSS nch W=0.2u L=0.03u
M2 OUTB OUT tail VSS nch W=0.2u L=0.03u
M3 OUT OUTB VDD VDD pch W=0.2u L=0.03u
M4 OUTB OUT VDD VDD pch W=0.2u L=0.03u
M5 tail SAE VSS VSS nch W=0.4u L=0.03u
M6 OUT SAE BL VDD pch W=0.15u L=0.03u
M7 OUTB SAE BLB VDD pch W=0.15u L=0.03u
M8 OUT SAE OUTB VDD pch W=0.1u L=0.03u
M9 tail SAE VDD VDD pch W=0.1u L=0.03u
.ENDS

.SUBCKT WRDRV D WEN BL BLB VDD VSS
Xd D db VDD VSS INV
Xn1 db WEN w1 VDD VSS NAND2
Xn2 D WEN w2 VDD VSS NAND2
Xi1 w1 BL VDD VSS INVX4
Xi2 w2 BLB VDD VSS INVX4
.ENDS

.SUBCKT COLMUX BL0 BL1 SEL BLO VDD VSS
Xs SEL selb VDD VSS INV
M1 BLO SEL BL0 VDD pch W=0.2u L=0.03u
M2 BLO selb BL1 VDD pch W=0.2u L=0.03u
.ENDS

.SUBCKT WLDRV IN WL VDD VSS
Xi1 IN nb VDD VSS INV
Xi2 nb WL VDD VSS INVX4
.ENDS

.SUBCKT DIFFAMP INP INN OUT VBN VDD VSS
M1 o1 INP tail VSS nch W=0.5u L=0.06u
M2 OUT INN tail VSS nch W=0.5u L=0.06u
M3 o1 o1 VDD VDD pch W=0.3u L=0.06u
M4 OUT o1 VDD VDD pch W=0.3u L=0.06u
M5 tail VBN VSS VSS nch W=0.6u L=0.1u
.ENDS

.SUBCKT COMPARATOR INP INN CLK OUTP OUTN VDD VSS
M1 d1 INP tail VSS nch W=0.4u L=0.03u
M2 d2 INN tail VSS nch W=0.4u L=0.03u
M3 tail CLK VSS VSS nch W=0.6u L=0.03u
M4 OUTP d2 VSS VSS nch W=0.2u L=0.03u
M5 OUTN d1 VSS VSS nch W=0.2u L=0.03u
M6 OUTP d2 VDD VDD pch W=0.3u L=0.03u
M7 OUTN d1 VDD VDD pch W=0.3u L=0.03u
M8 d1 CLK VDD VDD pch W=0.2u L=0.03u
M9 d2 CLK VDD VDD pch W=0.2u L=0.03u
M10 OUTP CLK VDD VDD pch W=0.15u L=0.03u
M11 OUTN CLK VDD VDD pch W=0.15u L=0.03u
.ENDS

.SUBCKT CURMIR IREF IOUT VSS
M1 IREF IREF VSS VSS nch W=1u L=0.2u
M2 IOUT IREF VSS VSS nch W=1u L=0.2u
.ENDS

.SUBCKT LVLSHIFT A Z VDDL VDDH VSS
Xi A ab VDDL VSS INV
M1 n1 A VSS VSS nch W=0.2u L=0.03u
M2 Z ab VSS VSS nch W=0.2u L=0.03u
M3 n1 Z VDDH VDDH pch W=0.15u L=0.03u
M4 Z n1 VDDH VDDH pch W=0.15u L=0.03u
M5 Z n1 VDDH VDDH pch W=0.1u L=0.06u
.ENDS

.SUBCKT VREF VOUT VDD VSS
R1 VDD VOUT rpoly R=50k W=0.4u L=20u
R2 VOUT n1 rpoly R=25k W=0.4u L=10u
D1 n1 VSS dnwps
C1 VOUT VSS mim C=0.5p L=10u NF=4
M1 VOUT n1 VSS VSS nch W=0.3u L=0.1u
M2 n1 VOUT VSS VSS nch W=0.1u L=0.1u
.ENDS

.SUBCKT RCDELAY A Z VDD VSS
Xi1 A m VDD VSS INV
R1 m z1 rpoly R=10k W=0.2u L=5u
C1 z1 VSS mom C=20f L=3u NF=8
Xi2 z1 Z VDD VSS INV
.ENDS

.SUBCKT FULLADD A B CI S CO VDD VSS
Xx1 A B x1 VDD VSS XOR2
Xx2 x1 CI S VDD VSS XOR2
Xn1 A B n1 VDD VSS NAND2
Xn2 x1 CI n2 VDD VSS NAND2
Xn3 n1 n2 CO VDD VSS NAND2
.ENDS
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::SpiceFile;

    #[test]
    fn library_parses() {
        let f = SpiceFile::parse(library_spice()).unwrap();
        assert!(f.subckts.len() >= 20);
    }

    #[test]
    fn every_listed_cell_exists_and_flattens() {
        let f = SpiceFile::parse(library_spice()).unwrap();
        for cell in [
            "INV",
            "INVX4",
            "BUF",
            "NAND2",
            "NAND3",
            "NOR2",
            "XOR2",
            "MUX2",
            "DFF",
            "TGATE",
            "SRAM6T",
            "SRAM8T",
            "PRECH",
            "SENSEAMP",
            "WRDRV",
            "COLMUX",
            "WLDRV",
            "DIFFAMP",
            "COMPARATOR",
            "CURMIR",
            "LVLSHIFT",
            "VREF",
            "RCDELAY",
            "FULLADD",
        ] {
            let def = f
                .subckt(cell)
                .unwrap_or_else(|| panic!("missing cell {cell}"));
            let ports = cell_ports(cell).unwrap_or_else(|| panic!("no port list for {cell}"));
            assert_eq!(def.ports, ports, "port mismatch for {cell}");
            let flat = f
                .flatten(cell)
                .unwrap_or_else(|e| panic!("flatten {cell}: {e}"));
            let expected = cell_device_count(cell).unwrap();
            assert_eq!(flat.num_devices(), expected, "device count for {cell}");
        }
    }

    #[test]
    fn bitcells_have_cross_coupled_pair() {
        let f = SpiceFile::parse(library_spice()).unwrap();
        let flat = f.flatten("SRAM6T").unwrap();
        assert!(flat.net_id("q").is_some());
        assert!(flat.net_id("qb").is_some());
        assert_eq!(flat.transistor_count(), 6);
    }

    #[test]
    fn unknown_cell_is_none() {
        assert!(cell_ports("NOPE").is_none());
        assert!(cell_device_count("NOPE").is_none());
    }
}
