//! A deterministic, dependency-free fuzz harness for the input-facing
//! surfaces: the SPICE/SPF parsers and the serve daemon's HTTP + JSON
//! path.
//!
//! No external fuzzer (`cargo-fuzz`, AFL) is available in this
//! environment, so the harness is self-contained: a seeded [`XorShift`]
//! PRNG drives corpus mutations, every run is exactly reproducible from
//! `(seed, iteration)`, and the property checked is the robustness
//! contract from `docs/robustness.md`:
//!
//! * **never panic** — every target is wrapped in `catch_unwind`;
//! * **never allocate unboundedly** — inputs are capped at
//!   [`MAX_INPUT`] and the targets' own caps do the rest;
//! * **every input yields `Ok` or a named error** — a target returns
//!   normally or the harness records the offending input.
//!
//! Failing inputs are written to a directory so CI can upload them as
//! artifacts and a developer can replay them byte-for-byte.

#![deny(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Mutated inputs are capped at this many bytes: large enough to cover
/// multi-line netlists and nested JSON, small enough that a pathological
/// duplication chain cannot balloon the corpus.
pub const MAX_INPUT: usize = 4096;

/// A tiny xorshift64* PRNG: deterministic, seedable, dependency-free.
/// Quality is more than enough for mutation scheduling.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// A PRNG from a seed; a zero seed is remapped (xorshift's one
    /// forbidden state).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Tokens the mutator splices in: grammar fragments that push inputs
/// deeper into each parser than random bytes would.
const DICTIONARY: &[&[u8]] = &[
    b".SUBCKT",
    b".ENDS",
    b".END",
    b"*|NET",
    b"*|P",
    b"*|I",
    b"*|S",
    b"C",
    b"R",
    b"X",
    b"1e308",
    b"-1e-308",
    b"NaN",
    b"0x",
    b"1f",
    b"1meg",
    b"{\"",
    b"\":",
    b"[[",
    b"]]",
    b"null",
    b"true",
    b"1e999",
    b"\\u0000",
    b"\\\"",
    b"POST ",
    b"GET ",
    b" HTTP/1.1\r\n",
    b"content-length: ",
    b"transfer-encoding: chunked",
    b"\r\n\r\n",
    b"Retry-After: ",
    // Grammar-enumerator productions: cell names, instance prefixes and
    // the subcircuit header shapes the datagen emitter writes, so
    // mutations reach the hierarchy walk with realistic card fragments.
    b"INVX4",
    b"NAND2",
    b"MUX2",
    b"DFF",
    b"VDD VSS",
    b"Xu0 n0 n1 VDD VSS BUF",
    b".SUBCKT G_CHAIN_BUF_N2 VDD VSS",
    b"Xg_",
    b" W=0.42u L=0.05u",
];

/// The seed corpus: one small well-formed exemplar per input language,
/// so mutations start from inputs that reach deep parser states.
pub fn seed_corpus() -> Vec<Vec<u8>> {
    vec![
        // SPICE netlist with hierarchy, params, continuation.
        b"* seed netlist\n.SUBCKT inv A Y VDD VSS\nM1 Y A VDD VDD p W=1u L=0.1u\nM2 Y A VSS VSS n\n+ W=2u\nC1 A Y 1.5f\n.ENDS\nXinv1 n1 n2 vdd gnd inv\nR1 n1 n2 10k\n.END\n"
            .to_vec(),
        // SPF parasitic fragment.
        b"*|NET n1 1.2e-15\n*|P (p1 I 0.1 0 0)\n*|I (x1:A x1 A I 0.0 1 2)\n*|S (n1:1 3 4)\nC1 n1:1 0 0.5f\nR2 n1:1 n1:2 12.5\n"
            .to_vec(),
        // Predict-request JSON.
        br#"{"pairs": [["n1", "n2"], ["a", "b"]], "hops": 2, "max_nodes": 64}"#.to_vec(),
        // Sweep-request JSON.
        br#"{"nets": ["n1", "n2", "a"], "top_k": 8, "threshold_ff": 0.5}"#.to_vec(),
        // A full HTTP/1.1 request as bytes.
        b"POST /v1/predict HTTP/1.1\r\ncontent-length: 16\r\ncontent-type: application/json\r\n\r\n{\"pairs\": [[]]}\n"
            .to_vec(),
        // Deeply-nested JSON (starts near the depth limit).
        {
            let mut v = vec![b'['; 100];
            v.extend(vec![b']'; 100]);
            v
        },
        // Hierarchical SPICE from the grammar enumerator (deterministic:
        // the first term in the smallest size window), truncated to the
        // input cap — mutations start from the exact card shapes that
        // `cirgps datagen` emits, reaching the library + hierarchy walk.
        {
            let terms = ams_datagen::enumerate::enumerate_terms(None, 0, 200);
            let mut v = ams_datagen::enumerate::build_term(&terms[0], 1)
                .expect("grammar seed must build")
                .spice
                .into_bytes();
            v.truncate(MAX_INPUT);
            v
        },
    ]
}

/// One mutation round: pick a strategy, apply it, cap the result at
/// [`MAX_INPUT`]. Strategies mirror the classic fuzzer set — bit flips,
/// byte sets, truncation, slice duplication, dictionary splices.
pub fn mutate(rng: &mut XorShift, input: &[u8]) -> Vec<u8> {
    let mut out = input.to_vec();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        match rng.below(6) {
            // Flip one bit.
            0 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
            // Overwrite one byte with anything.
            1 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] = rng.next_u64() as u8;
            }
            // Truncate.
            2 if !out.is_empty() => {
                out.truncate(rng.below(out.len()));
            }
            // Duplicate a slice (growth capped below).
            3 if !out.is_empty() => {
                let a = rng.below(out.len());
                let b = (a + 1 + rng.below(64)).min(out.len());
                let slice = out[a..b].to_vec();
                let at = rng.below(out.len() + 1);
                out.splice(at..at, slice);
            }
            // Splice in a dictionary token.
            4 => {
                let tok = DICTIONARY[rng.below(DICTIONARY.len())];
                let at = rng.below(out.len() + 1);
                out.splice(at..at, tok.iter().copied());
            }
            // Insert a random byte.
            _ => {
                let at = rng.below(out.len() + 1);
                out.insert(at, rng.next_u64() as u8);
            }
        }
    }
    out.truncate(MAX_INPUT);
    out
}

/// The fuzz targets. Each must uphold the contract: return normally
/// (the target's own `Result` is fine either way) and never panic.
pub const TARGETS: &[(&str, fn(&[u8]))] = &[
    ("spice", fuzz_spice),
    ("spf", fuzz_spf),
    ("units", fuzz_units),
    ("json", fuzz_json),
    ("http", fuzz_http),
];

/// SPICE netlist parse + flatten (flattening exercises the hierarchy
/// walk, including the recursion and depth guards).
pub fn fuzz_spice(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    if let Ok(file) = ams_netlist::SpiceFile::parse(&text) {
        let _ = file.flatten_top("inv");
    }
}

/// SPF parasitic-annotation parse.
pub fn fuzz_spf(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let _ = ams_netlist::SpfFile::parse(&text);
}

/// SPICE engineering-unit value parse (`1.5f`, `10k`, `2meg`, …).
pub fn fuzz_units(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    for token in text.split_whitespace().take(64) {
        let _ = ams_netlist::parse_spice_value(token);
    }
}

/// The serve daemon's JSON parser (depth- and size-capped).
pub fn fuzz_json(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let _ = cirgps_serve::json::Json::parse(&text);
}

/// The serve daemon's HTTP/1.1 request reader, with the production
/// ingress limits.
pub fn fuzz_http(data: &[u8]) {
    let limits = cirgps_serve::http::IngressLimits::default();
    let mut reader = std::io::BufReader::new(data);
    // Keep reading pipelined requests until the input runs dry or errors.
    while let Ok(Some(_)) = cirgps_serve::http::read_request_limited(&mut reader, &limits) {}
}

/// What one [`run`] produced.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Inputs whose target panicked, paired with the iteration index.
    pub failures: Vec<(u64, Vec<u8>)>,
}

/// Runs `iters` mutations of the seed corpus through `target`,
/// catching panics. Deterministic for a given `(seed, iters)`.
///
/// The process-global panic hook is silenced for the duration so a
/// caught failure does not spew a backtrace per iteration; callers
/// running targets concurrently should serialize calls to `run`.
pub fn run(target: fn(&[u8]), seed: u64, iters: u64) -> FuzzReport {
    let corpus = seed_corpus();
    let mut rng = XorShift::new(seed);
    let mut failures = Vec::new();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for i in 0..iters {
        // Each iteration re-derives its input from the corpus so a
        // failure replays from (seed, i) alone, independent of history.
        let base = &corpus[rng.below(corpus.len())];
        let input = mutate(&mut rng, base);
        let ok = catch_unwind(AssertUnwindSafe(|| target(&input))).is_ok();
        if !ok {
            failures.push((i, input));
        }
    }
    std::panic::set_hook(prev_hook);
    FuzzReport { iters, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut a = XorShift::new(9);
        let mut b = XorShift::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mutate_caps_growth() {
        let mut rng = XorShift::new(3);
        let mut input = seed_corpus()[0].clone();
        for _ in 0..2000 {
            input = mutate(&mut rng, &input);
            assert!(input.len() <= MAX_INPUT);
        }
    }

    /// Smoke budget: a few hundred iterations per target must complete
    /// with zero panics. CI runs a larger budget via the `fuzz` binary.
    #[test]
    fn smoke_all_targets_survive_a_small_budget() {
        for (name, target) in TARGETS {
            let report = run(*target, 0xc1c5, 300);
            assert!(
                report.failures.is_empty(),
                "target {name}: {} panicking input(s), first at iteration {}",
                report.failures.len(),
                report.failures[0].0
            );
        }
    }
}
