//! Deterministic fuzz driver.
//!
//! ```text
//! fuzz [--target NAME|all] [--iters N] [--seed N] [--out DIR]
//! ```
//!
//! Runs the seeded mutation harness over the chosen target(s) and exits
//! non-zero if any input panicked. Failing inputs are written to
//! `--out` (default `fuzz-failures/`) as `<target>-<iteration>.bin` so
//! CI can upload them and a developer can replay:
//! `fuzz --target spice --seed S --iters I` reproduces byte-for-byte.

use std::process::ExitCode;

use cirgps_fuzz::{run, TARGETS};

fn main() -> ExitCode {
    let mut target = "all".to_string();
    let mut iters: u64 = 20_000;
    let mut seed: u64 = 0xc1c5;
    let mut out = "fuzz-failures".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--target" => target = value(i),
            "--iters" => {
                iters = value(i).parse().unwrap_or_else(|e| {
                    eprintln!("bad --iters: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = value(i).parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out = value(i),
            "--help" | "-h" => {
                eprintln!("usage: fuzz [--target NAME|all] [--iters N] [--seed N] [--out DIR]");
                eprintln!(
                    "targets: {}",
                    TARGETS
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }

    let selected: Vec<_> = TARGETS
        .iter()
        .filter(|(n, _)| target == "all" || *n == target)
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown target {target:?}; available: {}",
            TARGETS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    }

    let mut total_failures = 0usize;
    for (name, f) in selected {
        let report = run(*f, seed, iters);
        if report.failures.is_empty() {
            println!("target {name}: {iters} iterations, 0 failures (seed {seed})");
            continue;
        }
        total_failures += report.failures.len();
        if let Err(e) = std::fs::create_dir_all(&out) {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
        for (iter, input) in &report.failures {
            let path = format!("{out}/{name}-{iter}.bin");
            if let Err(e) = std::fs::write(&path, input) {
                eprintln!("cannot write {path}: {e}");
            }
        }
        println!(
            "target {name}: {iters} iterations, {} FAILURES (seed {seed}) -> {out}/",
            report.failures.len()
        );
    }
    if total_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
