//! Fault-injection points ("failpoints") for chaos testing.
//!
//! A failpoint is a named hook compiled into a crash-relevant code path
//! (checkpoint writes, worker prediction, the batch queue). In normal
//! builds — without the `enabled` cargo feature — every hook is an
//! inlined `None` and the whole crate vanishes from the binary. With the
//! feature on, hooks are armed either from the environment at first use:
//!
//! ```text
//! CIRGPS_FAILPOINTS="durable.torn_write=truncate:64@3;train.epoch_end=abort@2"
//! ```
//!
//! or programmatically from in-process tests ([`set`] / [`clear`]).
//!
//! # Grammar
//!
//! `name=action[:arg][@hit]`, entries separated by `;` or `,`:
//!
//! * `panic` — panic at the hook (caught or not, the consumer decides
//!   by where it places the hook);
//! * `abort` — `std::process::abort()`, simulating `kill -9`;
//! * `delay:MS` — sleep `MS` milliseconds, then continue;
//! * `truncate:N` — returned to the call site as
//!   [`FailAction::Truncate`]`(N)` so it can shorten a write (torn-write
//!   simulation);
//! * `error` — returned as [`FailAction::Error`] so the call site can
//!   fail with an injected I/O error.
//!
//! `@hit` restricts the action to the N-th evaluation of that hook
//! (1-based) in this process; without it the action fires on every
//! evaluation. Side-effecting actions (`panic`, `abort`, `delay`) are
//! performed *inside* [`eval`]; only data-shaping actions (`truncate`,
//! `error`) are returned, so a call site reads as:
//!
//! ```ignore
//! if let Some(action) = cirgps_failpoints::eval("durable.torn_write") {
//!     /* shorten or fail the write */
//! }
//! ```

/// The data-shaping actions [`eval`] can return to a call site.
///
/// `Panic`/`Abort`/`Delay` never escape `eval` — they are performed
/// there — so call sites only ever match on these two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Truncate the write to the given number of bytes (torn write).
    Truncate(u64),
    /// Fail the operation with an injected error.
    Error,
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::FailAction;

    /// Evaluates the named failpoint. Compiled out: always `None`.
    #[inline(always)]
    pub fn eval(_name: &str) -> Option<FailAction> {
        None
    }

    /// Arms a failpoint programmatically. Compiled out: no-op.
    #[inline(always)]
    pub fn set(_name: &str, _spec: &str) {}

    /// Disarms one failpoint. Compiled out: no-op.
    #[inline(always)]
    pub fn clear(_name: &str) {}

    /// Disarms every failpoint. Compiled out: no-op.
    #[inline(always)]
    pub fn clear_all() {}
}

#[cfg(feature = "enabled")]
mod imp {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Debug, Clone)]
    enum Action {
        Panic,
        Abort,
        Delay(u64),
        Truncate(u64),
        Error,
    }

    #[derive(Debug, Clone)]
    struct Point {
        action: Action,
        /// Fire only on this 1-based evaluation, if set.
        only_hit: Option<u64>,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Point>> {
        static REG: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
        REG.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("CIRGPS_FAILPOINTS") {
                for entry in spec.split([';', ',']) {
                    let entry = entry.trim();
                    if entry.is_empty() {
                        continue;
                    }
                    match parse_entry(entry) {
                        Ok((name, point)) => {
                            map.insert(name, point);
                        }
                        Err(e) => {
                            // A misspelled chaos spec silently doing
                            // nothing would invalidate the experiment.
                            panic!("CIRGPS_FAILPOINTS: bad entry {entry:?}: {e}");
                        }
                    }
                }
            }
            Mutex::new(map)
        })
    }

    fn parse_entry(entry: &str) -> Result<(String, Point), String> {
        let (name, spec) = entry
            .split_once('=')
            .ok_or_else(|| "expected name=action".to_string())?;
        let point = parse_spec(spec)?;
        Ok((name.trim().to_string(), point))
    }

    fn parse_spec(spec: &str) -> Result<Point, String> {
        let (action_part, hit_part) = match spec.split_once('@') {
            Some((a, h)) => (a, Some(h)),
            None => (spec, None),
        };
        let only_hit = match hit_part {
            Some(h) => Some(
                h.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad hit count {h:?}"))?,
            ),
            None => None,
        };
        let (verb, arg) = match action_part.split_once(':') {
            Some((v, a)) => (v.trim(), Some(a.trim())),
            None => (action_part.trim(), None),
        };
        let num = |what: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("{verb} needs :{what}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {what} {arg:?}"))
        };
        let action = match verb {
            "panic" => Action::Panic,
            "abort" => Action::Abort,
            "delay" => Action::Delay(num("ms")?),
            "truncate" => Action::Truncate(num("bytes")?),
            "error" => Action::Error,
            other => return Err(format!("unknown action {other:?}")),
        };
        Ok(Point {
            action,
            only_hit,
            hits: 0,
        })
    }

    /// Evaluates the named failpoint: bumps its hit counter, applies the
    /// `@hit` filter, performs `panic`/`abort`/`delay` in place, and
    /// returns `truncate`/`error` for the call site to interpret.
    pub fn eval(name: &str) -> Option<FailAction> {
        let action = {
            let mut reg = registry().lock().unwrap();
            let point = reg.get_mut(name)?;
            point.hits += 1;
            match point.only_hit {
                Some(h) if h != point.hits => return None,
                _ => point.action.clone(),
            }
        };
        match action {
            Action::Panic => panic!("failpoint {name:?} fired: panic"),
            Action::Abort => {
                // `abort` stands in for `kill -9`: no unwinding, no
                // destructors, no flushing.
                eprintln!("failpoint {name:?} fired: abort");
                std::process::abort();
            }
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Action::Truncate(n) => Some(FailAction::Truncate(n)),
            Action::Error => Some(FailAction::Error),
        }
    }

    /// Arms (or re-arms, resetting the hit counter) a failpoint from
    /// code; `spec` uses the same `action[:arg][@hit]` grammar as the
    /// environment variable.
    ///
    /// # Panics
    ///
    /// Panics on a malformed `spec` — a chaos test with a typo'd spec
    /// must fail loudly, not silently test nothing.
    pub fn set(name: &str, spec: &str) {
        let point = parse_spec(spec).unwrap_or_else(|e| panic!("failpoint {name:?}: {e}"));
        registry().lock().unwrap().insert(name.to_string(), point);
    }

    /// Disarms one failpoint.
    pub fn clear(name: &str) {
        registry().lock().unwrap().remove(name);
    }

    /// Disarms every failpoint (programmatic and env-configured).
    pub fn clear_all() {
        registry().lock().unwrap().clear();
    }
}

pub use imp::{clear, clear_all, eval, set};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    // Tests share one process-global registry, so they run under a lock
    // to avoid cross-test interference.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_points_are_silent() {
        let _g = serial();
        clear_all();
        assert_eq!(eval("nope"), None);
    }

    #[test]
    fn truncate_and_error_are_returned_to_the_call_site() {
        let _g = serial();
        clear_all();
        set("a", "truncate:64");
        set("b", "error");
        assert_eq!(eval("a"), Some(FailAction::Truncate(64)));
        assert_eq!(eval("a"), Some(FailAction::Truncate(64)), "fires every hit");
        assert_eq!(eval("b"), Some(FailAction::Error));
        clear("a");
        assert_eq!(eval("a"), None);
        clear_all();
    }

    #[test]
    fn hit_filter_fires_exactly_once_on_the_nth_hit() {
        let _g = serial();
        clear_all();
        set("c", "error@3");
        assert_eq!(eval("c"), None);
        assert_eq!(eval("c"), None);
        assert_eq!(eval("c"), Some(FailAction::Error));
        assert_eq!(eval("c"), None, "spent after its hit");
        clear_all();
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _g = serial();
        clear_all();
        set("d", "delay:30");
        let t0 = Instant::now();
        assert_eq!(eval("d"), None);
        assert!(t0.elapsed() >= Duration::from_millis(30));
        clear_all();
    }

    #[test]
    #[should_panic(expected = "failpoint \"p\" fired")]
    fn panic_action_panics_at_the_hook() {
        let _g = serial();
        clear_all();
        set("p", "panic");
        let _ = eval("p");
    }

    #[test]
    #[should_panic(expected = "unknown action")]
    fn malformed_spec_fails_loudly() {
        let _g = serial();
        set("x", "explode");
    }
}
