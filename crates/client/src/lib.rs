//! A retrying HTTP client for the serving daemon.
//!
//! Reuses the server's own HTTP/1.1 framing ([`cirgps_serve::http`]) —
//! zero new dependencies — and layers the retry discipline
//! `docs/serving.md` asks of clients on top:
//!
//! * **exponential backoff with decorrelated jitter** — each delay is
//!   drawn uniformly from `[base, 3 × previous)` and capped, so a
//!   thundering herd decorrelates itself instead of retrying in lockstep;
//! * **`Retry-After` honoring** — a `503`'s advertised delay is a floor
//!   on the next backoff (the server knows its backlog better than the
//!   client's jitter does);
//! * **a total deadline budget** — retrying stops the moment the *next*
//!   sleep would cross the budget, so a caller gets a bounded-latency
//!   answer or a named [`ClientError`], never an open-ended hang.
//!
//! Each attempt uses a fresh connection: the retryable failures (refused
//! connect, torn response, `503`/`504`) all leave a connection in an
//! unusable or unknown state, so reuse would just turn one failure into
//! two.

use std::fmt;
use std::io::{BufReader, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cirgps_serve::http::{read_chunk, read_response, read_response_head, write_request, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest response body the client will buffer (matches the server's
/// ingress cap; a response bigger than this is a protocol violation).
pub const MAX_RESPONSE_BYTES: usize = 8 * 1024 * 1024;

/// Retry discipline knobs; see the crate docs for the semantics.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Most connection+request attempts before giving up.
    pub max_attempts: usize,
    /// First (and minimum) backoff delay.
    pub base: Duration,
    /// Largest single backoff delay after jitter.
    pub cap: Duration,
    /// Total wall-clock budget across all attempts and sleeps.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Computes the next backoff: decorrelated jitter (uniform in
/// `[base, 3 × prev)`, floored at `base`, capped at `cap`). Deterministic
/// for a seeded RNG, which is how the tests pin it down.
pub fn next_delay(rng: &mut StdRng, prev: Duration, base: Duration, cap: Duration) -> Duration {
    let base_us = base.as_micros().max(1) as u64;
    let hi = (prev.as_micros() as u64).saturating_mul(3).max(base_us + 1);
    let us = rng.gen_range(base_us..hi).min(cap.as_micros() as u64);
    Duration::from_micros(us)
}

/// Why a request ultimately failed after the retry layer gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The deadline budget would be crossed by the next sleep (or was
    /// already spent). Carries the attempts made and the last failure.
    DeadlineExceeded {
        /// Attempts completed before giving up.
        attempts: usize,
        /// Description of the last retryable failure.
        last: String,
    },
    /// `max_attempts` attempts all failed retryably.
    RetriesExhausted {
        /// Attempts completed (== `max_attempts`).
        attempts: usize,
        /// Description of the last retryable failure.
        last: String,
    },
    /// A mid-stream failure after the response head was accepted —
    /// not retried, because part of the stream was already consumed.
    Stream(std::io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::DeadlineExceeded { attempts, last } => write!(
                f,
                "deadline budget exhausted after {attempts} attempt(s); last failure: {last}"
            ),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last failure: {last}")
            }
            ClientError::Stream(e) => write!(f, "stream broke mid-response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one retryable attempt produced.
enum Attempt {
    /// A response the caller should see (2xx, 4xx — anything final).
    Done(Response),
    /// A retryable failure: `503`/`504` or any I/O error. The optional
    /// seconds are the server's `Retry-After`.
    Retry(String, Option<u64>),
}

/// The retrying client. One instance per target address; not `Sync` (it
/// owns the backoff RNG), clone-free by design — spawn one per thread.
#[derive(Debug)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    rng: StdRng,
}

impl Client {
    /// A client for `addr` (`host:port`) with the default policy.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            policy: RetryPolicy::default(),
            rng: StdRng::seed_from_u64(0x5eed),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the backoff jitter RNG (tests pin this for determinism;
    /// production code should vary it per client to decorrelate).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// `GET path` with retries.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> Result<Response, ClientError> {
        self.request("GET", path, b"")
    }

    /// `POST path` with retries.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post(&mut self, path: &str, body: &[u8]) -> Result<Response, ClientError> {
        self.request("POST", path, body)
    }

    /// One request with the full retry discipline. Non-retryable
    /// responses (anything but `503`/`504`) are returned as `Ok` — a
    /// `400` is the server's final answer, not a transport failure.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] after `max_attempts` retryable
    /// failures, [`ClientError::DeadlineExceeded`] when the budget runs
    /// out first.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let start = Instant::now();
        let mut prev_delay = self.policy.base;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let last = match self.attempt(method, path, body, start) {
                Ok(Attempt::Done(resp)) => return Ok(resp),
                Ok(Attempt::Retry(why, retry_after)) => {
                    let jitter =
                        next_delay(&mut self.rng, prev_delay, self.policy.base, self.policy.cap);
                    // The server's Retry-After is a floor, not a target:
                    // jitter above it keeps the herd decorrelated.
                    let delay = match retry_after {
                        Some(secs) => jitter.max(Duration::from_secs(secs)),
                        None => jitter,
                    };
                    prev_delay = delay;
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::RetriesExhausted {
                            attempts,
                            last: why,
                        });
                    }
                    if start.elapsed() + delay >= self.policy.deadline {
                        return Err(ClientError::DeadlineExceeded {
                            attempts,
                            last: why,
                        });
                    }
                    std::thread::sleep(delay);
                    continue;
                }
                Err(e) => e,
            };
            // Budget already spent before we could even attempt.
            return Err(ClientError::DeadlineExceeded { attempts, last });
        }
    }

    /// `POST path` expecting a chunked streaming response (`/v1/sweep`):
    /// retries until a response head arrives, then hands every chunk to
    /// `sink` (return `false` to stop early). Returns the final status.
    ///
    /// # Errors
    ///
    /// Same retry errors as [`Client::request`] before the head;
    /// [`ClientError::Stream`] for a failure mid-stream (never retried —
    /// part of the stream was already delivered).
    pub fn post_stream(
        &mut self,
        path: &str,
        body: &[u8],
        sink: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<u16, ClientError> {
        let start = Instant::now();
        let mut prev_delay = self.policy.base;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            match self.attempt_stream(path, body, start, sink) {
                Ok(status) => return Ok(status),
                Err(StreamFailure::Fatal(e)) => return Err(e),
                Err(StreamFailure::Retry(why, retry_after)) => {
                    let jitter =
                        next_delay(&mut self.rng, prev_delay, self.policy.base, self.policy.cap);
                    let delay = match retry_after {
                        Some(secs) => jitter.max(Duration::from_secs(secs)),
                        None => jitter,
                    };
                    prev_delay = delay;
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::RetriesExhausted {
                            attempts,
                            last: why,
                        });
                    }
                    if start.elapsed() + delay >= self.policy.deadline {
                        return Err(ClientError::DeadlineExceeded {
                            attempts,
                            last: why,
                        });
                    }
                    std::thread::sleep(delay);
                    continue;
                }
            };
        }
    }

    /// One connect + request + buffered response. `Err(last)` means the
    /// deadline was already spent before connecting.
    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        start: Instant,
    ) -> Result<Attempt, String> {
        let remaining = self
            .policy
            .deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| "deadline spent before the attempt".to_string())?;
        let mut stream = match self.connect(remaining) {
            Ok(s) => s,
            Err(e) => return Ok(Attempt::Retry(format!("connect: {e}"), None)),
        };
        if let Err(e) = write_request(&mut stream, method, path, &[], body) {
            return Ok(Attempt::Retry(format!("write: {e}"), None));
        }
        let mut reader = BufReader::new(stream);
        match read_response(&mut reader, MAX_RESPONSE_BYTES) {
            Ok(resp) if resp.status == 503 || resp.status == 504 => Ok(Attempt::Retry(
                format!("server answered {}", resp.status),
                resp.retry_after,
            )),
            Ok(resp) => Ok(Attempt::Done(resp)),
            Err(e) => Ok(Attempt::Retry(format!("read: {e}"), None)),
        }
    }

    /// One connect + request + streamed chunked response. A sink that
    /// returns `false` stops the stream early; that is the caller's
    /// choice, so it still yields `Ok(status)`.
    fn attempt_stream(
        &mut self,
        path: &str,
        body: &[u8],
        start: Instant,
        sink: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<u16, StreamFailure> {
        let remaining = self
            .policy
            .deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| {
                StreamFailure::Retry("deadline spent before the attempt".into(), None)
            })?;
        let mut stream = self
            .connect(remaining)
            .map_err(|e| StreamFailure::Retry(format!("connect: {e}"), None))?;
        write_request(&mut stream, "POST", path, &[], body)
            .map_err(|e| StreamFailure::Retry(format!("write: {e}"), None))?;
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader)
            .map_err(|e| StreamFailure::Retry(format!("read head: {e}"), None))?;
        if head.status == 503 || head.status == 504 {
            // Drain nothing: the connection is abandoned with the head.
            return Err(StreamFailure::Retry(
                format!("server answered {}", head.status),
                head.retry_after,
            ));
        }
        if !head.chunked {
            // Buffered (likely an error body): read it and report via
            // the sink once, preserving the caller's single code path.
            let mut buf = vec![0u8; head.content_length.min(MAX_RESPONSE_BYTES)];
            reader
                .read_exact(&mut buf)
                .map_err(|e| StreamFailure::Retry(format!("read body: {e}"), None))?;
            if !buf.is_empty() {
                sink(&buf);
            }
            return Ok(head.status);
        }
        // From the first chunk on, failures are fatal, not retryable.
        loop {
            match read_chunk(&mut reader, MAX_RESPONSE_BYTES) {
                Ok(Some(chunk)) => {
                    if !sink(&chunk) {
                        return Ok(head.status);
                    }
                }
                Ok(None) => return Ok(head.status),
                Err(e) => return Err(StreamFailure::Fatal(ClientError::Stream(e))),
            }
        }
    }

    fn connect(&self, remaining: Duration) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        // Socket deadlines bound each blocking op by the remaining
        // budget, so a black-holed server cannot out-wait the policy.
        let per_op = remaining.max(Duration::from_millis(10));
        stream.set_read_timeout(Some(per_op))?;
        stream.set_write_timeout(Some(per_op))?;
        Ok(stream)
    }
}

/// Internal failure classification for the streaming path.
enum StreamFailure {
    Retry(String, Option<u64>),
    Fatal(ClientError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_delay_respects_base_and_cap() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = Duration::from_millis(50);
        let cap = Duration::from_millis(400);
        let mut prev = base;
        for _ in 0..200 {
            let d = next_delay(&mut rng, prev, base, cap);
            assert!(d >= base, "{d:?} below base");
            assert!(d <= cap, "{d:?} above cap");
            prev = d;
        }
    }

    #[test]
    fn next_delay_is_deterministic_per_seed() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = base;
            (0..16)
                .map(|_| {
                    prev = next_delay(&mut rng, prev, base, cap);
                    prev
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should jitter apart");
    }

    #[test]
    fn next_delay_can_grow_toward_three_x() {
        // With prev at 100ms the draw range is [base, 300ms): some draw
        // over a long run must exceed prev (i.e. backoff can grow).
        let mut rng = StdRng::seed_from_u64(1);
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(5);
        let prev = Duration::from_millis(100);
        let grew = (0..100).any(|_| next_delay(&mut rng, prev, base, cap) > prev);
        assert!(grew, "decorrelated jitter never grew past prev");
    }
}
