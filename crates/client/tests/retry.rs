//! Loopback tests for the retry layer against a scripted stub server:
//! each test binds a `TcpListener`, answers a fixed sequence of
//! responses, and asserts the client's retry/backoff/deadline behavior
//! from the outside.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use cirgps_client::{Client, ClientError, RetryPolicy};

/// Reads one request (headers + content-length body) off the stream so
/// the stub stays in framing sync across keep-alive-free attempts.
fn read_request(stream: &mut TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    let _ = reader.read_exact(&mut body);
}

/// A stub that answers each connection with the next scripted response
/// (raw bytes, written verbatim) and then closes it.
fn scripted_server(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let mut served = 0;
        for wire in responses {
            let (mut stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) => break,
            };
            read_request(&mut stream);
            let _ = stream.write_all(&wire);
            let _ = stream.flush();
            served += 1;
        }
        served
    });
    (addr, handle)
}

fn response(status: u16, extra: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} X\r\ncontent-type: application/json\r\n{extra}content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A 503 with Retry-After followed by a 200: the client retries once,
/// honors the advertised delay as a floor, and returns the 200.
#[test]
fn retries_past_503_and_honors_retry_after() {
    let (addr, handle) = scripted_server(vec![
        response(503, "retry-after: 1\r\n", "{\"error\": \"full\"}"),
        response(200, "", "{\"ok\": true}"),
    ]);
    let mut client = Client::new(addr).with_seed(1).with_policy(RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        deadline: Duration::from_secs(10),
    });
    let start = Instant::now();
    let resp = client.post("/v1/predict", b"{}").expect("should recover");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"{\"ok\": true}");
    // Retry-After: 1 floors the backoff even though jitter caps at 50ms.
    assert!(
        start.elapsed() >= Duration::from_secs(1),
        "retry fired after only {:?} — Retry-After ignored",
        start.elapsed()
    );
    assert_eq!(handle.join().unwrap(), 2);
}

/// An unreachable port: connection refused is retryable, so the client
/// burns its attempts and reports RetriesExhausted with the last error.
#[test]
fn connection_refused_exhausts_retries() {
    // Bind-then-drop to get a port that refuses connections.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut client = Client::new(addr).with_seed(2).with_policy(RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        deadline: Duration::from_secs(5),
    });
    match client.get("/healthz") {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(last.contains("connect"), "unexpected last error: {last}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// A server that always sheds with a large Retry-After against a small
/// deadline budget: the client gives up *before* sleeping into the
/// deadline, reporting DeadlineExceeded quickly.
#[test]
fn deadline_budget_cuts_retries_short() {
    let (addr, _handle) = scripted_server(vec![
        response(503, "retry-after: 30\r\n", "{}"),
        response(503, "retry-after: 30\r\n", "{}"),
    ]);
    let mut client = Client::new(addr).with_seed(3).with_policy(RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        deadline: Duration::from_millis(300),
    });
    let start = Instant::now();
    match client.post("/v1/predict", b"{}") {
        Err(ClientError::DeadlineExceeded { attempts, last }) => {
            assert_eq!(attempts, 1, "should give up before the first 30s sleep");
            assert!(last.contains("503"), "unexpected last error: {last}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "gave up slowly ({:?}) — it slept into the deadline",
        start.elapsed()
    );
}

/// A torn response (connection cut mid-headers) is retryable: the next
/// attempt's clean 200 comes through.
#[test]
fn torn_response_is_retried() {
    let (addr, handle) = scripted_server(vec![
        b"HTTP/1.1 200 OK\r\ncontent-le".to_vec(), // cut mid-header
        response(200, "", "{\"ok\": true}"),
    ]);
    let mut client = Client::new(addr).with_seed(4).with_policy(RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        deadline: Duration::from_secs(5),
    });
    let resp = client.post("/v1/predict", b"{}").expect("should recover");
    assert_eq!(resp.status, 200);
    assert_eq!(handle.join().unwrap(), 2);
}

/// Non-retryable statuses (here a 400) come back as Ok on the first
/// attempt: the retry layer must not hammer a server that already gave
/// a definitive answer.
#[test]
fn definitive_errors_are_not_retried() {
    let (addr, handle) = scripted_server(vec![response(400, "", "{\"error\": \"bad request\"}")]);
    let mut client = Client::new(addr).with_seed(5);
    let resp = client.post("/v1/predict", b"not json").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        handle.join().unwrap(),
        1,
        "a 400 must use exactly one attempt"
    );
}

/// Streaming: a chunked response is delivered chunk-by-chunk to the
/// sink after a 503 retry, and the final status is reported.
#[test]
fn post_stream_retries_then_streams_chunks() {
    let chunked = b"HTTP/1.1 200 OK\r\ncontent-type: application/jsonl\r\ntransfer-encoding: chunked\r\n\r\n5\r\n{\"a\"}\r\n5\r\n{\"b\"}\r\n0\r\n\r\n".to_vec();
    let (addr, handle) = scripted_server(vec![response(503, "retry-after: 1\r\n", "{}"), chunked]);
    let mut client = Client::new(addr).with_seed(6).with_policy(RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        deadline: Duration::from_secs(10),
    });
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    let status = client
        .post_stream("/v1/sweep", b"{}", &mut |c| {
            chunks.push(c.to_vec());
            true
        })
        .expect("stream should recover past the 503");
    assert_eq!(status, 200);
    assert_eq!(chunks, vec![b"{\"a\"}".to_vec(), b"{\"b\"}".to_vec()]);
    assert_eq!(handle.join().unwrap(), 2);
}
