//! # mini-spice
//!
//! Switch-level circuit simulation and switching-energy estimation for
//! the CirGPS reproduction's Fig. 4 validation. Transistors are modeled
//! as voltage-controlled switches (IRSIM-style): nets take values
//! {0, 1, X}, undriven nets retain charge (so SRAM cells and latches
//! work), and toggle counts integrated against per-net parasitic
//! capacitance give `E = Σ ½·α·C·V²`.
//!
//! ## Example
//!
//! ```
//! use ams_netlist::SpiceFile;
//! use mini_spice::{Logic, SwitchSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! .GLOBAL VDD VSS
//! .SUBCKT INV A Z VDD VSS
//! M1 Z A VSS VSS nch W=0.1u L=0.03u
//! M2 Z A VDD VDD pch W=0.2u L=0.03u
//! .ENDS
//! ";
//! let netlist = SpiceFile::parse(src)?.flatten("INV")?;
//! let mut sim = SwitchSim::new(&netlist);
//! sim.drive("A", Logic::One);
//! sim.settle();
//! assert_eq!(sim.value("Z"), Logic::Zero);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod energy;
mod sim;

pub use energy::{net_capacitances, net_capacitances_with, simulate_energy, EnergyResult};
pub use sim::{Logic, SwitchSim};
