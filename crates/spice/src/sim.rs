//! Switch-level logic simulation of MOS netlists.
//!
//! The paper validates predicted capacitances by SPICE-simulating energy
//! consumption. A full analog solver is out of scope (and unnecessary:
//! switching energy is `Σ α·C·V²`, a linear functional of the per-net
//! capacitances under fixed activity), so this module implements the
//! classic switch-level abstraction (IRSIM-style): transistors are
//! voltage-controlled switches, nets take values {0, 1, X}, undriven nets
//! retain charge, and per-net toggle counts provide the activity factors
//! `α`.

use std::collections::VecDeque;

use ams_netlist::{DeviceKind, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Logic value of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Logic {
    /// Driven (or retained) low.
    Zero,
    /// Driven (or retained) high.
    One,
    /// Unknown / conflict.
    X,
}

/// A channel (source-drain) edge controlled by a gate net, or an
/// always-on resistive connection.
#[derive(Debug, Clone, Copy)]
struct Channel {
    a: usize,
    b: usize,
    /// Gate net; `None` conducts unconditionally (resistors).
    gate: Option<usize>,
    /// Conducts when the gate is high (NMOS) or low (PMOS).
    on_high: bool,
}

/// Switch-level simulator for a flattened netlist.
///
/// # Examples
///
/// ```
/// use ams_netlist::SpiceFile;
/// use mini_spice::{Logic, SwitchSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// .GLOBAL VDD VSS
/// .SUBCKT INV A Z VDD VSS
/// M1 Z A VSS VSS nch W=0.1u L=0.03u
/// M2 Z A VDD VDD pch W=0.2u L=0.03u
/// .ENDS
/// ";
/// let nl = SpiceFile::parse(src)?.flatten("INV")?;
/// let mut sim = SwitchSim::new(&nl);
/// sim.drive("A", Logic::Zero);
/// sim.settle();
/// assert_eq!(sim.value("Z"), Logic::One);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SwitchSim {
    net_names: Vec<String>,
    values: Vec<Logic>,
    driven: Vec<Option<Logic>>,
    supply_high: Vec<usize>,
    supply_low: Vec<usize>,
    channels: Vec<Channel>,
    /// Channels incident to each net (for propagation).
    incident: Vec<Vec<usize>>,
    toggles: Vec<u64>,
}

fn is_high_rail(name: &str) -> bool {
    matches!(name, "VDD" | "VDDH" | "VDDL" | "VCC")
}

fn is_low_rail(name: &str) -> bool {
    name == "VSS" || name == "0" || name.eq_ignore_ascii_case("gnd")
}

impl SwitchSim {
    /// Builds a simulator over a flattened netlist.
    pub fn new(netlist: &Netlist) -> SwitchSim {
        let n = netlist.num_nets();
        let mut channels = Vec::new();
        for (_, dev) in netlist.devices() {
            match dev.kind {
                DeviceKind::Nmos | DeviceKind::Pmos => {
                    // Terminals: D G S B.
                    let d = dev.terminals[0].0 as usize;
                    let g = dev.terminals[1].0 as usize;
                    let s = dev.terminals[2].0 as usize;
                    channels.push(Channel {
                        a: d,
                        b: s,
                        gate: Some(g),
                        on_high: dev.kind == DeviceKind::Nmos,
                    });
                }
                DeviceKind::Resistor => {
                    let a = dev.terminals[0].0 as usize;
                    let b = dev.terminals[1].0 as usize;
                    channels.push(Channel {
                        a,
                        b,
                        gate: None,
                        on_high: true,
                    });
                }
                // Capacitors and diodes do not form logic paths.
                DeviceKind::Capacitor | DeviceKind::Diode => {}
            }
        }
        let mut incident = vec![Vec::new(); n];
        for (ci, ch) in channels.iter().enumerate() {
            incident[ch.a].push(ci);
            incident[ch.b].push(ci);
        }
        let mut supply_high = Vec::new();
        let mut supply_low = Vec::new();
        // Floating nets start at a deterministic pseudo-random 0/1 rather
        // than X: an all-X start deadlocks (X gates conduct nothing), and
        // real switch-level simulators likewise randomize initial charge.
        let mut values: Vec<Logic> = netlist
            .nets()
            .map(|(_, net)| {
                let mut h: u64 = 0xcbf29ce484222325;
                for b in net.name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                if h & 1 == 0 {
                    Logic::Zero
                } else {
                    Logic::One
                }
            })
            .collect();
        for (id, net) in netlist.nets() {
            if is_high_rail(&net.name) {
                supply_high.push(id.0 as usize);
                values[id.0 as usize] = Logic::One;
            } else if is_low_rail(&net.name) {
                supply_low.push(id.0 as usize);
                values[id.0 as usize] = Logic::Zero;
            }
        }
        SwitchSim {
            net_names: netlist.nets().map(|(_, net)| net.name.clone()).collect(),
            values,
            driven: vec![None; n],
            supply_high,
            supply_low,
            channels,
            incident,
            toggles: vec![0; n],
        }
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.values.len()
    }

    /// Drives a net (by name) to a value until released.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn drive(&mut self, net: &str, value: Logic) {
        let id = self
            .net_index(net)
            .unwrap_or_else(|| panic!("unknown net {net:?}"));
        self.driven[id] = Some(value);
    }

    /// Drives a net by id.
    pub fn drive_id(&mut self, net: NetId, value: Logic) {
        self.driven[net.0 as usize] = Some(value);
    }

    /// Releases an input (the net then floats / retains charge).
    pub fn release(&mut self, net: &str) {
        if let Some(id) = self.net_index(net) {
            self.driven[id] = None;
        }
    }

    /// Current value of a net by name.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn value(&self, net: &str) -> Logic {
        self.values[self
            .net_index(net)
            .unwrap_or_else(|| panic!("unknown net {net:?}"))]
    }

    /// Current value by id.
    pub fn value_id(&self, net: NetId) -> Logic {
        self.values[net.0 as usize]
    }

    /// Toggle count (0↔1 transitions observed by [`SwitchSim::settle`])
    /// per net, indexed by `NetId`.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Clears toggle counters (e.g. after warm-up vectors).
    pub fn reset_toggles(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
    }

    fn net_index(&self, name: &str) -> Option<usize> {
        self.net_names.iter().position(|n| n == name)
    }

    /// Propagates rail and input drive through conducting channels until
    /// the network stabilizes, counting 0↔1 toggles against the previous
    /// stable state. Returns the number of relaxation iterations used.
    pub fn settle(&mut self) -> usize {
        let prev = self.values.clone();
        let mut iterations = 0;
        // Gate states change conduction, so relax to a fixpoint. The cap
        // is prime so free-running oscillators don't alias to a no-toggle
        // state across consecutive settle() calls.
        for _ in 0..23 {
            iterations += 1;
            let new_values = self.solve_once();
            let changed = new_values != self.values;
            self.values = new_values;
            if !changed {
                break;
            }
        }
        for (v, (&old, &new)) in prev.iter().zip(&self.values).enumerate() {
            let flipped = matches!(
                (old, new),
                (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero)
            );
            if flipped {
                self.toggles[v] += 1;
            }
        }
        iterations
    }

    /// One propagation pass: multi-source BFS from rails and driven nets
    /// across conducting channels; conflicting drivers yield `X`;
    /// unreached nets retain their previous value (charge storage).
    fn solve_once(&self) -> Vec<Logic> {
        let n = self.values.len();
        // 0 = none, 1 = zero, 2 = one, 3 = conflict
        let mut mark = vec![0u8; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let set = |mark: &mut Vec<u8>, queue: &mut VecDeque<usize>, v: usize, m: u8| {
            let cur = mark[v];
            let new = cur | m;
            if new != cur {
                mark[v] = new;
                queue.push_back(v);
            }
        };
        for &v in &self.supply_low {
            set(&mut mark, &mut queue, v, 1);
        }
        for &v in &self.supply_high {
            set(&mut mark, &mut queue, v, 2);
        }
        for (v, d) in self.driven.iter().enumerate() {
            match d {
                Some(Logic::Zero) => set(&mut mark, &mut queue, v, 1),
                Some(Logic::One) => set(&mut mark, &mut queue, v, 2),
                Some(Logic::X) => set(&mut mark, &mut queue, v, 3),
                None => {}
            }
        }
        while let Some(v) = queue.pop_front() {
            let m = mark[v];
            for &ci in &self.incident[v] {
                let ch = &self.channels[ci];
                let conducting = match ch.gate {
                    None => true,
                    Some(g) => match self.values[g] {
                        Logic::One => ch.on_high,
                        Logic::Zero => !ch.on_high,
                        Logic::X => false,
                    },
                };
                if !conducting {
                    continue;
                }
                let other = if ch.a == v { ch.b } else { ch.a };
                set(&mut mark, &mut queue, other, m);
            }
        }
        (0..n)
            .map(|v| match mark[v] {
                0 => self.values[v], // charge retention
                1 => Logic::Zero,
                2 => Logic::One,
                _ => Logic::X,
            })
            .collect()
    }

    /// Applies `vectors` random input patterns to the given input nets
    /// (toggling any net whose name contains `CLK` every vector), settling
    /// after each. Returns the total settle iterations.
    pub fn run_random_vectors(&mut self, inputs: &[String], vectors: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let clk_nets: Vec<String> = self
            .net_names
            .iter()
            .filter(|n| n.contains("CLK") && !n.contains('.'))
            .cloned()
            .collect();
        let mut total = 0;
        for step in 0..vectors {
            for name in inputs {
                if rng.gen_bool(0.35) {
                    let v = if rng.gen_bool(0.5) {
                        Logic::One
                    } else {
                        Logic::Zero
                    };
                    self.drive(name, v);
                }
            }
            for clk in &clk_nets {
                self.drive(
                    clk,
                    if step % 2 == 0 {
                        Logic::One
                    } else {
                        Logic::Zero
                    },
                );
            }
            total += self.settle();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::SpiceFile;

    fn sim_of(src: &str, top: &str) -> (Netlist, SwitchSim) {
        let nl = SpiceFile::parse(src).unwrap().flatten(top).unwrap();
        let sim = SwitchSim::new(&nl);
        (nl, sim)
    }

    const INV: &str = "
.GLOBAL VDD VSS
.SUBCKT INV A Z VDD VSS
M1 Z A VSS VSS nch W=0.1u L=0.03u
M2 Z A VDD VDD pch W=0.2u L=0.03u
.ENDS
";

    #[test]
    fn inverter_inverts() {
        let (_, mut sim) = sim_of(INV, "INV");
        sim.drive("A", Logic::Zero);
        sim.settle();
        assert_eq!(sim.value("Z"), Logic::One);
        sim.drive("A", Logic::One);
        sim.settle();
        assert_eq!(sim.value("Z"), Logic::Zero);
    }

    #[test]
    fn toggles_are_counted() {
        let (nl, mut sim) = sim_of(INV, "INV");
        sim.drive("A", Logic::Zero);
        sim.settle();
        sim.reset_toggles();
        for i in 0..6 {
            sim.drive("A", if i % 2 == 0 { Logic::One } else { Logic::Zero });
            sim.settle();
        }
        let z = nl.net_id("Z").unwrap();
        assert_eq!(sim.toggles()[z.0 as usize], 6);
    }

    const NAND: &str = "
.GLOBAL VDD VSS
.SUBCKT NAND2 A B Z VDD VSS
M1 Z A mid VSS nch W=0.2u L=0.03u
M2 mid B VSS VSS nch W=0.2u L=0.03u
M3 Z A VDD VDD pch W=0.2u L=0.03u
M4 Z B VDD VDD pch W=0.2u L=0.03u
.ENDS
";

    #[test]
    fn nand_truth_table() {
        let (_, mut sim) = sim_of(NAND, "NAND2");
        for (a, b, want) in [
            (Logic::Zero, Logic::Zero, Logic::One),
            (Logic::Zero, Logic::One, Logic::One),
            (Logic::One, Logic::Zero, Logic::One),
            (Logic::One, Logic::One, Logic::Zero),
        ] {
            sim.drive("A", a);
            sim.drive("B", b);
            sim.settle();
            assert_eq!(sim.value("Z"), want, "A={a:?} B={b:?}");
        }
    }

    const LATCH: &str = "
.GLOBAL VDD VSS
.SUBCKT CELL BL WL VDD VSS
M1 q qb VSS VSS nch W=0.14u L=0.03u
M2 q qb VDD VDD pch W=0.1u L=0.03u
M3 qb q VSS VSS nch W=0.14u L=0.03u
M4 qb q VDD VDD pch W=0.1u L=0.03u
M5 BL WL q VSS nch W=0.12u L=0.03u
.ENDS
";

    #[test]
    fn bitcell_stores_written_value() {
        let (_, mut sim) = sim_of(LATCH, "CELL");
        // Write 1 through the access transistor.
        sim.drive("WL", Logic::One);
        sim.drive("BL", Logic::One);
        for _ in 0..4 {
            sim.settle();
        }
        // Close the wordline and release the bitline: the cross-coupled
        // pair must hold the state.
        sim.drive("WL", Logic::Zero);
        sim.release("BL");
        for _ in 0..4 {
            sim.settle();
        }
        assert_eq!(sim.value("q"), Logic::One);
        assert_eq!(sim.value("qb"), Logic::Zero);
    }

    #[test]
    fn ring_oscillator_activity() {
        // Three-inverter ring with an enable NAND: when enabled the
        // relaxation never reaches a stable point within an iteration
        // budget, so values keep toggling across settle() calls.
        let src = "
.GLOBAL VDD VSS
.SUBCKT RING EN VDD VSS
M1 r0 EN m VSS nch W=0.2u L=0.03u
M2 m r2 VSS VSS nch W=0.2u L=0.03u
M3 r0 EN VDD VDD pch W=0.2u L=0.03u
M4 r0 r2 VDD VDD pch W=0.2u L=0.03u
M5 r1 r0 VSS VSS nch W=0.1u L=0.03u
M6 r1 r0 VDD VDD pch W=0.2u L=0.03u
M7 r2 r1 VSS VSS nch W=0.1u L=0.03u
M8 r2 r1 VDD VDD pch W=0.2u L=0.03u
.ENDS
";
        let (nl, mut sim) = sim_of(src, "RING");
        sim.drive("EN", Logic::One);
        for _ in 0..8 {
            sim.settle();
        }
        let toggles = sim.toggles();
        let r2 = nl.net_id("r2").unwrap();
        assert!(toggles[r2.0 as usize] > 0, "oscillator never toggled");
    }

    #[test]
    fn random_vectors_run() {
        let (nl, mut sim) = sim_of(NAND, "NAND2");
        let iters = sim.run_random_vectors(&["A".into(), "B".into()], 32, 7);
        assert!(iters >= 32);
        let z = nl.net_id("Z").unwrap();
        assert!(sim.toggles()[z.0 as usize] > 0);
    }
}
