//! Switching-energy estimation from toggle activity and parasitic
//! capacitance (the Fig. 4 validation flow).
//!
//! `E = Σ_v ½ · C_v · V² · toggles_v` — with activity fixed by the
//! switch-level simulation, the energy is a linear functional of the
//! per-net capacitance, so comparing ground-truth against predicted
//! capacitances isolates exactly the prediction error the paper's Fig. 4
//! visualizes.

use std::collections::HashMap;

use ams_netlist::{Netlist, SpfFile, SpfNode};

use crate::sim::{Logic, SwitchSim};

/// Per-net lumped capacitance assembled from an SPF file: the net's
/// ground capacitance, its pins' ground capacitances, and half of every
/// incident coupling capacitance (the other half belongs to the
/// aggressor; supply-referenced halves simply load the rail).
pub fn net_capacitances(netlist: &Netlist, spf: &SpfFile) -> Vec<f64> {
    net_capacitances_with(netlist, spf, |c| c.value)
}

/// Like [`net_capacitances`], but coupling values are replaced by a
/// caller-supplied function (e.g. model predictions per coupling entry,
/// in SPF order).
pub fn net_capacitances_with(
    netlist: &Netlist,
    spf: &SpfFile,
    mut coupling_value: impl FnMut(&ams_netlist::CouplingCap) -> f64,
) -> Vec<f64> {
    let mut caps = vec![0.0f64; netlist.num_nets()];
    // Device-name → device for pin resolution.
    let dev_net: HashMap<&str, &ams_netlist::Device> = netlist
        .devices()
        .map(|(_, d)| (d.name.as_str(), d))
        .collect();
    let resolve = |node: &SpfNode| -> Option<usize> {
        match node {
            SpfNode::Net(name) => netlist.net_id(name).map(|id| id.0 as usize),
            SpfNode::Pin { device, pin } => {
                let d = dev_net.get(device.as_str())?;
                let ti = d.kind.terminal_names().iter().position(|t| t == pin)?;
                Some(d.terminals[ti].0 as usize)
            }
        }
    };
    for g in &spf.ground_caps {
        if let Some(v) = resolve(&g.node) {
            caps[v] += g.value;
        }
    }
    for c in &spf.coupling_caps {
        let value = coupling_value(c);
        if let Some(v) = resolve(&c.a) {
            caps[v] += 0.5 * value;
        }
        if let Some(v) = resolve(&c.b) {
            caps[v] += 0.5 * value;
        }
    }
    caps
}

/// Result of one energy simulation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyResult {
    /// Total switching energy, joules (V = `vdd`).
    pub energy: f64,
    /// Total toggle count across nets.
    pub total_toggles: u64,
    /// Number of input vectors applied.
    pub vectors: usize,
}

/// Runs the switch-level simulation with random vectors and integrates
/// switching energy with the given per-net capacitances.
///
/// Ports other than supply rails are treated as primary inputs.
pub fn simulate_energy(
    netlist: &Netlist,
    caps: &[f64],
    vdd: f64,
    vectors: usize,
    seed: u64,
) -> EnergyResult {
    let mut sim = SwitchSim::new(netlist);
    let inputs: Vec<String> = netlist
        .nets()
        .filter(|(_, n)| {
            n.is_port
                && !matches!(n.name.as_str(), "VDD" | "VSS" | "VDDL" | "VDDH" | "0")
                && !n.name.eq_ignore_ascii_case("gnd")
        })
        .map(|(_, n)| n.name.clone())
        .collect();
    // Warm up into a defined state, then measure.
    for name in &inputs {
        sim.drive(name, Logic::Zero);
    }
    for _ in 0..4 {
        sim.settle();
    }
    sim.reset_toggles();
    sim.run_random_vectors(&inputs, vectors, seed);

    let mut energy = 0.0f64;
    let mut total = 0u64;
    for (v, &t) in sim.toggles().iter().enumerate() {
        total += t;
        energy += 0.5 * caps.get(v).copied().unwrap_or(0.0) * vdd * vdd * t as f64;
    }
    EnergyResult {
        energy,
        total_toggles: total,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::{CouplingCap, GroundCap, SpiceFile};

    const BUF: &str = "
.GLOBAL VDD VSS
.SUBCKT BUF A Z VDD VSS
M1 mid A VSS VSS nch W=0.1u L=0.03u
M2 mid A VDD VDD pch W=0.2u L=0.03u
M3 Z mid VSS VSS nch W=0.1u L=0.03u
M4 Z mid VDD VDD pch W=0.2u L=0.03u
.ENDS
";

    fn buf_with_spf() -> (Netlist, SpfFile) {
        let nl = SpiceFile::parse(BUF).unwrap().flatten("BUF").unwrap();
        let mut spf = SpfFile::new("BUF");
        spf.ground_caps.push(GroundCap {
            node: SpfNode::Net("mid".into()),
            value: 1e-16,
        });
        spf.ground_caps.push(GroundCap {
            node: SpfNode::Net("Z".into()),
            value: 2e-16,
        });
        spf.coupling_caps.push(CouplingCap {
            a: SpfNode::Net("mid".into()),
            b: SpfNode::Net("Z".into()),
            value: 4e-17,
        });
        spf.coupling_caps.push(CouplingCap {
            a: SpfNode::Pin {
                device: "M1".into(),
                pin: "G".into(),
            },
            b: SpfNode::Net("mid".into()),
            value: 2e-17,
        });
        (nl, spf)
    }

    #[test]
    fn cap_assembly_splits_couplings() {
        let (nl, spf) = buf_with_spf();
        let caps = net_capacitances(&nl, &spf);
        let mid = nl.net_id("mid").unwrap().0 as usize;
        let z = nl.net_id("Z").unwrap().0 as usize;
        let a = nl.net_id("A").unwrap().0 as usize;
        assert!((caps[mid] - (1e-16 + 2e-17 + 1e-17)).abs() < 1e-22);
        assert!((caps[z] - (2e-16 + 2e-17)).abs() < 1e-22);
        // Pin M1:G sits on net A.
        assert!((caps[a] - 1e-17).abs() < 1e-22);
    }

    #[test]
    fn energy_scales_linearly_with_caps() {
        let (nl, spf) = buf_with_spf();
        let caps = net_capacitances(&nl, &spf);
        let e1 = simulate_energy(&nl, &caps, 0.9, 40, 3);
        let doubled: Vec<f64> = caps.iter().map(|c| 2.0 * c).collect();
        let e2 = simulate_energy(&nl, &doubled, 0.9, 40, 3);
        assert!(e1.energy > 0.0);
        assert_eq!(
            e1.total_toggles, e2.total_toggles,
            "activity must not depend on caps"
        );
        assert!((e2.energy / e1.energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_coupling_override() {
        let (nl, spf) = buf_with_spf();
        let gt = net_capacitances(&nl, &spf);
        let pred = net_capacitances_with(&nl, &spf, |c| c.value * 1.5);
        let mid = nl.net_id("mid").unwrap().0 as usize;
        assert!(pred[mid] > gt[mid]);
        // Ground caps are untouched by the override.
        let z = nl.net_id("Z").unwrap().0 as usize;
        assert!((pred[z] - (2e-16 + 1.5 * 2e-17)).abs() < 1e-22);
    }

    #[test]
    fn deterministic_energy() {
        let (nl, spf) = buf_with_spf();
        let caps = net_capacitances(&nl, &spf);
        let a = simulate_energy(&nl, &caps, 0.9, 20, 11);
        let b = simulate_energy(&nl, &caps, 0.9, 20, 11);
        assert_eq!(a, b);
    }
}
