//! Offline micro-benchmark harness with criterion's API surface.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of `criterion` the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed in
//! doubling batches until the measured wall time reaches a target budget
//! (`CIRGPS_BENCH_MS` milliseconds per benchmark, default 300). The
//! best (minimum) per-iteration time across batches is reported, which
//! is robust to scheduler noise on shared machines.
//!
//! Results print as `group/name ... ns/iter` lines, and when the
//! `CIRGPS_BENCH_JSON` environment variable names a file, each result is
//! appended to it as a JSON line — the `bench_json` harness in
//! `cirgps-bench` builds its `BENCH_<date>.json` snapshots from this.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group name (empty when run outside a group).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations executed while measuring.
    pub iters: u64,
}

impl BenchResult {
    /// Full `group/name` label.
    pub fn label(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }

    /// Serializes the result as one JSON object (no external deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"ns_per_iter\":{:.2},\"iters\":{}}}",
            escape(&self.group),
            escape(&self.name),
            self.ns_per_iter,
            self.iters
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the time budget is spent.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let mut batch: u64 = 1;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.iters += batch;
            let ns = dt.as_nanos() as f64 / batch as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
            if started.elapsed() >= self.budget {
                break;
            }
            if dt < self.budget / 8 {
                batch = batch.saturating_mul(2);
            }
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    results: Vec<BenchResult>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CIRGPS_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            results: Vec::new(),
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Creates a runner with an explicit per-benchmark time budget.
    pub fn with_budget(budget: Duration) -> Self {
        Criterion {
            results: Vec::new(),
            budget,
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            group: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run(String::new(), name, f);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run(&mut self, group: String, name: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.budget,
            best_ns: f64::INFINITY,
            iters: 0,
        };
        f(&mut b);
        let result = BenchResult {
            group,
            name,
            ns_per_iter: b.best_ns,
            iters: b.iters,
        };
        println!(
            "{:<56} {:>14.1} ns/iter ({} iters)",
            result.label(),
            result.ns_per_iter,
            result.iters
        );
        self.results.push(result);
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim sizes by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; no-op.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.c.run(self.group.clone(), name.into(), f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.c.run(self.group.clone(), id.label, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Appends results as JSON lines to the `CIRGPS_BENCH_JSON` file, if set.
pub fn maybe_write_json(results: &[BenchResult]) {
    let Ok(path) = std::env::var("CIRGPS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("warning: cannot open CIRGPS_BENCH_JSON file {path}");
        return;
    };
    for r in results {
        let _ = writeln!(f, "{}", r.to_json());
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            $crate::maybe_write_json(c.results());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::with_budget(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("count", |b| b.iter(|| (0..1000).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 3);
        assert!(c
            .results()
            .iter()
            .all(|r| r.ns_per_iter.is_finite() && r.ns_per_iter >= 0.0));
        assert_eq!(c.results()[1].label(), "g/param/42");
        assert!(c.results()[0].to_json().contains("\"ns_per_iter\""));
    }
}
