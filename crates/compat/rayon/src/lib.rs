//! Offline stand-in for the `rayon` parallel-iterator API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's API the workspace uses — `par_iter`,
//! `par_chunks`, the common adapters and [`current_num_threads`] — with
//! *sequential* execution. Results are bit-identical to rayon's (the
//! workspace merges worker results in deterministic order anyway), and
//! heavy data-parallel kernels in `cirgps-nn` use `std::thread::scope`
//! directly for real parallelism rather than going through this shim.

/// Number of threads a real work-stealing pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sequential stand-in for a rayon parallel iterator.
///
/// Wraps a standard iterator and forwards every `Iterator` adapter; adds
/// the rayon-only methods the workspace uses (`flat_map_iter`).
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// rayon's `flat_map_iter`: flat-map with a serial inner iterator.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.flat_map(f))
    }
}

/// `par_iter`/`par_chunks` entry points on slices (and via deref, `Vec`).
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;

    /// Sequential stand-in for `rayon`'s `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `into_par_iter` on owned collections.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for `rayon`'s `into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<A, B> IntoParallelIterator for std::ops::Range<A>
where
    std::ops::Range<A>: Iterator<Item = B>,
{
    type Item = B;
    type Iter = std::ops::Range<A>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Glob import mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed[3], (3, 4));
    }

    #[test]
    fn par_chunks_flat_map_iter() {
        let v: Vec<usize> = (0..10).collect();
        let out: Vec<usize> = v
            .par_chunks(3)
            .flat_map_iter(|c| c.iter().map(|&x| x + 1).collect::<Vec<_>>())
            .collect();
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
